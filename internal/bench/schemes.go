package bench

import (
	"fmt"
	"math/big"
	"math/rand/v2"

	"repro/internal/baseline/ecelgamal"
	"repro/internal/baseline/paillier"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/kv"
)

// genTree is an in-memory k-ary aggregation tree over arbitrary ciphertext
// types, used to benchmark the strawman schemes with exactly the same index
// geometry as TimeCrypt's (index.Tree only stores uint64 vectors).
type genTree struct {
	k         uint64
	maxLevels int
	add       func(dst, src any) any // dst may be mutated and returned
	clone     func(any) any
	levels    []map[uint64]any
	count     uint64
}

func newGenTree(k uint64, maxLevels int, add func(dst, src any) any, clone func(any) any) *genTree {
	levels := make([]map[uint64]any, maxLevels+1)
	for i := range levels {
		levels[i] = make(map[uint64]any)
	}
	return &genTree{k: k, maxLevels: maxLevels, add: add, clone: clone, levels: levels}
}

func (t *genTree) Append(ct any) {
	pos := t.count
	t.levels[0][pos] = ct
	idx := pos
	for level := 1; level <= t.maxLevels; level++ {
		idx /= t.k
		if cur, ok := t.levels[level][idx]; ok {
			t.levels[level][idx] = t.add(cur, ct)
		} else {
			t.levels[level][idx] = t.clone(ct)
		}
	}
	t.count++
}

// Query aggregates [a, b) with the same maximal-aligned-node decomposition
// as index.Tree.
func (t *genTree) Query(a, b uint64) (any, error) {
	if a >= b || b > t.count {
		return nil, fmt.Errorf("bench: bad query range [%d,%d)", a, b)
	}
	var agg any
	addNode := func(level int, idx uint64) {
		node := t.levels[level][idx]
		if agg == nil {
			agg = t.clone(node)
		} else {
			agg = t.add(agg, node)
		}
	}
	level := 0
	for a < b {
		for a%t.k != 0 && a < b {
			addNode(level, a)
			a++
		}
		for b%t.k != 0 && a < b {
			b--
			addNode(level, b)
		}
		if a >= b {
			break
		}
		if level == t.maxLevels {
			for ; a < b; a++ {
				addNode(level, a)
			}
			break
		}
		a /= t.k
		b /= t.k
		level++
	}
	return agg, nil
}

// nodeCount reports how many tree nodes exist (for index-size accounting).
func (t *genTree) nodeCount() int {
	n := 0
	for _, m := range t.levels {
		n += len(m)
	}
	return n
}

// ---- Scheme adapters -------------------------------------------------

// indexBench is the per-scheme interface Table 2 and Fig. 5 exercise:
// ingest one value into the index, and run one range query end-to-end
// (including client-side encrypt before ingest and decrypt after query,
// matching the paper's methodology).
type indexBench interface {
	Name() string
	Ingest(v uint64) error
	Query(a, b uint64) (uint64, error)
	Count() uint64
	BytesPerChunk() float64
}

// u64Bench drives index.Tree for both TimeCrypt (encrypted=true: HEAC
// encrypt on ingest, outer-leaf decrypt on query) and the plaintext
// baseline (encrypted=false).
type u64Bench struct {
	name      string
	tree      *index.Tree
	store     *kv.MemStore
	enc       *core.Encryptor
	dec       *core.Encryptor
	encrypted bool
	buf       [1]uint64
}

func newU64Bench(name string, encrypted bool, fanout int, cacheBytes int64) (*u64Bench, error) {
	store := kv.NewMemStore()
	tree, err := index.Open(store, "bench", index.Config{Fanout: fanout, VectorLen: 1, CacheBytes: cacheBytes})
	if err != nil {
		return nil, err
	}
	b := &u64Bench{name: name, tree: tree, store: store, encrypted: encrypted}
	if encrypted {
		kt, err := core.NewTree(core.NewPRG(core.PRGAES), core.DefaultTreeHeight, core.Node{42})
		if err != nil {
			return nil, err
		}
		b.enc = core.NewEncryptor(kt.NewWalker())
		b.dec = core.NewEncryptor(kt.NewWalker())
	}
	return b, nil
}

func (b *u64Bench) Name() string  { return b.name }
func (b *u64Bench) Count() uint64 { return b.tree.Count() }

func (b *u64Bench) Ingest(v uint64) error {
	pos := b.tree.Count()
	b.buf[0] = v
	if b.encrypted {
		if _, err := b.enc.EncryptDigest(pos, b.buf[:], b.buf[:]); err != nil {
			return err
		}
	}
	return b.tree.Append(pos, b.buf[:])
}

func (b *u64Bench) Query(a, c uint64) (uint64, error) {
	vec, err := b.tree.Query(a, c)
	if err != nil {
		return 0, err
	}
	if b.encrypted {
		vec, err = b.dec.DecryptRange(a, c, vec, nil)
		if err != nil {
			return 0, err
		}
	}
	return vec[0], nil
}

func (b *u64Bench) BytesPerChunk() float64 {
	if b.tree.Count() == 0 {
		return 0
	}
	return float64(b.store.SizeBytes()) / float64(b.tree.Count())
}

// paillierBench drives the Paillier strawman through the generic tree.
type paillierBench struct {
	key  *paillier.PrivateKey
	tree *genTree
}

func newPaillierBench(bits, fanout, maxLevels int) (*paillierBench, error) {
	key, err := paillier.GenerateKey(bits)
	if err != nil {
		return nil, err
	}
	pb := &paillierBench{key: key}
	pb.tree = newGenTree(uint64(fanout), maxLevels,
		func(dst, src any) any { return key.AddInto(dst.(*big.Int), src.(*big.Int)) },
		func(v any) any { return new(big.Int).Set(v.(*big.Int)) },
	)
	return pb, nil
}

func (b *paillierBench) Name() string  { return "paillier" }
func (b *paillierBench) Count() uint64 { return b.tree.count }

func (b *paillierBench) Ingest(v uint64) error {
	ct, err := b.key.EncryptUint64(v)
	if err != nil {
		return err
	}
	b.tree.Append(ct)
	return nil
}

func (b *paillierBench) Query(a, c uint64) (uint64, error) {
	agg, err := b.tree.Query(a, c)
	if err != nil {
		return 0, err
	}
	m, err := b.key.DecryptCRT(agg.(*big.Int))
	if err != nil {
		return 0, err
	}
	return m.Uint64(), nil
}

func (b *paillierBench) BytesPerChunk() float64 {
	if b.tree.count == 0 {
		return 0
	}
	perNode := float64(b.key.CiphertextBytes())
	return perNode * float64(b.tree.nodeCount()) / float64(b.tree.count)
}

// ecBench drives the EC-ElGamal strawman through the generic tree.
type ecBench struct {
	key   *ecelgamal.PrivateKey
	table *ecelgamal.DlogTable
	tree  *genTree
}

func newECBench(fanout, maxLevels int, dlogMax uint64) (*ecBench, error) {
	key, err := ecelgamal.GenerateKey()
	if err != nil {
		return nil, err
	}
	baby := uint64(1) << 12
	table, err := ecelgamal.NewDlogTable(dlogMax, baby)
	if err != nil {
		return nil, err
	}
	eb := &ecBench{key: key, table: table}
	eb.tree = newGenTree(uint64(fanout), maxLevels,
		func(dst, src any) any {
			return ecelgamal.Add(dst.(*ecelgamal.Ciphertext), src.(*ecelgamal.Ciphertext))
		},
		func(v any) any {
			zero, _ := key.Encrypt(0)
			return ecelgamal.Add(zero, v.(*ecelgamal.Ciphertext))
		},
	)
	return eb, nil
}

func (b *ecBench) Name() string  { return "ec-elgamal" }
func (b *ecBench) Count() uint64 { return b.tree.count }

func (b *ecBench) Ingest(v uint64) error {
	ct, err := b.key.Encrypt(v)
	if err != nil {
		return err
	}
	b.tree.Append(ct)
	return nil
}

func (b *ecBench) Query(a, c uint64) (uint64, error) {
	agg, err := b.tree.Query(a, c)
	if err != nil {
		return 0, err
	}
	return b.key.Decrypt(agg.(*ecelgamal.Ciphertext), b.table)
}

func (b *ecBench) BytesPerChunk() float64 {
	if b.tree.count == 0 {
		return 0
	}
	return 66 * float64(b.tree.nodeCount()) / float64(b.tree.count)
}

func cloneBig(x *big.Int) *big.Int { return new(big.Int).Set(x) }

// fillIndex ingests n small values (1..5) so aggregates stay within the
// EC-ElGamal discrete-log table.
func fillIndex(b indexBench, n uint64) error {
	r := rand.New(rand.NewPCG(1, 2))
	for i := uint64(0); i < n; i++ {
		if err := b.Ingest(uint64(r.IntN(5) + 1)); err != nil {
			return err
		}
	}
	return nil
}
