package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"repro/internal/chunk"
	"repro/internal/client"
	"repro/internal/kv"
	"repro/internal/server"
	"repro/internal/workload"
)

// Fig7Result is one end-to-end configuration's outcome.
type Fig7Result struct {
	Config string
	Report workload.Report
}

// Fig7 reproduces the end-to-end mHealth experiment (paper Fig. 7):
// closed-loop load with a 4:1 read:write ratio over many streams, for
// plaintext vs TimeCrypt, each with the default (unbounded) index cache
// and with the paper's extremely small 1 MB cache ("S" variants). The
// strawman E2E rows are estimated from their measured per-chunk costs
// (running Paillier E2E for real would take hours, as in the paper where
// it is 3500x slower).
func Fig7(w io.Writer, opts Options) ([]Fig7Result, error) {
	workers := opts.scaled(runtime.GOMAXPROCS(0))
	if workers < 2 {
		workers = 2
	}
	streamsPer := 4
	chunks := opts.scaled(40)
	fmt.Fprintf(w, "Fig 7: end-to-end mHealth (%d workers x %d streams, %d chunks/stream, 500 records/chunk, 4 queries per insert)\n\n",
		workers, streamsPer, chunks)

	run := func(name string, insecure bool, cacheBytes int64) (Fig7Result, error) {
		engine, err := server.New(kv.NewMemStore(), server.Config{CacheBytes: cacheBytes})
		if err != nil {
			return Fig7Result{}, err
		}
		report, err := workload.Run(context.Background(), workload.LoadConfig{
			Workers:          workers,
			StreamsPerWorker: streamsPer,
			ChunksPerStream:  chunks,
			QueriesPerInsert: 4,
			Generator:        func(seed uint64) workload.Generator { return workload.NewMHealth(seed) },
			NewTransport: func() (client.Transport, error) {
				return &client.InProc{Engine: engine}, nil
			},
			Interval:     10_000,
			Spec:         chunk.DigestSpec{Sum: true, Count: true, SumSq: true},
			Compression:  chunk.CompressionZlib,
			StreamPrefix: name,
			Insecure:     insecure,
		})
		if err != nil {
			return Fig7Result{}, err
		}
		return Fig7Result{Config: name, Report: report}, nil
	}

	configs := []struct {
		name     string
		insecure bool
		cache    int64
	}{
		{"plaintext", true, 0},
		{"timecrypt", false, 0},
		{"plaintext-S (1MB cache)", true, 1 << 20},
		{"timecrypt-S (1MB cache)", false, 1 << 20},
	}
	var results []Fig7Result
	for _, cfg := range configs {
		res, err := run(cfg.name, cfg.insecure, cfg.cache)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
		opts.record(reportMetrics("fig7", cfg.name, res.Report)...)
	}

	t := &table{header: []string{"Config", "Ingest rec/s", "Query ops/s", "Insert p50", "Insert p99", "Query p50", "Query p99"}}
	for _, r := range results {
		t.add(r.Config,
			fmt.Sprintf("%.0f", r.Report.IngestRecordsPS),
			fmt.Sprintf("%.0f", r.Report.QueryOpsPS),
			fmtDur(r.Report.Insert.P50), fmtDur(r.Report.Insert.P99),
			fmtDur(r.Report.Query.P50), fmtDur(r.Report.Query.P99))
	}
	t.write(w)

	// Slowdown headline (the paper's 1.8%).
	if results[0].Report.IngestRecordsPS > 0 {
		slow := 1 - results[1].Report.IngestRecordsPS/results[0].Report.IngestRecordsPS
		fmt.Fprintf(w, "\nTimeCrypt ingest slowdown vs plaintext: %.1f%% (paper: 1.8%%)\n", slow*100)
		slowQ := 1 - results[1].Report.QueryOpsPS/results[0].Report.QueryOpsPS
		fmt.Fprintf(w, "TimeCrypt query slowdown vs plaintext:  %.1f%%\n", slowQ*100)
	}
	fmt.Fprintln(w, "\nStrawman E2E (estimated from Table 2 per-chunk costs): Paillier and EC-ElGamal")
	fmt.Fprintln(w, "ingest 3-4 orders of magnitude below plaintext; run Table2 for the per-op numbers.")
	return results, nil
}
