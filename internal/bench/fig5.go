package bench

import (
	"fmt"
	"io"
	"time"
)

// Fig5Point is one series point: query latency for interval [0, 2^Exp].
type Fig5Point struct {
	Exp     int
	Latency map[string]time.Duration
}

// Fig5 reproduces the interval-size sweep (paper Fig. 5): aggregate query
// latency over [0, 2^x] for growing x, per scheme. The paper sweeps to
// 2^26 with the strawman capped at 2^20 "due to excessive construction
// overhead"; the default run sweeps to 2^18 with the strawman capped at
// 2^12, preserving the shape (flat-ish for plaintext/TimeCrypt, sawtooth
// for the strawman due to on-the-fly big-number aggregation).
func Fig5(w io.Writer, opts Options) ([]Fig5Point, error) {
	maxExp := 18
	if opts.Scale >= 4 {
		maxExp = 20
	}
	strawExp := 12
	n := uint64(1) << maxExp
	sn := uint64(1) << strawExp

	fmt.Fprintf(w, "Fig 5: query latency over interval [0, 2^x] (index 2^%d chunks; strawman capped at 2^%d)\n\n", maxExp, strawExp)

	plain, err := newU64Bench("plaintext", false, 64, 0)
	if err != nil {
		return nil, err
	}
	tc, err := newU64Bench("timecrypt", true, 64, 0)
	if err != nil {
		return nil, err
	}
	if err := fillIndex(plain, n); err != nil {
		return nil, err
	}
	if err := fillIndex(tc, n); err != nil {
		return nil, err
	}
	pb, err := newPaillierBench(1024, 64, 4)
	if err != nil {
		return nil, err
	}
	// Fast prefill: reuse one real ciphertext (adds are real work).
	ctSeed, err := pb.key.EncryptUint64(3)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < sn; i++ {
		pb.tree.Append(cloneBig(ctSeed))
	}
	eb, err := newECBench(64, 4, 6*sn)
	if err != nil {
		return nil, err
	}
	if err := fillIndex(eb, sn); err != nil {
		return nil, err
	}

	var points []Fig5Point
	for x := 0; x <= maxExp; x++ {
		hi := uint64(1) << x
		p := Fig5Point{Exp: x, Latency: map[string]time.Duration{}}
		p.Latency["plaintext"] = measure(20, func() { mustQuery(plain, 0, hi) })
		p.Latency["timecrypt"] = measure(20, func() { mustQuery(tc, 0, hi) })
		if x <= strawExp {
			p.Latency["paillier"] = measure(3, func() { mustQuery(pb, 0, hi) })
			p.Latency["ec-elgamal"] = measure(3, func() { mustQuery(eb, 0, hi) })
		}
		points = append(points, p)
	}

	t := &table{header: []string{"x", "plaintext", "timecrypt", "paillier", "ec-elgamal"}}
	for _, p := range points {
		cell := func(name string) string {
			if d, ok := p.Latency[name]; ok {
				return fmtDur(d)
			}
			return "-"
		}
		t.add(fmt.Sprintf("2^%d", p.Exp), cell("plaintext"), cell("timecrypt"), cell("paillier"), cell("ec-elgamal"))
	}
	t.write(w)
	return points, nil
}

func mustQuery(b indexBench, a, c uint64) {
	if _, err := b.Query(a, c); err != nil {
		panic(err)
	}
}
