package bench

import (
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"repro/internal/baseline/abesim"
	"repro/internal/core"
)

// AccessResult holds one access-control mechanism's per-chunk costs.
type AccessResult struct {
	Mechanism string
	KeyDerive time.Duration // per-chunk key material cost
	Decrypt   time.Duration // per-chunk decrypt cost
}

// AccessControl reproduces the §6.2 access-control comparison: TimeCrypt's
// tree-based keystream (log n PRG calls per key on a 2^30 tree) and
// dual-key-regression resolution keystream (O(√n) hashes with
// checkpoints) versus an ABE-based design (Sieve-style), where granting
// and decrypting cost pairing-scale work per chunk (the paper's 53 ms /
// 13 ms). The ABE numbers come from a pairing-cost simulator (see
// internal/baseline/abesim).
func AccessControl(w io.Writer, opts Options) ([]AccessResult, error) {
	fmt.Fprintln(w, "§6.2 access control: per-chunk key derivation and decryption cost")
	fmt.Fprintln(w)
	var results []AccessResult

	// TimeCrypt keystream: random leaf on a 2^30 tree (worst case, no
	// path cache).
	tree, err := core.NewTree(core.NewPRG(core.PRGAES), 30, core.Node{1})
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewPCG(5, 5))
	derive := measure(opts.scaled(4000), func() {
		if _, err := tree.Leaf(r.Uint64N(tree.NumLeaves())); err != nil {
			panic(err)
		}
	})
	// Decryption of an aggregate: one addition + one subtraction over
	// already-derived keys.
	var acc uint64
	dec := measure(1_000_000, func() { acc = acc + 123 - 45 })
	_ = acc
	results = append(results, AccessResult{Mechanism: "timecrypt keystream (2^30 tree)", KeyDerive: derive, Decrypt: dec})

	// Dual key regression with √n checkpoints (resolution keystream).
	dkr, err := core.NewDualKeyRegression(1 << 20)
	if err != nil {
		return nil, err
	}
	deriveKR := measure(opts.scaled(2000), func() {
		if _, err := dkr.KeyAt(r.Uint64N(dkr.N())); err != nil {
			panic(err)
		}
	})
	results = append(results, AccessResult{Mechanism: "dual key regression (2^20 keys)", KeyDerive: deriveKR, Decrypt: dec})

	// ABE stand-in: per-chunk KeyGen (grant) and Decrypt with one
	// attribute, as in the paper's comparison.
	abe, err := abesim.New()
	if err != nil {
		return nil, err
	}
	grantABE := measure(10, func() { abe.KeyGen(1); abe.Encrypt(1) })
	decABE := measure(10, func() { abe.Decrypt(1) })
	results = append(results, AccessResult{Mechanism: "ABE (simulated pairings)", KeyDerive: grantABE, Decrypt: decABE})

	t := &table{header: []string{"Mechanism", "Key derivation / grant (per chunk)", "Decrypt (per chunk)"}}
	for _, res := range results {
		t.add(res.Mechanism, fmtDur(res.KeyDerive), fmtDur(res.Decrypt))
	}
	t.write(w)
	fmt.Fprintln(w, "\n(paper: tree 2.5µs, key regression 2.7ms worst case, ABE 53ms grant / 13ms decrypt)")
	return results, nil
}
