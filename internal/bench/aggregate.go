package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"runtime"
	"time"

	"repro/internal/chunk"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/workload"
)

// AggregateResult is one query mode's outcome.
type AggregateResult struct {
	Mode    string
	Queries int
	OpsPS   float64          // queries per second
	PerOp   workload.Summary // submit-to-answer latency per query
	Speedup float64          // vs the client-side merge baseline
}

// Aggregate measures what the typed-plan query redesign buys over the
// pattern it replaces: the population mean over N streams (the paper's
// "average heart rate over all patients") sharded across a 4-engine
// router behind one TCP front end, computed (a) the old way — one
// StatRange round trip per stream returning the full digest vector,
// decrypted and merged client-side — and (b) as one typed-plan AggRange
// with Stats(Mean): each shard homomorphically sums its own streams'
// digests, the router sums the shard partials, and one response carries
// the population ciphertext projected to the two elements a mean needs.
// The index work is identical; the plan removes N-1 round trips and N-1
// response payloads per query, and the projection cuts the decrypted
// elements (and their AES subkey derivations) from the full digest — the
// paper's default 19-element vector — down to 2. Target: >= 2x per-query
// throughput at N = 16.
func Aggregate(w io.Writer, opts Options) ([]AggregateResult, error) {
	const streams = 16
	const shards = 4
	chunksPer := opts.scaled(512)
	queries := opts.scaled(400)
	if queries < 4 {
		queries = 4
	}
	const interval = 10_000
	epoch := int64(1_700_000_000_000)
	spec := chunk.DefaultSpec()
	meanElems, err := spec.ElemsFor(chunk.NewStatSet(chunk.StatMean))
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Population mean over %d streams on a %d-shard router (TCP front end): %d chunks/stream, %d-element digests, %d queries/mode\n\n",
		streams, shards, chunksPer, spec.VectorLen(), queries)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Cluster behind one TCP server.
	var shardList []cluster.Shard
	base := kv.NewMemStore()
	for i := 0; i < shards; i++ {
		name := fmt.Sprintf("shard-%d", i)
		engine, err := server.New(kv.NewPrefixStore(base, name+"/"), server.Config{})
		if err != nil {
			return nil, err
		}
		shardList = append(shardList, cluster.Shard{Name: name, Handler: engine})
	}
	router, err := cluster.NewRouter(shardList, cluster.Options{})
	if err != nil {
		return nil, err
	}
	srv := server.NewServer(router, func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ctx, lis)
	defer srv.Close()

	sess, err := client.DialSession(lis.Addr().String(), client.SessionOptions{})
	if err != nil {
		return nil, err
	}
	defer sess.Close()

	// Create and load the streams (batched ingest; setup is not timed).
	uuids := make([]string, streams)
	decs := make([]*core.Encryptor, streams)
	specBytes, _ := spec.MarshalBinary()
	for i := range uuids {
		uuids[i] = fmt.Sprintf("agg-%d", i)
		tree, err := core.GenerateTree(core.NewPRG(core.PRGAES), core.DefaultTreeHeight)
		if err != nil {
			return nil, err
		}
		enc := core.NewEncryptor(tree.NewWalker())
		decs[i] = core.NewEncryptor(tree.NewWalker())
		resp, err := sess.RoundTrip(ctx, &wire.CreateStream{UUID: uuids[i], Cfg: wire.StreamConfig{
			Epoch: epoch, Interval: interval, VectorLen: uint32(spec.VectorLen()),
			Fanout: 64, DigestSpec: specBytes,
		}})
		if err != nil {
			return nil, err
		}
		if e, bad := resp.(*wire.Error); bad {
			return nil, e
		}
		gen := workload.NewMHealth(uint64(i))
		for lo := 0; lo < chunksPer; lo += 64 {
			n := min(64, chunksPer-lo)
			batch := &wire.Batch{Reqs: make([]wire.Message, 0, n)}
			for c := lo; c < lo+n; c++ {
				start := epoch + int64(c)*interval
				sealed, err := chunk.Seal(enc, spec, chunk.CompressionNone, uint64(c), start, start+interval,
					gen.Chunk(uint64(c), epoch, interval))
				if err != nil {
					return nil, err
				}
				batch.Reqs = append(batch.Reqs, &wire.InsertChunk{UUID: uuids[i], Chunk: chunk.MarshalSealed(sealed)})
			}
			resp, err := sess.RoundTrip(ctx, batch)
			if err != nil {
				return nil, err
			}
			if br, ok := resp.(*wire.BatchResp); ok {
				for _, sub := range br.Resps {
					if e, bad := sub.(*wire.Error); bad {
						return nil, e
					}
				}
			} else if e, bad := resp.(*wire.Error); bad {
				return nil, e
			}
		}
	}
	te := epoch + int64(chunksPer)*interval
	runtime.GC()

	// Each query asks for the whole-range population aggregate. Both
	// modes decrypt everything they receive, so the comparison is honest
	// end-to-end work, not just socket counts.
	clientMerge := func() error {
		var combined []uint64
		for i, uuid := range uuids {
			resp, err := sess.RoundTrip(ctx, &wire.StatRange{UUIDs: []string{uuid}, Ts: epoch, Te: te})
			if err != nil {
				return err
			}
			sr, ok := resp.(*wire.StatRangeResp)
			if !ok {
				return resp.(*wire.Error)
			}
			vec, err := decs[i].DecryptRange(sr.FromChunk, sr.ToChunk, sr.Windows[0], nil)
			if err != nil {
				return err
			}
			if combined == nil {
				combined = vec
			} else {
				core.AddVec(combined, vec)
			}
		}
		_, err := spec.Interpret(combined)
		return err
	}
	serverAgg := func() error {
		resp, err := sess.RoundTrip(ctx, &wire.AggRange{UUIDs: uuids, Ts: epoch, Te: te, Elems: meanElems})
		if err != nil {
			return err
		}
		ar, ok := resp.(*wire.AggRangeResp)
		if !ok {
			return resp.(*wire.Error)
		}
		vec := ar.Windows[0]
		for i := range decs {
			if vec, err = decs[i].DecryptRangeElems(ar.FromChunk, ar.ToChunk, meanElems, vec, nil); err != nil {
				return err
			}
		}
		_, err = spec.InterpretElems(meanElems, vec)
		return err
	}

	run := func(mode string, query func() error) (AggregateResult, error) {
		var lat workload.LatencyRecorder
		start := time.Now()
		for q := 0; q < queries; q++ {
			t0 := time.Now()
			if err := query(); err != nil {
				return AggregateResult{}, fmt.Errorf("%s query %d: %w", mode, q, err)
			}
			lat.Record(time.Since(t0))
		}
		elapsed := time.Since(start)
		return AggregateResult{
			Mode: mode, Queries: queries,
			OpsPS: float64(queries) / elapsed.Seconds(),
			PerOp: lat.Summarize(),
		}, nil
	}

	// Interleaved best-of-5, like the batch experiment: single-core hosts
	// see large correlated noise spikes, and taking each mode's best round
	// measures the code, not the neighbors.
	modes := []struct {
		name  string
		query func() error
	}{
		{"client-merge", clientMerge},
		{"server-agg", serverAgg},
	}
	results := make([]AggregateResult, len(modes))
	for round := 0; round < 5; round++ {
		for i, m := range modes {
			res, err := run(m.name, m.query)
			if err != nil {
				return nil, err
			}
			if round == 0 || res.OpsPS > results[i].OpsPS {
				results[i] = res
			}
		}
	}
	for i := range results {
		if i > 0 {
			results[i].Speedup = results[i].OpsPS / results[0].OpsPS
		} else {
			results[i].Speedup = 1
		}
		opts.record(Metric{
			Experiment: "aggregate",
			Name:       results[i].Mode + "/query",
			OpsPerSec:  results[i].OpsPS,
			P50Ms:      ms(results[i].PerOp.P50),
			P99Ms:      ms(results[i].PerOp.P99),
		})
	}

	tbl := &table{header: []string{"mode", "queries/s", "p50", "p99", "vs client merge"}}
	for _, r := range results {
		tbl.add(r.Mode,
			fmt.Sprintf("%.0f", r.OpsPS),
			fmtDur(r.PerOp.P50), fmtDur(r.PerOp.P99),
			fmt.Sprintf("%.2fx", r.Speedup))
	}
	tbl.write(w)
	fmt.Fprintf(w, "\n%d-stream population mean: shards sum their own streams' ciphertext digests, the router\nsums shard partials, one response per query projected to %d of %d digest elements\n(target: server-agg >= 2x client-merge).\n", streams, len(meanElems), spec.VectorLen())
	return results, nil
}
