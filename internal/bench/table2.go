package bench

import (
	"fmt"
	"io"
	"math/big"
	"math/rand/v2"
	"time"

	"repro/internal/baseline/ecelgamal"
	"repro/internal/baseline/paillier"
)

// Table2Sizes are the index sizes exercised. The paper uses 1k/1M/100M
// chunks; the default run uses 1k and a scaled "large" size and
// extrapolates index bytes per chunk (EXPERIMENTS.md documents this).
type Table2Result struct {
	System        string
	AddNS         time.Duration
	BytesPerChunk float64
	IngestSmall   time.Duration
	IngestLarge   time.Duration // zero for strawman (capped, like the paper's missing 100M column)
	QuerySmall    time.Duration
	QueryLarge    time.Duration
}

// Table2 reproduces the index microbenchmarks: homomorphic ADD cost, index
// size, average ingest time, and average worst-case query time per scheme
// (paper Table 2).
func Table2(w io.Writer, opts Options) ([]Table2Result, error) {
	const small = 1000
	large := uint64(opts.scaled(200_000))
	fmt.Fprintf(w, "Table 2: index microbenchmarks (small=%d chunks, large=%d chunks; strawman capped at %d)\n\n",
		small, large, small)

	var results []Table2Result

	// --- plaintext and TimeCrypt over the real index -----------------
	for _, cfg := range []struct {
		name      string
		encrypted bool
	}{{"plaintext", false}, {"timecrypt", true}} {
		res := Table2Result{System: cfg.name}
		// Micro ADD: modular uint64 addition.
		var acc uint64
		res.AddNS = measure(1_000_000, func() { acc += 12345 })
		_ = acc
		// Small index.
		bSmall, err := newU64Bench(cfg.name, cfg.encrypted, 64, 0)
		if err != nil {
			return nil, err
		}
		if err := fillIndex(bSmall, small); err != nil {
			return nil, err
		}
		res.IngestSmall = measure(small, func() { bSmall.Ingest(3) })
		res.QuerySmall = avgQuery(bSmall, small, 200)
		// Large index.
		bLarge, err := newU64Bench(cfg.name, cfg.encrypted, 64, 0)
		if err != nil {
			return nil, err
		}
		if err := fillIndex(bLarge, large); err != nil {
			return nil, err
		}
		res.BytesPerChunk = bLarge.BytesPerChunk()
		res.IngestLarge = measure(2000, func() { bLarge.Ingest(3) })
		res.QueryLarge = avgQuery(bLarge, large, 200)
		results = append(results, res)
	}

	// --- Paillier strawman (3072-bit = 128-bit security) -------------
	{
		res := Table2Result{System: "paillier"}
		pb, err := newPaillierBench(paillier.Key128SecurityBits, 64, 4)
		if err != nil {
			return nil, err
		}
		// Prefill with one real ciphertext reused (homomorphic adds
		// are still real work); encrypting 1000x at 3072 bits would
		// take minutes.
		ct, err := pb.key.EncryptUint64(3)
		if err != nil {
			return nil, err
		}
		for i := 0; i < small; i++ {
			pb.tree.Append(new(big.Int).Set(ct))
		}
		var x, y big.Int
		x.Set(ct)
		y.Set(ct)
		res.AddNS = measure(2000, func() { pb.key.AddInto(&x, &y) })
		res.IngestSmall = measure(5, func() { pb.Ingest(3) })
		res.QuerySmall = avgQuery(pb, small, 5)
		res.BytesPerChunk = pb.BytesPerChunk()
		results = append(results, res)
	}

	// --- EC-ElGamal strawman (P-256 = 128-bit security) --------------
	{
		res := Table2Result{System: "ec-elgamal"}
		eb, err := newECBench(64, 4, 6*small)
		if err != nil {
			return nil, err
		}
		if err := fillIndex(eb, small); err != nil {
			return nil, err
		}
		a, _ := eb.key.Encrypt(1)
		b2, _ := eb.key.Encrypt(2)
		res.AddNS = measure(2000, func() { ecelgamal.Add(a, b2) })
		res.IngestSmall = measure(20, func() { eb.Ingest(3) })
		res.QuerySmall = avgQuery(eb, small, 10)
		res.BytesPerChunk = eb.BytesPerChunk()
		results = append(results, res)
	}

	// Render with slowdown factors relative to plaintext, like the paper.
	plain := results[0]
	t := &table{header: []string{"System", "ADD", "Index B/chunk (1M est)", "Ingest@1k", "Ingest@large", "Query@1k", "Query@large"}}
	for _, r := range results {
		large := func(d time.Duration) string {
			if d == 0 {
				return "N/A"
			}
			return fmtDur(d) + " (" + ratio(d, plain.IngestLarge) + ")"
		}
		t.add(r.System,
			fmtDur(r.AddNS),
			fmtBytes(r.BytesPerChunk*1e6),
			fmtDur(r.IngestSmall)+" ("+ratio(r.IngestSmall, plain.IngestSmall)+")",
			large(r.IngestLarge),
			fmtDur(r.QuerySmall)+" ("+ratio(r.QuerySmall, plain.QuerySmall)+")",
			large(r.QueryLarge),
		)
	}
	t.write(w)
	return results, nil
}

// avgQuery measures worst-case-alignment range queries: random ranges with
// odd endpoints force maximal index drill-down.
func avgQuery(b indexBench, n uint64, reps int) time.Duration {
	r := rand.New(rand.NewPCG(7, 7))
	return measure(reps, func() {
		a := r.Uint64N(n / 2)
		c := a + 1 + r.Uint64N(n-a-1)
		// Odd endpoints are the worst case for the decomposition.
		if a%2 == 0 && a > 0 {
			a--
		}
		if c%2 == 0 && c < n {
			c++
		}
		if _, err := b.Query(a, c); err != nil {
			panic(err)
		}
	})
}
