package bench

import (
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"repro/internal/baseline/ecelgamal"
	"repro/internal/baseline/paillier"
	"repro/internal/core"
)

// Table3Result holds per-scheme encryption/decryption costs.
type Table3Result struct {
	System     string
	Enc, Dec   time.Duration
	DecRangeOK bool
}

// Table3 reproduces the crypto-operation microbenchmark (paper Table 3):
// cost of one encryption and one decryption per scheme. TimeCrypt uses a
// 2^30-key derivation tree and random positions (worst case: no path
// cache), matching the paper's setup. The paper's IoT (OpenMote) rows run
// the identical code on a Cortex-M3; we report commodity-CPU numbers and
// EXPERIMENTS.md notes the ~200-300x embedded scale factor.
func Table3(w io.Writer, opts Options) ([]Table3Result, error) {
	fmt.Fprintln(w, "Table 3: crypto operation cost (2^30-key tree, random positions)")
	fmt.Fprintln(w)
	var results []Table3Result

	// --- TimeCrypt ----------------------------------------------------
	{
		tree, err := core.NewTree(core.NewPRG(core.PRGAES), 30, core.Node{9})
		if err != nil {
			return nil, err
		}
		enc := core.NewEncryptor(tree.NewWalker())
		dec := core.NewEncryptor(tree.NewWalker())
		r := rand.New(rand.NewPCG(3, 3))
		m := []uint64{12345}
		scratch := make([]uint64, 1)
		positions := make([]uint64, 4096)
		for i := range positions {
			positions[i] = r.Uint64N(tree.NumLeaves() - 2)
		}
		i := 0
		encCost := measure(4096, func() {
			if _, err := enc.EncryptDigest(positions[i%len(positions)], m, scratch); err != nil {
				panic(err)
			}
			i++
		})
		i = 0
		decCost := measure(4096, func() {
			p := positions[i%len(positions)]
			if _, err := dec.DecryptRange(p, p+1, m, scratch); err != nil {
				panic(err)
			}
			i++
		})
		results = append(results, Table3Result{System: "timecrypt", Enc: encCost, Dec: decCost, DecRangeOK: true})
	}

	// --- Paillier (3072-bit) -------------------------------------------
	{
		key, err := paillier.GenerateKey(paillier.Key128SecurityBits)
		if err != nil {
			return nil, err
		}
		var ct interface{ Uint64() uint64 }
		_ = ct
		c, err := key.EncryptUint64(77)
		if err != nil {
			return nil, err
		}
		encCost := measure(5, func() {
			if _, err := key.EncryptUint64(77); err != nil {
				panic(err)
			}
		})
		decCost := measure(10, func() {
			if _, err := key.DecryptCRT(c); err != nil {
				panic(err)
			}
		})
		results = append(results, Table3Result{System: "paillier", Enc: encCost, Dec: decCost, DecRangeOK: true})
	}

	// --- EC-ElGamal (P-256) ---------------------------------------------
	{
		key, err := ecelgamal.GenerateKey()
		if err != nil {
			return nil, err
		}
		table, err := ecelgamal.NewDlogTable(1<<20, 1<<10)
		if err != nil {
			return nil, err
		}
		c, err := key.Encrypt(77_000)
		if err != nil {
			return nil, err
		}
		encCost := measure(100, func() {
			if _, err := key.Encrypt(77_000); err != nil {
				panic(err)
			}
		})
		decCost := measure(20, func() {
			if _, err := key.Decrypt(c, table); err != nil {
				panic(err)
			}
		})
		results = append(results, Table3Result{System: "ec-elgamal", Enc: encCost, Dec: decCost})
	}

	t := &table{header: []string{"System", "Enc", "Dec"}}
	for _, r := range results {
		t.add(r.System, fmtDur(r.Enc), fmtDur(r.Dec))
	}
	t.write(w)
	fmt.Fprintln(w, "\n(IoT row: identical code on a 32 MHz Cortex-M3 runs ~200-300x slower; see EXPERIMENTS.md)")
	return results, nil
}
