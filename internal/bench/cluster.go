package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"repro/internal/chunk"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/kv"
	"repro/internal/server"
	"repro/internal/workload"
)

// ClusterResult is one scale-out configuration's outcome.
type ClusterResult struct {
	Config string
	Shards int
	Report workload.Report
}

// Cluster measures the horizontal scale-out the paper claims for
// TimeCrypt's stateless server tier (§3.2): the same closed-loop
// ingest+query workload against (a) one engine behind one lock (the
// pre-sharding architecture), (b) one lock-striped engine, and (c) a
// consistent-hash router over N engine shards, each with its own store
// partition. Sharding pays twice: stream operations on different shards
// share no locks, and every per-operation store cost runs over a
// 1/N-sized store.
func Cluster(w io.Writer, opts Options) ([]ClusterResult, error) {
	workers := opts.scaled(2 * runtime.GOMAXPROCS(0))
	if workers < 4 {
		workers = 4
	}
	streamsPer := 4
	chunks := opts.scaled(300)
	fmt.Fprintf(w, "Cluster scale-out: %d workers x %d streams, %d chunks/stream, 6 records/chunk, 4 queries per insert\n\n",
		workers, streamsPer, chunks)
	spec := chunk.DigestSpec{Sum: true, Count: true, SumSq: true}

	newHandler := func(shards, stripes int) (server.Handler, error) {
		if shards <= 1 {
			return server.New(kv.NewMemStore(), server.Config{Stripes: stripes})
		}
		cfgs := make([]cluster.Shard, shards)
		for i := range cfgs {
			engine, err := server.New(kv.NewMemStore(), server.Config{})
			if err != nil {
				return nil, err
			}
			cfgs[i] = cluster.Shard{Name: fmt.Sprintf("shard-%d", i), Handler: engine}
		}
		return cluster.NewRouter(cfgs, cluster.Options{})
	}

	run := func(name string, shards, stripes int) (ClusterResult, error) {
		handler, err := newHandler(shards, stripes)
		if err != nil {
			return ClusterResult{}, err
		}
		report, err := workload.Run(context.Background(), workload.LoadConfig{
			Workers:          workers,
			StreamsPerWorker: streamsPer,
			ChunksPerStream:  chunks,
			QueriesPerInsert: 4,
			Generator:        func(seed uint64) workload.Generator { return workload.NewDevOps(seed) },
			NewTransport: func() (client.Transport, error) {
				return &client.InProc{Engine: handler}, nil
			},
			Interval:     10_000,
			Spec:         spec,
			Compression:  chunk.CompressionNone,
			StreamPrefix: name,
		})
		if err != nil {
			return ClusterResult{}, err
		}
		return ClusterResult{Config: name, Shards: shards, Report: report}, nil
	}

	configs := []struct {
		name    string
		shards  int
		stripes int
	}{
		{"1 engine, 1 lock", 1, 1},
		{"1 engine, striped", 1, 0},
		{"4-shard router", 4, 0},
		{"8-shard router", 8, 0},
	}
	var results []ClusterResult
	for _, cfg := range configs {
		// Level the field: drop the previous configuration's store and
		// give the collector a clean slate before timing.
		runtime.GC()
		res, err := run(cfg.name, cfg.shards, cfg.stripes)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
		opts.record(reportMetrics("cluster", cfg.name, res.Report)...)
	}

	t := &table{header: []string{"Config", "Ingest rec/s", "Query ops/s", "Insert p50", "Insert p99", "Query p50", "Query p99"}}
	for _, r := range results {
		t.add(r.Config,
			fmt.Sprintf("%.0f", r.Report.IngestRecordsPS),
			fmt.Sprintf("%.0f", r.Report.QueryOpsPS),
			fmtDur(r.Report.Insert.P50), fmtDur(r.Report.Insert.P99),
			fmtDur(r.Report.Query.P50), fmtDur(r.Report.Query.P99))
	}
	t.write(w)

	base := results[0].Report
	if base.IngestRecordsPS > 0 {
		fmt.Fprintln(w)
		for _, r := range results[1:] {
			fmt.Fprintf(w, "%-18s ingest %.2fx, query %.2fx vs single-lock baseline\n",
				r.Config+":", r.Report.IngestRecordsPS/base.IngestRecordsPS,
				r.Report.QueryOpsPS/base.QueryOpsPS)
		}
	}
	return results, nil
}
