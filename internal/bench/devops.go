package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"repro/internal/chunk"
	"repro/internal/client"
	"repro/internal/kv"
	"repro/internal/server"
	"repro/internal/workload"
)

// DevOps reproduces the §6.3 data-center monitoring experiment: a
// TSBS-style CPU workload (10 s sample rate, 1-minute chunks, 6 records
// per chunk) with clients querying average CPU utilization and the
// fraction of hosts above 50% (served by the digest histogram). The paper
// reports TimeCrypt matching plaintext within 0.75%.
func DevOps(w io.Writer, opts Options) ([]Fig7Result, error) {
	workers := opts.scaled(runtime.GOMAXPROCS(0))
	if workers < 2 {
		workers = 2
	}
	streamsPer := 4 // "hosts" per worker
	chunks := opts.scaled(60)
	fmt.Fprintf(w, "§6.3 DevOps CPU monitoring (%d workers x %d hosts, %d 1-min chunks, 6 records/chunk)\n\n",
		workers, streamsPer, chunks)
	// Histogram bins over CPU % let consumers compute the share of time
	// above 50% utilization.
	spec := chunk.DigestSpec{Sum: true, Count: true, HistBounds: []int64{0, 25, 50, 75, 101}}

	run := func(name string, insecure bool) (Fig7Result, error) {
		engine, err := server.New(kv.NewMemStore(), server.Config{})
		if err != nil {
			return Fig7Result{}, err
		}
		report, err := workload.Run(context.Background(), workload.LoadConfig{
			Workers:          workers,
			StreamsPerWorker: streamsPer,
			ChunksPerStream:  chunks,
			QueriesPerInsert: 4,
			Generator:        func(seed uint64) workload.Generator { return workload.NewDevOps(seed) },
			NewTransport: func() (client.Transport, error) {
				return &client.InProc{Engine: engine}, nil
			},
			Interval:     60_000,
			Spec:         spec,
			Compression:  chunk.CompressionZlib,
			StreamPrefix: name,
			Insecure:     insecure,
		})
		if err != nil {
			return Fig7Result{}, err
		}
		return Fig7Result{Config: name, Report: report}, nil
	}
	var results []Fig7Result
	for _, cfg := range []struct {
		name     string
		insecure bool
	}{{"plaintext", true}, {"timecrypt", false}} {
		res, err := run(cfg.name, cfg.insecure)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
		opts.record(reportMetrics("devops", cfg.name, res.Report)...)
	}
	t := &table{header: []string{"Config", "Ingest rec/s", "Query ops/s", "Insert p50", "Query p50"}}
	for _, r := range results {
		t.add(r.Config,
			fmt.Sprintf("%.0f", r.Report.IngestRecordsPS),
			fmt.Sprintf("%.0f", r.Report.QueryOpsPS),
			fmtDur(r.Report.Insert.P50), fmtDur(r.Report.Query.P50))
	}
	t.write(w)
	if results[0].Report.QueryOpsPS > 0 {
		slow := 1 - results[1].Report.QueryOpsPS/results[0].Report.QueryOpsPS
		fmt.Fprintf(w, "\nTimeCrypt slowdown vs plaintext: %.2f%% (paper: 0.75%%)\n", slow*100)
	}
	return results, nil
}
