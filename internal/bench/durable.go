package bench

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/kv"
	"repro/internal/kv/durable"
	"repro/internal/workload"
)

// DurableResult is one row of the durability experiment.
type DurableResult struct {
	Mode      string
	Writers   int
	Ops       int
	OpsPerSec float64
	Put       workload.Summary
	// FsyncAmortization is records per fsync (1.0 = every op pays a full
	// sync; higher = group commit is working).
	FsyncAmortization float64
}

// DurableIngest measures what durability costs the ingest path: the
// in-memory store as the free baseline, the WAL with one fsync per
// operation (a naive durable store), and the WAL with group commit at
// increasing writer concurrency. The paper's throughput figures run over
// an in-memory store; this experiment bounds what a single-node durable
// deployment (-data-dir) gives up, and shows group commit recovering most
// of it. Target: group commit >= 5x the per-op-fsync rate.
func DurableIngest(w io.Writer, opts Options) ([]DurableResult, error) {
	serialOps := opts.scaled(400)
	groupOps := opts.scaled(4000)
	val := make([]byte, 256) // chunk-sized payload, engine-style keys
	for i := range val {
		val[i] = byte(i)
	}
	fmt.Fprintf(w, "Durable ingest: 256 B values, WAL fsync=always unless noted (ext4 semantics apply)\n\n")

	key := func(i int) string { return fmt.Sprintf("c/bench/%08d", i) }

	// runSerial issues ops sequentially from one goroutine: every Put is
	// its own commit group, so under SyncAlways it pays a full fsync.
	runSerial := func(store kv.Store, ops int) (workload.Summary, time.Duration, error) {
		var lat workload.LatencyRecorder
		start := time.Now()
		for i := 0; i < ops; i++ {
			t0 := time.Now()
			if err := store.Put(key(i), val); err != nil {
				return workload.Summary{}, 0, err
			}
			lat.Record(time.Since(t0))
		}
		return lat.Summarize(), time.Since(start), nil
	}

	// runConcurrent fans ops across writers goroutines; the store's group
	// committer coalesces whatever queues up behind each fsync.
	runConcurrent := func(store kv.Store, ops, writers int) (workload.Summary, time.Duration, error) {
		var (
			wg   sync.WaitGroup
			mu   sync.Mutex
			lat  workload.LatencyRecorder
			errs = make(chan error, writers)
		)
		per := ops / writers
		start := time.Now()
		for g := 0; g < writers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				var local workload.LatencyRecorder
				for i := 0; i < per; i++ {
					t0 := time.Now()
					if err := store.Put(key(g*per+i), val); err != nil {
						errs <- err
						return
					}
					local.Record(time.Since(t0))
				}
				mu.Lock()
				lat.Merge(&local)
				mu.Unlock()
			}(g)
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errs)
		for err := range errs {
			return workload.Summary{}, 0, err
		}
		return lat.Summarize(), elapsed, nil
	}

	openStore := func(policy durable.SyncPolicy) (*durable.Store, string, error) {
		dir, err := os.MkdirTemp("", "timecrypt-durable-bench-")
		if err != nil {
			return nil, "", err
		}
		s, err := durable.Open(dir, durable.Options{Sync: policy})
		if err != nil {
			os.RemoveAll(dir)
			return nil, "", err
		}
		return s, dir, nil
	}

	var results []DurableResult
	add := func(mode string, writers, ops int, sum workload.Summary, elapsed time.Duration, amort float64) {
		results = append(results, DurableResult{
			Mode: mode, Writers: writers, Ops: ops,
			OpsPerSec: float64(ops) / elapsed.Seconds(), Put: sum,
			FsyncAmortization: amort,
		})
	}

	// Baseline: pure in-memory, nothing durable.
	mem := kv.NewMemStore()
	sum, elapsed, err := runSerial(mem, groupOps)
	if err != nil {
		return nil, err
	}
	add("memstore", 1, groupOps, sum, elapsed, 0)

	// Naive durable store: one fsync per acknowledged op.
	s, dir, err := openStore(durable.SyncAlways)
	if err != nil {
		return nil, err
	}
	sum, elapsed, err = runSerial(s, serialOps)
	if err != nil {
		return nil, err
	}
	st := s.Stats()
	perOpAmort := float64(st.Records) / float64(max(st.Fsyncs, 1))
	add("wal/fsync-per-op", 1, serialOps, sum, elapsed, perOpAmort)
	perOpRate := results[len(results)-1].OpsPerSec
	s.Close()
	os.RemoveAll(dir)

	// Group commit: concurrency sweep. Same store config — the only
	// change is writers queueing behind the fsync in flight.
	groupRate := 0.0
	for _, writers := range []int{1, 4, 16, 64} {
		s, dir, err := openStore(durable.SyncAlways)
		if err != nil {
			return nil, err
		}
		sum, elapsed, err = runConcurrent(s, groupOps, writers)
		if err != nil {
			return nil, err
		}
		st := s.Stats()
		add(fmt.Sprintf("wal/group-commit/w=%d", writers), writers, groupOps, sum, elapsed,
			float64(st.Records)/float64(max(st.Fsyncs, 1)))
		if r := results[len(results)-1].OpsPerSec; r > groupRate {
			groupRate = r
		}
		s.Close()
		os.RemoveAll(dir)
	}

	// For scale: the WAL without fsync (the OS flushes on its own) — how
	// much of the gap is the sync itself vs the log write path.
	s, dir, err = openStore(durable.SyncNever)
	if err != nil {
		return nil, err
	}
	sum, elapsed, err = runConcurrent(s, groupOps, 16)
	if err != nil {
		return nil, err
	}
	add("wal/no-fsync/w=16", 16, groupOps, sum, elapsed, 0)
	s.Close()
	os.RemoveAll(dir)

	tbl := &table{header: []string{"mode", "writers", "ops", "ops/sec", "p50", "p99", "records/fsync"}}
	var metrics []Metric
	for _, r := range results {
		amort := "-"
		if r.FsyncAmortization > 0 {
			amort = fmt.Sprintf("%.1f", r.FsyncAmortization)
		}
		tbl.add(r.Mode, fmt.Sprintf("%d", r.Writers), fmt.Sprintf("%d", r.Ops),
			fmt.Sprintf("%.0f", r.OpsPerSec),
			r.Put.P50.Round(time.Microsecond).String(), r.Put.P99.Round(time.Microsecond).String(), amort)
		metrics = append(metrics, Metric{
			Experiment: "durable", Name: r.Mode, OpsPerSec: r.OpsPerSec,
			P50Ms: ms(r.Put.P50), P99Ms: ms(r.Put.P99),
		})
	}
	tbl.write(w)
	opts.record(metrics...)
	ratio := groupRate / perOpRate
	fmt.Fprintf(w, "\ngroup commit vs fsync-per-op: %.1fx (target >= 5x)\n", ratio)
	if ratio < 5 {
		fmt.Fprintf(w, "WARNING: group commit under target on this disk\n")
	}
	return results, nil
}
