package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/chunk"
	"repro/internal/client"
	"repro/internal/kv"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/workload"
)

// subscribeFans is the fan-out width of the experiment: 64 concurrent
// subscribers against 64 concurrent polling cursors, per the acceptance
// bar for the live-subscription subsystem. Not scaled — the comparison is
// only meaningful at a fixed width.
const subscribeFans = 64

// SubscribeResult is one phase of the push-vs-poll comparison.
type SubscribeResult struct {
	Mode    string
	Deltas  int // window deltas delivered across all fans
	Elapsed time.Duration
	PerSec  float64          // deltas/sec across the fan-out
	Latency workload.Summary // live: commit->deliver push latency; drain: per-delta wait
	Resyncs int              // deltas healed from the index instead of pushed live
}

// Subscribe measures what the subscription broker buys over polling.
// Phase 1 (live push): 64 subscribers sit on one stream while a single
// writer ingests; each window's commit time is stamped immediately before
// the completing insert, so the recorded latency is the full
// commit-to-deliver push path (view update, fan-out queue, Recv wakeup).
// The writer waits for every subscriber to take delivery of window k
// before publishing k+1, so the measurement is pure push latency, not
// queueing backlog. Phase 2 (drain, over TCP): through the real front
// end, 64 subscriptions replay the now-committed history as a credited
// push stream against 64 polling cursors issuing one single-window
// AggRange round trip per window — the access pattern a poll-based
// watcher is stuck with. Index work is near-identical either way
// (backfill reads the same windows polling does); what the broker buys
// is the wire: pushed pages under standing credit versus one
// request/response per window. The headline number is the deltas/sec
// ratio; the broker should clear 2x.
func Subscribe(w io.Writer, opts Options) ([]SubscribeResult, error) {
	const wc = 4 // chunks per window
	windows := opts.scaled(384)
	if windows < 8 {
		windows = 8
	}
	fmt.Fprintf(w, "Subscribe: %d subscribers vs %d polling cursors; %d windows of %d chunks, one writer\n\n",
		subscribeFans, subscribeFans, windows, wc)

	spec := chunk.DigestSpec{Sum: true, Count: true}
	specBytes, _ := spec.MarshalBinary()
	cfg := wire.StreamConfig{Epoch: 0, Interval: 100, VectorLen: uint32(spec.VectorLen()),
		Fanout: 64, DigestSpec: specBytes}
	engine, err := server.New(kv.NewMemStore(), server.Config{})
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	const uuid = "subscribe-bench"
	if resp := engine.Handle(ctx, &wire.CreateStream{UUID: uuid, Cfg: cfg}); isWireErr(resp) {
		return nil, fmt.Errorf("create: %v", resp)
	}
	seal := func(idx uint64) []byte {
		start := int64(idx) * 100
		sealed, _ := chunk.SealPlain(spec, chunk.CompressionNone, idx, start, start+100,
			[]chunk.Point{{TS: start, Val: int64(idx%97 + 1)}})
		return chunk.MarshalSealed(sealed)
	}

	// Phase 1: live push. Subscribers attach to the empty stream, the
	// writer ingests windows*wc chunks, stamping commit[k] just before the
	// insert that completes window k. The stamp happens-before the insert,
	// the insert happens-before the broker's publish, so reading
	// commit[ev.Seq] after Recv is ordered.
	commit := make([]time.Time, windows)
	delivered := make([]sync.WaitGroup, windows)
	for k := range delivered {
		delivered[k].Add(subscribeFans)
	}
	type fanResult struct {
		rec     workload.LatencyRecorder
		resyncs int
		err     error
	}
	liveFans := make([]fanResult, subscribeFans)
	var wg sync.WaitGroup
	for f := 0; f < subscribeFans; f++ {
		h, err := engine.Subscribe(ctx, &wire.Subscribe{UUIDs: []string{uuid}, WindowChunks: wc})
		if err != nil {
			return nil, fmt.Errorf("live subscribe %d: %v", f, err)
		}
		wg.Add(1)
		go func(fr *fanResult) {
			defer wg.Done()
			defer h.Close()
			for k := 0; k < windows; k++ {
				ev, err := h.Recv(ctx)
				if err != nil {
					fr.err = err
					// Unblock the writer's delivery barrier for the
					// windows this fan will never take.
					for ; k < windows; k++ {
						delivered[k].Done()
					}
					return
				}
				fr.rec.Record(time.Since(commit[ev.Seq]))
				if ev.Resync {
					fr.resyncs++
				}
				delivered[ev.Seq].Done()
			}
		}(&liveFans[f])
	}
	liveT0 := time.Now()
	for c := 0; c < windows*wc; c++ {
		last := (c+1)%wc == 0
		if last {
			commit[c/wc] = time.Now()
		}
		if resp := engine.Handle(ctx, &wire.InsertChunk{UUID: uuid, Chunk: seal(uint64(c))}); isWireErr(resp) {
			return nil, fmt.Errorf("ingest %d: %v", c, resp)
		}
		if last {
			delivered[c/wc].Wait() // pace: every fan took this window
		}
	}
	wg.Wait()
	liveElapsed := time.Since(liveT0)
	push := &workload.LatencyRecorder{}
	liveResyncs := 0
	for i := range liveFans {
		if liveFans[i].err != nil {
			return nil, fmt.Errorf("live fan %d: %v", i, liveFans[i].err)
		}
		push.Merge(&liveFans[i].rec)
		liveResyncs += liveFans[i].resyncs
	}

	// The drain comparison runs over the real TCP front end: one
	// multiplexed client session carrying 64 concurrent subscription
	// streams, then the same session carrying 64 concurrent pollers.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.NewServer(engine, func(string, ...any) {})
	srvCtx, srvCancel := context.WithCancel(ctx)
	srvDone := make(chan struct{})
	go func() { defer close(srvDone); srv.Serve(srvCtx, lis) }()
	defer func() { srvCancel(); srv.Close(); <-srvDone }()
	tr, err := client.DialTCP(lis.Addr().String())
	if err != nil {
		return nil, err
	}
	defer tr.Close()

	// Phase 2a: subscription drain of committed history. Each stream opens
	// at FromSeq 0 and takes every window as pushed SubEvent frames under
	// standing credit — the broker's answer to "I want everything since X".
	drainFans := make([]fanResult, subscribeFans)
	drainStart := make(chan struct{})
	for f := 0; f < subscribeFans; f++ {
		wg.Add(1)
		go func(fr *fanResult) {
			defer wg.Done()
			<-drainStart
			st, err := tr.Stream(ctx, &wire.Subscribe{UUIDs: []string{uuid}, WindowChunks: wc})
			if err != nil {
				fr.err = err
				return
			}
			defer st.Close()
			first, err := st.Recv()
			if err != nil {
				fr.err = err
				return
			}
			if _, ok := first.(*wire.SubscribeResp); !ok {
				fr.err = fmt.Errorf("handshake: %#v", first)
				return
			}
			for k := 0; k < windows; k++ {
				t0 := time.Now()
				msg, err := st.Recv()
				if err != nil {
					fr.err = err
					return
				}
				if _, ok := msg.(*wire.SubEvent); !ok {
					fr.err = fmt.Errorf("event %d: %#v", k, msg)
					return
				}
				fr.rec.Record(time.Since(t0))
			}
		}(&drainFans[f])
	}
	drainT0 := time.Now()
	close(drainStart)
	wg.Wait()
	drainElapsed := time.Since(drainT0)
	drainRec := &workload.LatencyRecorder{}
	for i := range drainFans {
		if drainFans[i].err != nil {
			return nil, fmt.Errorf("drain fan %d: %v", i, drainFans[i].err)
		}
		drainRec.Merge(&drainFans[i].rec)
	}

	// Phase 2b: polling cursors over the same history — one single-window
	// AggRange round trip per window per cursor, the per-window cost a
	// watcher pays without subscriptions.
	pollFans := make([]fanResult, subscribeFans)
	pollStart := make(chan struct{})
	for f := 0; f < subscribeFans; f++ {
		wg.Add(1)
		go func(fr *fanResult) {
			defer wg.Done()
			<-pollStart
			for k := 0; k < windows; k++ {
				ts := int64(k) * wc * 100
				t0 := time.Now()
				resp, err := tr.RoundTrip(ctx, &wire.AggRange{
					UUIDs: []string{uuid}, Ts: ts, Te: ts + wc*100, WindowChunks: wc,
				})
				fr.rec.Record(time.Since(t0))
				if err != nil {
					fr.err = fmt.Errorf("window %d: %v", k, err)
					return
				}
				if isWireErr(resp) {
					fr.err = fmt.Errorf("window %d: %v", k, resp)
					return
				}
			}
		}(&pollFans[f])
	}
	pollT0 := time.Now()
	close(pollStart)
	wg.Wait()
	pollElapsed := time.Since(pollT0)
	pollRec := &workload.LatencyRecorder{}
	for i := range pollFans {
		if pollFans[i].err != nil {
			return nil, fmt.Errorf("poll fan %d: %v", i, pollFans[i].err)
		}
		pollRec.Merge(&pollFans[i].rec)
	}

	total := windows * subscribeFans
	rate := func(d time.Duration) float64 {
		if d <= 0 {
			return 0
		}
		return float64(total) / d.Seconds()
	}
	results := []SubscribeResult{
		{Mode: "live push x64", Deltas: total, Elapsed: liveElapsed,
			PerSec: rate(liveElapsed), Latency: push.Summarize(), Resyncs: liveResyncs},
		{Mode: "drain subscribe x64", Deltas: total, Elapsed: drainElapsed,
			PerSec: rate(drainElapsed), Latency: drainRec.Summarize()},
		{Mode: "drain poll x64", Deltas: total, Elapsed: pollElapsed,
			PerSec: rate(pollElapsed), Latency: pollRec.Summarize()},
	}

	t := &table{header: []string{"Mode", "Deltas", "Elapsed", "deltas/s", "p50", "p99", "Resyncs"}}
	for _, r := range results {
		t.add(r.Mode, fmt.Sprintf("%d", r.Deltas), fmtDur(r.Elapsed),
			fmt.Sprintf("%.0f", r.PerSec), fmtDur(r.Latency.P50), fmtDur(r.Latency.P99),
			fmt.Sprintf("%d", r.Resyncs))
	}
	t.write(w)
	fmt.Fprintf(w, "\npush latency p50 %s / p99 %s commit-to-deliver across %d subscribers\n",
		fmtDur(results[0].Latency.P50), fmtDur(results[0].Latency.P99), subscribeFans)
	if results[2].PerSec > 0 {
		x := results[1].PerSec / results[2].PerSec
		verdict := "clears"
		if x < 2 {
			verdict = "MISSES"
		}
		fmt.Fprintf(w, "subscription drain moves %.1fx the deltas/sec of per-window polling (%s the 2x bar)\n",
			x, verdict)
	}

	opts.record(Metric{Experiment: "subscribe", Name: "push/latency",
		OpsPerSec: results[0].PerSec, P50Ms: ms(results[0].Latency.P50), P99Ms: ms(results[0].Latency.P99)})
	opts.record(Metric{Experiment: "subscribe", Name: "drain/subscribe",
		OpsPerSec: results[1].PerSec, P50Ms: ms(results[1].Latency.P50), P99Ms: ms(results[1].Latency.P99)})
	opts.record(Metric{Experiment: "subscribe", Name: "drain/poll",
		OpsPerSec: results[2].PerSec, P50Ms: ms(results[2].Latency.P50), P99Ms: ms(results[2].Latency.P99)})
	return results, nil
}
