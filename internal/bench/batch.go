package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"runtime"
	"time"

	"repro/internal/chunk"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/workload"
)

// BatchIngestResult is one ingest mode's outcome over real TCP.
type BatchIngestResult struct {
	Mode      string
	Chunks    int
	RecordsPS float64
	ChunksPS  float64
	Append    workload.Summary // client-observed per-operation latency
}

// BatchIngest measures what the batch-native wire protocol buys: the same
// pre-sealed chunk stream pushed to a real localhost TCP server (a) the
// way the old API forced — one blocking round trip per InsertChunk on one
// serialized connection — and (b) in wire.Batch envelopes, one round trip
// per 64 chunks. Both modes receive byte-identical input, so the
// comparison isolates the per-operation round-trip cost (syscalls, frame
// turnarounds, scheduler wakeups) that batching amortizes; the paper's
// millions-of-records-per-second ingest (§6.3) depends on exactly this.
// Target: batched ≥ 2x per-op.
//
// A third row runs the full client pipeline — sealing included — through
// the pipelined Writer (4 streams, one connection each, bounded in-flight
// batches), the path applications actually use.
func BatchIngest(w io.Writer, opts Options) ([]BatchIngestResult, error) {
	const streams = 4
	chunksPer := opts.scaled(2000)
	total := streams * chunksPer
	const recordsPerChunk = 6
	const interval = 10_000
	epoch := int64(1_700_000_000_000)
	spec := chunk.DigestSpec{Sum: true, Count: true, SumSq: true}
	fmt.Fprintf(w, "Batched vs per-op TCP ingest: %d streams x %d chunks x %d records, localhost\n\n",
		streams, chunksPer, recordsPerChunk)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	startServer := func() (string, func(), error) {
		engine, err := server.New(kv.NewMemStore(), server.Config{})
		if err != nil {
			return "", nil, err
		}
		srv := server.NewServer(engine, func(string, ...any) {})
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		go srv.Serve(ctx, lis)
		runtime.GC()
		return lis.Addr().String(), func() { srv.Close() }, nil
	}
	newStream := func(tr client.Transport, mode string, i int) (*client.OwnerStream, error) {
		return client.NewOwner(tr).CreateStream(ctx, client.StreamOptions{
			UUID: fmt.Sprintf("batch-%s-%d", mode, i), Epoch: epoch, Interval: interval,
			Spec: spec, Compression: chunk.CompressionNone,
		})
	}
	points := func(stream int, c uint64) []chunk.Point {
		return workload.NewDevOps(uint64(stream)).Chunk(c, epoch, interval)
	}

	// Pre-seal the whole load once (fresh HEAC key material per stream);
	// the wire-level modes replay these byte-identical requests. Sealing
	// cost is identical client CPU in both modes, so excluding it
	// isolates the protocol difference (the writer row below includes it).
	sealed := make([][][]byte, streams)
	for i := range sealed {
		tree, err := core.GenerateTree(core.NewPRG(core.PRGAES), core.DefaultTreeHeight)
		if err != nil {
			return nil, err
		}
		enc := core.NewEncryptor(tree.NewWalker())
		sealed[i] = make([][]byte, chunksPer)
		for c := 0; c < chunksPer; c++ {
			start := epoch + int64(c)*interval
			s, err := chunk.Seal(enc, spec, chunk.CompressionNone, uint64(c), start, start+interval, points(i, uint64(c)))
			if err != nil {
				return nil, err
			}
			sealed[i][c] = chunk.MarshalSealed(s)
		}
	}

	result := func(mode string, elapsed time.Duration, lat *workload.LatencyRecorder) BatchIngestResult {
		return BatchIngestResult{
			Mode: mode, Chunks: total,
			RecordsPS: float64(total*recordsPerChunk) / elapsed.Seconds(),
			ChunksPS:  float64(total) / elapsed.Seconds(),
			Append:    lat.Summarize(),
		}
	}

	// --- per-op: one blocking round trip per chunk, one connection ------
	runPerOp := func() (BatchIngestResult, error) {
		addr, stop, err := startServer()
		if err != nil {
			return BatchIngestResult{}, err
		}
		tr, err := client.DialTCP(addr)
		if err != nil {
			stop()
			return BatchIngestResult{}, err
		}
		for i := 0; i < streams; i++ {
			if _, err := newStream(tr, "per-op", i); err != nil {
				stop()
				return BatchIngestResult{}, err
			}
		}
		var lat workload.LatencyRecorder
		start := time.Now()
		for c := 0; c < chunksPer; c++ {
			for i := 0; i < streams; i++ {
				req := &wire.InsertChunk{UUID: fmt.Sprintf("batch-per-op-%d", i), Chunk: sealed[i][c]}
				t0 := time.Now()
				resp, err := tr.RoundTrip(ctx, req)
				if err != nil {
					stop()
					return BatchIngestResult{}, err
				}
				if e, bad := resp.(*wire.Error); bad {
					stop()
					return BatchIngestResult{}, e
				}
				lat.Record(time.Since(t0))
			}
		}
		res := result("per-op", time.Since(start), &lat)
		tr.Close()
		stop()
		return res, nil
	}

	// --- batched: the same requests, 64 chunks per Batch envelope -------
	runBatched := func() (BatchIngestResult, error) {
		const batchSize = 64
		addr, stop, err := startServer()
		if err != nil {
			return BatchIngestResult{}, err
		}
		tr, err := client.DialTCP(addr)
		if err != nil {
			stop()
			return BatchIngestResult{}, err
		}
		for i := 0; i < streams; i++ {
			if _, err := newStream(tr, "batched", i); err != nil {
				stop()
				return BatchIngestResult{}, err
			}
		}
		var lat workload.LatencyRecorder
		start := time.Now()
		batch := &wire.Batch{}
		flush := func() error {
			if len(batch.Reqs) == 0 {
				return nil
			}
			t0 := time.Now()
			resp, err := tr.RoundTrip(ctx, batch)
			if err != nil {
				return err
			}
			br, ok := resp.(*wire.BatchResp)
			if !ok {
				if e, bad := resp.(*wire.Error); bad {
					return e
				}
				return fmt.Errorf("unexpected batch response %T", resp)
			}
			for _, sub := range br.Resps {
				if e, bad := sub.(*wire.Error); bad {
					return e
				}
			}
			lat.Record(time.Since(t0))
			batch.Reqs = batch.Reqs[:0]
			return nil
		}
		for c := 0; c < chunksPer; c++ {
			for i := 0; i < streams; i++ {
				batch.Reqs = append(batch.Reqs, &wire.InsertChunk{UUID: fmt.Sprintf("batch-batched-%d", i), Chunk: sealed[i][c]})
				if len(batch.Reqs) == batchSize {
					if err := flush(); err != nil {
						stop()
						return BatchIngestResult{}, err
					}
				}
			}
		}
		if err := flush(); err != nil {
			stop()
			return BatchIngestResult{}, err
		}
		res := result("batched", time.Since(start), &lat)
		tr.Close()
		stop()
		return res, nil
	}

	// --- writer: full pipeline incl. sealing, one producer goroutine ----
	runWriter := func() (BatchIngestResult, error) {
		addr, stop, err := startServer()
		if err != nil {
			return BatchIngestResult{}, err
		}
		writers := make([]*client.Writer, streams)
		var conns []*client.TCP
		for i := range writers {
			tr, err := client.DialTCP(addr)
			if err != nil {
				stop()
				return BatchIngestResult{}, err
			}
			conns = append(conns, tr)
			s, err := newStream(tr, "writer", i)
			if err != nil {
				stop()
				return BatchIngestResult{}, err
			}
			if writers[i], err = s.Writer(ctx, client.WriterOptions{BatchChunks: 64, MaxInFlight: 4}); err != nil {
				stop()
				return BatchIngestResult{}, err
			}
		}
		var lat workload.LatencyRecorder
		start := time.Now()
		for c := 0; c < chunksPer; c++ {
			for i, wr := range writers {
				pts := points(i, uint64(c))
				t0 := time.Now()
				if err := wr.AppendChunk(pts); err != nil {
					stop()
					return BatchIngestResult{}, err
				}
				lat.Record(time.Since(t0))
			}
		}
		for _, wr := range writers {
			if err := wr.Close(); err != nil {
				stop()
				return BatchIngestResult{}, err
			}
		}
		res := result("writer", time.Since(start), &lat)
		for _, c := range conns {
			c.Close()
		}
		stop()
		return res, nil
	}

	// Interleaved best-of-5: single-core hosts (and CI runners) see large
	// correlated noise spikes; taking each mode's best round measures the
	// code, not the neighbors.
	var results []BatchIngestResult
	modeNames := []string{"per-op", "batched", "writer"}
	modes := []func() (BatchIngestResult, error){runPerOp, runBatched, runWriter}
	for round := 0; round < 5; round++ {
		for m, run := range modes {
			res, err := run()
			if err != nil {
				return nil, fmt.Errorf("%s round %d: %w", modeNames[m], round, err)
			}
			if round == 0 {
				results = append(results, res)
			} else if res.RecordsPS > results[m].RecordsPS {
				results[m] = res
			}
		}
	}

	for _, r := range results {
		opts.record(Metric{
			Experiment: "batch", Name: r.Mode + "/ingest", OpsPerSec: r.RecordsPS,
			P50Ms: ms(r.Append.P50), P99Ms: ms(r.Append.P99),
		})
	}
	t := &table{header: []string{"Mode", "Records/s", "Chunks/s", "Op p50", "Op p99"}}
	for _, r := range results {
		t.add(r.Mode, fmt.Sprintf("%.0f", r.RecordsPS), fmt.Sprintf("%.0f", r.ChunksPS),
			fmtDur(r.Append.P50), fmtDur(r.Append.P99))
	}
	t.write(w)
	if results[0].RecordsPS > 0 {
		fmt.Fprintf(w, "\nbatched ingest %.2fx per-op round trips (target >= 2x); writer end-to-end %.2fx\n",
			results[1].RecordsPS/results[0].RecordsPS, results[2].RecordsPS/results[0].RecordsPS)
	}
	fmt.Fprintln(w, "(per-op/batched replay identical pre-sealed chunks; 'op' latency is per round trip —")
	fmt.Fprintln(w, " one chunk per-op, 64 chunks batched. The writer row includes client-side sealing;")
	fmt.Fprintln(w, " its op latency is the enqueue cost.)")
	return results, nil
}
