package bench

import (
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"repro/internal/core"
)

// Fig6Point is one series point: key-derivation time on a tree with 2^H
// keys, per PRG construction.
type Fig6Point struct {
	Height  int
	Latency map[string]time.Duration
}

// Fig6 reproduces the PRG comparison for the key-derivation tree (paper
// Fig. 6): deriving one key costs log2(n) PRG expansions, so latency grows
// linearly in the tree height, with the constant set by the construction.
// The paper compares software AES, SHA-256, and hardware AES-NI; Go's
// crypto/aes uses the hardware instructions, so the three lines here are
// AES (hardware, the paper's AES-NI), SHA-256, and HMAC-SHA-256 (the
// slowest software path).
func Fig6(w io.Writer, opts Options) ([]Fig6Point, error) {
	fmt.Fprintln(w, "Fig 6: key derivation cost vs keystream size (one key = log2(n) PRG expansions)")
	fmt.Fprintln(w)
	kinds := []core.PRGKind{core.PRGAES, core.PRGSHA256, core.PRGHMAC}
	iters := opts.scaled(2000)
	var points []Fig6Point
	for h := 10; h <= 60; h += 10 {
		p := Fig6Point{Height: h, Latency: map[string]time.Duration{}}
		for _, kind := range kinds {
			tree, err := core.NewTree(core.NewPRG(kind), h, core.Node{byte(h)})
			if err != nil {
				return nil, err
			}
			r := rand.New(rand.NewPCG(uint64(h), 1))
			n := tree.NumLeaves()
			p.Latency[kind.String()] = measure(iters, func() {
				if _, err := tree.Leaf(r.Uint64N(n)); err != nil {
					panic(err)
				}
			})
		}
		points = append(points, p)
	}
	t := &table{header: []string{"keys", "aes (hw)", "sha256", "hmac"}}
	for _, p := range points {
		t.add(fmt.Sprintf("2^%d", p.Height),
			fmtDur(p.Latency["aes"]), fmtDur(p.Latency["sha256"]), fmtDur(p.Latency["hmac"]))
	}
	t.write(w)
	return points, nil
}
