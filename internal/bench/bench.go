// Package bench regenerates every table and figure of the paper's
// evaluation (§6) on local hardware: Table 2 (index microbenchmarks),
// Table 3 (crypto operation costs), Fig. 5 (query latency vs. interval),
// Fig. 6 (key derivation cost per PRG), Fig. 7 (end-to-end throughput and
// latency), Fig. 8 (granularity sweep), the §6.2 access-control comparison,
// and the §6.3 DevOps run. Absolute numbers differ from the paper's AWS
// testbed; the harness reproduces the comparisons' shape. EXPERIMENTS.md
// records paper-vs-measured values.
package bench

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/workload"
)

// Options scales the experiments. Scale 1.0 is a laptop/CI-sized run
// (seconds to minutes); larger scales approach the paper's sizes.
type Options struct {
	Scale float64
	// Results, when non-nil, collects machine-readable metrics alongside
	// the human-readable tables (cmd/timecrypt-bench writes them to
	// BENCH_results.json so the perf trajectory is tracked across PRs).
	Results *Results
}

// Metric is one machine-readable benchmark data point.
type Metric struct {
	Experiment string  `json:"experiment"`
	Name       string  `json:"name"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	// BytesPerOp is the mean heap bytes allocated per operation, recorded
	// by allocation-sensitive experiments (hotpath); 0 elsewhere.
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
}

// Results collects metrics across experiments; safe for concurrent use.
type Results struct {
	mu      sync.Mutex
	metrics []Metric
}

// Add appends metrics.
func (r *Results) Add(ms ...Metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, ms...)
}

// Metrics snapshots the collected metrics.
func (r *Results) Metrics() []Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Metric(nil), r.metrics...)
}

// record adds metrics when a collector is attached.
func (o Options) record(ms ...Metric) {
	if o.Results != nil {
		o.Results.Add(ms...)
	}
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// reportMetrics converts a workload report into ingest and query metrics.
func reportMetrics(experiment, name string, r workload.Report) []Metric {
	return []Metric{
		{Experiment: experiment, Name: name + "/ingest", OpsPerSec: r.IngestRecordsPS,
			P50Ms: ms(r.Insert.P50), P99Ms: ms(r.Insert.P99)},
		{Experiment: experiment, Name: name + "/query", OpsPerSec: r.QueryOpsPS,
			P50Ms: ms(r.Query.P50), P99Ms: ms(r.Query.P99)},
	}
}

// FromEnv reads TIMECRYPT_SCALE (default 1.0).
func FromEnv() Options {
	opts := Options{Scale: 1.0}
	if s := os.Getenv("TIMECRYPT_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			opts.Scale = v
		}
	}
	return opts
}

func (o Options) scaled(base int) int {
	n := int(float64(base) * o.Scale)
	if n < 1 {
		n = 1
	}
	return n
}

// measure runs fn iters times and returns the mean per-op duration.
func measure(iters int, fn func()) time.Duration {
	if iters < 1 {
		iters = 1
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(iters)
}

// table is a minimal aligned-column text table writer.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		for j := 0; j < widths[i]; j++ {
			sep[i] += "-"
		}
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// fmtDur renders a duration with µs/ms/ns units like the paper's tables.
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// fmtBytes renders sizes.
func fmtBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

// ratio renders a slowdown factor relative to a baseline.
func ratio(x, base time.Duration) string {
	if base <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(x)/float64(base))
}
