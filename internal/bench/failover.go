package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/chunk"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/kv"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/workload"
)

// FailoverResult is one measured facet of replication: the per-insert
// cost of shipping to F followers, or the time a client is dark across a
// leader crash.
type FailoverResult struct {
	Name    string
	Latency workload.Summary
	Ops     int
}

// failoverMember is one in-process replication group member served over
// real TCP, with a crash switch (listener and sessions die unflushed).
type failoverMember struct {
	node *replica.Node
	addr string
	kill func()
}

func startFailoverMember(lease time.Duration, quorum bool) (*failoverMember, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	node, err := replica.New(kv.NewMemStore(), server.Config{}, replica.Options{
		Self:   lis.Addr().String(),
		Lease:  lease,
		Logf:   func(string, ...any) {},
		Quorum: quorum,
	})
	if err != nil {
		lis.Close()
		return nil, err
	}
	srv := server.NewServer(node, func(string, ...any) {})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ctx, lis) }()
	m := &failoverMember{node: node, addr: lis.Addr().String()}
	killed := false
	m.kill = func() {
		if killed {
			return
		}
		killed = true
		node.Close()
		cancel()
		srv.Close()
		<-done
	}
	return m, nil
}

// Failover measures the two prices of per-shard replication. Ingest
// overhead: the same closed-loop insert stream runs against a group with
// F=0/1/2 followers — every statement is acknowledged only after all
// active followers applied it, so the delta is the synchronous shipping
// round trip. Time to recovery: the group leader is killed mid-service
// and the darkness window — from the kill to the first read answered by
// the promoted follower through an unchanged router shard — is measured
// over repeated trials (it is dominated by the lease the failover must
// wait out before promoting, plus detection and the promotion handshake).
func Failover(w io.Writer, opts Options) ([]FailoverResult, error) {
	inserts := opts.scaled(300)
	trials := opts.scaled(8)
	if trials < 4 {
		trials = 4
	}
	const lease = 250 * time.Millisecond
	fmt.Fprintf(w, "Failover: %d closed-loop inserts per replication factor; %d leader-kill recovery trials (lease %s)\n\n",
		inserts, trials, lease)

	spec := chunk.DigestSpec{Sum: true, Count: true}
	specBytes, _ := spec.MarshalBinary()
	cfg := wire.StreamConfig{Epoch: 0, Interval: 100, VectorLen: uint32(spec.VectorLen()),
		Fanout: 64, DigestSpec: specBytes}
	seal := func(idx uint64) []byte {
		start := int64(idx) * 100
		sealed, _ := chunk.SealPlain(spec, chunk.CompressionNone, idx, start, start+100,
			[]chunk.Point{{TS: start, Val: int64(idx%97 + 1)}})
		return chunk.MarshalSealed(sealed)
	}
	ctx := context.Background()
	var results []FailoverResult

	// Ingest overhead at F = 0, 1, 2 in availability mode, plus the same
	// 3-member group in quorum mode (ack at 2 of 3, leader included, so
	// the slower follower leaves the critical path). All rows run the
	// same replica node over TCP so F=0 isolates replication, not
	// transport.
	runIngest := func(name, uuid string, followers int, quorum bool) error {
		var members []*failoverMember
		defer func() {
			for _, m := range members {
				m.kill()
			}
		}()
		for i := 0; i <= followers; i++ {
			m, err := startFailoverMember(lease, quorum)
			if err != nil {
				return err
			}
			members = append(members, m)
		}
		if followers > 0 {
			addrs := make([]string, 0, followers)
			for _, m := range members[1:] {
				addrs = append(addrs, m.addr)
			}
			if err := members[0].node.Lead(addrs); err != nil {
				return err
			}
		}
		tr, err := client.DialTCP(members[0].addr)
		if err != nil {
			return err
		}
		defer tr.Close()
		if resp, err := tr.RoundTrip(ctx, &wire.CreateStream{UUID: uuid, Cfg: cfg}); err != nil || isWireErr(resp) {
			return fmt.Errorf("create %s: %v, %v", uuid, resp, err)
		}
		rec := &workload.LatencyRecorder{}
		for c := 0; c < inserts; c++ {
			payload := seal(uint64(c))
			t0 := time.Now()
			resp, err := tr.RoundTrip(ctx, &wire.InsertChunk{UUID: uuid, Chunk: payload})
			rec.Record(time.Since(t0))
			if err != nil || isWireErr(resp) {
				return fmt.Errorf("insert %s/%d: %v, %v", uuid, c, resp, err)
			}
		}
		results = append(results, FailoverResult{Name: name, Latency: rec.Summarize(), Ops: inserts})
		return nil
	}
	for followers := 0; followers <= 2; followers++ {
		if err := runIngest(fmt.Sprintf("ingest F=%d", followers),
			fmt.Sprintf("failover-f%d", followers), followers, false); err != nil {
			return nil, err
		}
	}
	if err := runIngest("ingest F=2 quorum", "failover-f2q", 2, true); err != nil {
		return nil, err
	}

	// Time to recovery: a replicated group behind a router shard; kill
	// the leader and clock the first successful read after the crash. The
	// quorum variant runs 3 members with majority acknowledgement, so its
	// failover also fences the surviving majority before promoting.
	runRecovery := func(name string, quorum bool) (*workload.LatencyRecorder, error) {
		rec := &workload.LatencyRecorder{}
		groupSize := 2
		if quorum {
			groupSize = 3
		}
		for trial := 0; trial < trials; trial++ {
			var members []*failoverMember
			var addrs []string
			for i := 0; i < groupSize; i++ {
				m, err := startFailoverMember(lease, quorum)
				if err != nil {
					for _, k := range members {
						k.kill()
					}
					return nil, err
				}
				members = append(members, m)
				addrs = append(addrs, m.addr)
			}
			kill := func() {
				for _, m := range members {
					m.kill()
				}
			}
			if err := members[0].node.Lead(addrs[1:]); err != nil {
				kill()
				return nil, err
			}
			sh, err := cluster.NewReplicatedShardOptions("g0", addrs,
				cluster.GroupOptions{Logf: func(string, ...any) {}, Quorum: quorum})
			if err != nil {
				kill()
				return nil, err
			}
			uuid := fmt.Sprintf("recovery-%s-%d", name, trial)
			if resp := sh.Handler.Handle(ctx, &wire.CreateStream{UUID: uuid, Cfg: cfg}); isWireErr(resp) {
				kill()
				return nil, fmt.Errorf("create %s: %v", uuid, resp)
			}
			for c := 0; c < 8; c++ {
				if resp := sh.Handler.Handle(ctx, &wire.InsertChunk{UUID: uuid, Chunk: seal(uint64(c))}); isWireErr(resp) {
					kill()
					return nil, fmt.Errorf("trial %d ingest %d: %v", trial, c, resp)
				}
			}
			query := &wire.StatRange{UUIDs: []string{uuid}, Ts: 0, Te: 8 * 100}

			members[0].kill()
			t0 := time.Now()
			// One blocking read rides the whole failover: detection, lease
			// grace, (for quorum: majority fence,) promotion, retry
			// against the new leader.
			if resp := sh.Handler.Handle(ctx, query); isWireErr(resp) {
				kill()
				return nil, fmt.Errorf("trial %d post-crash read: %v", trial, resp)
			}
			rec.Record(time.Since(t0))

			if c, ok := sh.Handler.(io.Closer); ok {
				c.Close()
			}
			kill()
		}
		results = append(results, FailoverResult{Name: name, Latency: rec.Summarize(), Ops: trials})
		return rec, nil
	}
	recRec, err := runRecovery("time to recovery", false)
	if err != nil {
		return nil, err
	}
	if _, err := runRecovery("time to recovery quorum", true); err != nil {
		return nil, err
	}

	t := &table{header: []string{"Facet", "Ops", "p50", "p99", "max"}}
	for _, r := range results {
		t.add(r.Name, fmt.Sprintf("%d", r.Ops), fmtDur(r.Latency.P50), fmtDur(r.Latency.P99), fmtDur(r.Latency.Max))
	}
	t.write(w)
	f0 := results[0].Latency
	if f0.P50 > 0 {
		fmt.Fprintf(w, "\nreplicated ingest p50: F=1 %.2fx, F=2 %.2fx, F=2 quorum %.2fx of unreplicated; recovery p50 %s against a %s lease\n",
			float64(results[1].Latency.P50)/float64(f0.P50),
			float64(results[2].Latency.P50)/float64(f0.P50),
			float64(results[3].Latency.P50)/float64(f0.P50),
			fmtDur(recRec.Summarize().P50), lease)
	}
	for _, r := range results {
		opts.record(Metric{Experiment: "failover", Name: r.Name,
			OpsPerSec: opsPerSec(r.Ops, r.Latency), P50Ms: ms(r.Latency.P50), P99Ms: ms(r.Latency.P99)})
	}
	return results, nil
}
