package netchaos

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// reorderHold caps how long a reordered frame is held waiting for a
// successor to overtake it: long enough to land behind back-to-back
// traffic, short enough that a held final frame cannot stall a test.
const reorderHold = 25 * time.Millisecond

// conn is a fault-injecting net.Conn. The application talks to a pair of
// in-process pipes; two pumps shuttle whole protocol frames between the
// pipes and the real connection, applying the directed link's faults —
// frame-aware on purpose, because byte-level drop or reorder would only
// corrupt the length-prefixed framing and kill the session rather than
// simulate a lossy network the protocol must survive.
type conn struct {
	real net.Conn
	nw   *Network
	self string // link name frames we send are attributed to
	peer string

	appR *io.PipeReader // application reads delivered inbound frames here
	inW  *io.PipeWriter
	outR *io.PipeReader
	appW *io.PipeWriter // application writes outbound frames here

	closeOnce sync.Once
}

// wrap puts real behind the fault layer: writes ride the (self, peer)
// link, reads ride (peer, self). seq distinguishes connections on the
// same link so each draws an independent, still-deterministic PRNG.
func (nw *Network) wrap(real net.Conn, self, peer string, seq uint64) net.Conn {
	outR, appW := io.Pipe()
	appR, inW := io.Pipe()
	c := &conn{real: real, nw: nw, self: self, peer: peer, appR: appR, inW: inW, outR: outR, appW: appW}
	outbound := &pump{nw: nw, from: self, to: peer,
		rng: rand.New(rand.NewPCG(nw.linkSeed(self, peer, seq), 0xc4a05)), dst: real}
	inbound := &pump{nw: nw, from: peer, to: self,
		rng: rand.New(rand.NewPCG(nw.linkSeed(peer, self, seq), 0xc4a05)), dst: inW}
	go func() {
		outbound.run(outR)
		// The writer pump quitting (app closed, or a write to a dead
		// socket) ends the connection for the app too.
		outR.CloseWithError(io.ErrClosedPipe)
	}()
	go func() {
		inbound.run(real)
		inW.CloseWithError(io.EOF) // peer gone: app reads see EOF
	}()
	return c
}

func (c *conn) Read(p []byte) (int, error)  { return c.appR.Read(p) }
func (c *conn) Write(p []byte) (int, error) { return c.appW.Write(p) }

func (c *conn) Close() error {
	c.closeOnce.Do(func() {
		c.appW.CloseWithError(io.ErrClosedPipe)
		c.appR.CloseWithError(io.ErrClosedPipe)
		c.real.Close()
	})
	return nil
}

func (c *conn) LocalAddr() net.Addr                { return c.real.LocalAddr() }
func (c *conn) RemoteAddr() net.Addr               { return c.real.RemoteAddr() }
func (c *conn) SetDeadline(t time.Time) error      { return c.real.SetDeadline(t) }
func (c *conn) SetReadDeadline(t time.Time) error  { return c.real.SetReadDeadline(t) }
func (c *conn) SetWriteDeadline(t time.Time) error { return c.real.SetWriteDeadline(t) }

// pump moves frames one direction across a link, applying its faults.
type pump struct {
	nw       *Network
	from, to string
	rng      *rand.Rand
	dst      io.Writer

	mu   sync.Mutex // guards held and serializes dst writes with the hold timer
	held []byte     // at most one frame held back for reordering
}

// roll draws one fault decision. Decisions are drawn for every frame in
// arrival order whether or not the fault is currently enabled, so the
// pattern a seed produces does not shift when a schedule toggles rules.
func (p *pump) roll(perMille int) bool {
	v := p.rng.IntN(1000)
	return perMille > 0 && v < perMille
}

func (p *pump) run(src io.Reader) {
	hdr := make([]byte, 4)
	for {
		frame, err := readFrame(src, hdr)
		if err != nil {
			p.flushHeld()
			return
		}
		f := p.nw.rule(p.from, p.to)
		drop := p.roll(f.DropPerMille)
		dup := p.roll(f.DupPerMille)
		reorder := p.roll(f.ReorderPerMille)
		if f.Delay > 0 {
			time.Sleep(f.Delay)
		}
		if drop {
			continue
		}
		p.mu.Lock()
		if reorder && p.held == nil {
			p.held = frame
			p.mu.Unlock()
			// Deliver the held frame even if no successor overtakes it.
			time.AfterFunc(reorderHold, p.flushHeld)
			continue
		}
		if _, err := p.dst.Write(frame); err != nil {
			p.mu.Unlock()
			return
		}
		if dup {
			if _, err := p.dst.Write(frame); err != nil {
				p.mu.Unlock()
				return
			}
		}
		held := p.held
		p.held = nil
		if held != nil {
			if _, err := p.dst.Write(held); err != nil {
				p.mu.Unlock()
				return
			}
		}
		p.mu.Unlock()
	}
}

// flushHeld delivers a reorder-held frame that no successor overtook.
func (p *pump) flushHeld() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.held != nil {
		p.dst.Write(p.held)
		p.held = nil
	}
}

// readFrame reads one length-prefixed protocol frame (header included)
// from src. hdr is a reusable 4-byte scratch buffer.
func readFrame(src io.Reader, hdr []byte) ([]byte, error) {
	if _, err := io.ReadFull(src, hdr); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > wire.MaxFrameSize {
		// Not this protocol's framing; nothing sane to fault. Kill the
		// connection rather than forward garbage with fake confidence.
		return nil, fmt.Errorf("netchaos: implausible frame length %d", n)
	}
	frame := make([]byte, 4+int(n))
	copy(frame, hdr)
	if _, err := io.ReadFull(src, frame[4:]); err != nil {
		return nil, err
	}
	return frame, nil
}
