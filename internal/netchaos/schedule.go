package netchaos

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"time"
)

// Step is one timed fault transition in a schedule.
type Step struct {
	// At is the step's offset from the start of the schedule run.
	At time.Duration
	// Desc names the transition for logs, so a failing schedule reads as
	// a story and replays from its seed.
	Desc string
	// Do applies the transition.
	Do func(*Network)
}

// RandomSchedule derives a deterministic fault schedule from seed over
// the named nodes: `steps` transitions spaced `gap` apart, drawn from
// symmetric partitions, single-node isolation, one-way partitions, lossy
// links (drop + duplicate + reorder), added delay, and heals. The
// schedule always ends with a heal one gap after the last transition, so
// invariants can be checked against a converged group.
func RandomSchedule(seed uint64, nodes []string, steps int, gap time.Duration) []Step {
	rng := rand.New(rand.NewPCG(seed, 0x5c4ed))
	var out []Step
	for i := 0; i < steps; i++ {
		at := gap * time.Duration(i+1)
		switch rng.IntN(6) {
		case 0: // symmetric partition into two groups
			perm := rng.Perm(len(nodes))
			cut := 1 + rng.IntN(len(nodes)-1)
			var a, b []string
			for j, k := range perm {
				if j < cut {
					a = append(a, nodes[k])
				} else {
					b = append(b, nodes[k])
				}
			}
			out = append(out, Step{At: at,
				Desc: fmt.Sprintf("partition {%s} | {%s}", strings.Join(a, ","), strings.Join(b, ",")),
				Do:   func(nw *Network) { nw.Heal(); nw.Partition(a, b) }})
		case 1: // isolate one node from everyone (routers included)
			v := nodes[rng.IntN(len(nodes))]
			rest := append([]string{World}, exclude(nodes, v)...)
			out = append(out, Step{At: at, Desc: "isolate " + v,
				Do: func(nw *Network) { nw.Heal(); nw.Partition([]string{v}, rest) }})
		case 2: // one-way partition between a random ordered pair
			from := nodes[rng.IntN(len(nodes))]
			to := exclude(nodes, from)[rng.IntN(len(nodes)-1)]
			out = append(out, Step{At: at, Desc: fmt.Sprintf("one-way cut %s -> %s", from, to),
				Do: func(nw *Network) { nw.Heal(); nw.OneWay(from, to) }})
		case 3: // lossy mesh: drop, duplicate, and reorder everywhere
			f := Faults{DropPerMille: 50 + rng.IntN(250), DupPerMille: rng.IntN(100), ReorderPerMille: rng.IntN(150)}
			out = append(out, Step{At: at,
				Desc: fmt.Sprintf("lossy mesh drop=%d‰ dup=%d‰ reorder=%d‰", f.DropPerMille, f.DupPerMille, f.ReorderPerMille),
				Do: func(nw *Network) {
					nw.Heal()
					for _, a := range nodes {
						for _, b := range nodes {
							if a != b {
								nw.SetLink(a, b, f)
							}
						}
					}
				}})
		case 4: // uniform added delay
			d := time.Duration(1+rng.IntN(4)) * time.Millisecond
			out = append(out, Step{At: at, Desc: fmt.Sprintf("delay all links %s", d),
				Do: func(nw *Network) {
					nw.Heal()
					for _, a := range nodes {
						for _, b := range nodes {
							if a != b {
								nw.SetLink(a, b, Faults{Delay: d})
							}
						}
					}
				}})
		default:
			out = append(out, Step{At: at, Desc: "heal", Do: (*Network).Heal})
		}
	}
	out = append(out, Step{At: gap * time.Duration(steps+1), Desc: "final heal", Do: (*Network).Heal})
	return out
}

func exclude(nodes []string, skip string) []string {
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n != skip {
			out = append(out, n)
		}
	}
	return out
}

// Run applies a schedule against the network in real time, logging each
// transition, and returns once the last step has been applied.
func (nw *Network) Run(steps []Step) {
	start := time.Now()
	for _, s := range steps {
		if wait := s.At - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		nw.logf("netchaos: t=%s %s", s.At, s.Desc)
		s.Do(nw)
	}
}
