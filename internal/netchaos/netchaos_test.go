package netchaos

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// echoServer accepts framed connections and echoes every frame back,
// recording the payloads it saw in arrival order.
type echoServer struct {
	lis net.Listener

	mu   sync.Mutex
	seen []string
}

func startEcho(t *testing.T, lis net.Listener) *echoServer {
	t.Helper()
	s := &echoServer{lis: lis}
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					payload, err := wire.ReadFrame(conn)
					if err != nil {
						return
					}
					s.mu.Lock()
					s.seen = append(s.seen, string(payload))
					s.mu.Unlock()
					if err := wire.WriteFrame(conn, payload); err != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { lis.Close() })
	return s
}

func (s *echoServer) received() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.seen...)
}

func tcpListener(t *testing.T) net.Listener {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return lis
}

func dialEcho(t *testing.T, nw *Network, from, addr string) net.Conn {
	t.Helper()
	conn, err := nw.Dialer(from)(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// echoReader drains echoed frames into a channel, so tests can both wait
// for an echo and assert that none arrives — without a per-check reader
// goroutine racing a later one for the byte stream.
func echoReader(conn net.Conn) <-chan string {
	ch := make(chan string, 64)
	go func() {
		defer close(ch)
		for {
			p, err := wire.ReadFrame(conn)
			if err != nil {
				return
			}
			ch <- string(p)
		}
	}()
	return ch
}

// readFrameTimeout receives one echoed frame or reports that none
// arrived within d.
func readFrameTimeout(t *testing.T, ch <-chan string, d time.Duration) (string, bool) {
	t.Helper()
	select {
	case got, ok := <-ch:
		if !ok {
			t.Fatal("echo stream closed")
		}
		return got, true
	case <-time.After(d):
		return "", false
	}
}

func TestCleanLinkPassesFrames(t *testing.T) {
	lis := tcpListener(t)
	startEcho(t, lis)
	nw := New(1, t.Logf)
	nw.Register("srv", lis.Addr().String())
	conn := dialEcho(t, nw, "cli", lis.Addr().String())
	echoes := echoReader(conn)
	for i := 0; i < 8; i++ {
		want := fmt.Sprintf("frame-%d", i)
		if err := wire.WriteFrame(conn, []byte(want)); err != nil {
			t.Fatal(err)
		}
		got, ok := readFrameTimeout(t, echoes, 2*time.Second)
		if !ok || got != want {
			t.Fatalf("frame %d: got %q ok=%v", i, got, ok)
		}
	}
}

func TestPartitionEatsFramesAndHeals(t *testing.T) {
	lis := tcpListener(t)
	srv := startEcho(t, lis)
	nw := New(2, t.Logf)
	nw.Register("srv", lis.Addr().String())
	conn := dialEcho(t, nw, "cli", lis.Addr().String())
	echoes := echoReader(conn)

	nw.Partition([]string{"cli"}, []string{"srv"})
	if err := wire.WriteFrame(conn, []byte("lost")); err != nil {
		t.Fatal(err)
	}
	if got, ok := readFrameTimeout(t, echoes, 150*time.Millisecond); ok {
		t.Fatalf("echo %q crossed a partition", got)
	}
	// New dials across the cut are refused outright.
	if _, err := nw.Dialer("cli")(lis.Addr().String()); err == nil {
		t.Fatal("dial across a partition succeeded")
	}

	nw.Heal()
	if err := wire.WriteFrame(conn, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if got, ok := readFrameTimeout(t, echoes, 2*time.Second); !ok || got != "after" {
		t.Fatalf("post-heal echo: %q ok=%v", got, ok)
	}
	for _, saw := range srv.received() {
		if saw == "lost" {
			t.Fatal("partitioned frame reached the server")
		}
	}
}

func TestOneWayCutIsAsymmetric(t *testing.T) {
	lis := tcpListener(t)
	srv := startEcho(t, lis)
	nw := New(3, t.Logf)
	nw.Register("srv", lis.Addr().String())
	conn := dialEcho(t, nw, "cli", lis.Addr().String())
	echoes := echoReader(conn)

	// Cut only the response direction: the request still lands, its echo
	// vanishes.
	nw.OneWay("srv", "cli")
	if err := wire.WriteFrame(conn, []byte("one-way")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if rec := srv.received(); len(rec) == 1 && rec[0] == "one-way" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("request never arrived; server saw %v", srv.received())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got, ok := readFrameTimeout(t, echoes, 150*time.Millisecond); ok {
		t.Fatalf("echo %q crossed the cut direction", got)
	}
	nw.Heal()
}

func TestDuplicateDelivery(t *testing.T) {
	lis := tcpListener(t)
	srv := startEcho(t, lis)
	nw := New(4, t.Logf)
	nw.Register("srv", lis.Addr().String())
	conn := dialEcho(t, nw, "cli", lis.Addr().String())

	nw.SetLink("cli", "srv", Faults{DupPerMille: 1000})
	if err := wire.WriteFrame(conn, []byte("twice")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.received()) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("server saw %v, want the frame twice", srv.received())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, saw := range srv.received() {
		if saw != "twice" {
			t.Fatalf("server saw %v", srv.received())
		}
	}
}

func TestReorderSwapsAdjacentFrames(t *testing.T) {
	lis := tcpListener(t)
	srv := startEcho(t, lis)
	nw := New(5, t.Logf)
	nw.Register("srv", lis.Addr().String())
	conn := dialEcho(t, nw, "cli", lis.Addr().String())

	// Every frame reorders: A is held, B's arrival releases it after B.
	nw.SetLink("cli", "srv", Faults{ReorderPerMille: 1000})
	if err := wire.WriteFrame(conn, []byte("A")); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, []byte("B")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.received()) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("server saw %v, want both frames", srv.received())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rec := srv.received(); rec[0] != "B" || rec[1] != "A" {
		t.Fatalf("arrival order %v, want [B A]", rec)
	}
}

// TestDropPatternIsSeedDeterministic pins the replayability contract: the
// same seed over the same link and dial order drops the same frames.
func TestDropPatternIsSeedDeterministic(t *testing.T) {
	survivors := func(seed uint64) []string {
		lis := tcpListener(t)
		srv := startEcho(t, lis)
		nw := New(seed, nil)
		nw.Register("srv", lis.Addr().String())
		conn := dialEcho(t, nw, "cli", lis.Addr().String())
		nw.SetLink("cli", "srv", Faults{DropPerMille: 500})
		for i := 0; i < 32; i++ {
			if err := wire.WriteFrame(conn, []byte(fmt.Sprintf("f%02d", i))); err != nil {
				t.Fatal(err)
			}
		}
		// The surviving frames arrive in order; wait for the tail to settle.
		last := -1
		for settle := 0; settle < 40; settle++ {
			if n := len(srv.received()); n == last {
				break
			} else {
				last = n
			}
			time.Sleep(10 * time.Millisecond)
		}
		return srv.received()
	}
	a, b := survivors(0xfeed), survivors(0xfeed)
	if len(a) == 0 || len(a) == 32 {
		t.Fatalf("drop rate 500 passed %d of 32 frames; fault layer inert?", len(a))
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different drop pattern:\n %v\n %v", a, b)
	}
}

// TestListenerWrapsUnattributedClients covers the listener-side proxy: a
// plain net.Dial client (no chaos dialer) still suffers the faults of
// the (World, node) link.
func TestListenerWrapsUnattributedClients(t *testing.T) {
	nw := New(6, t.Logf)
	lis, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	startEcho(t, lis)
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	echoes := echoReader(conn)

	if err := wire.WriteFrame(conn, []byte("plain")); err != nil {
		t.Fatal(err)
	}
	if got, ok := readFrameTimeout(t, echoes, 2*time.Second); !ok || got != "plain" {
		t.Fatalf("clean echo through wrapped listener: %q ok=%v", got, ok)
	}

	nw.Partition([]string{"srv"}, []string{World})
	if err := wire.WriteFrame(conn, []byte("cut")); err != nil {
		t.Fatal(err)
	}
	if got, ok := readFrameTimeout(t, echoes, 150*time.Millisecond); ok {
		t.Fatalf("echo %q crossed the world partition", got)
	}
}

// TestRandomScheduleIsDeterministic pins that a seed fully determines the
// schedule (shape and timing), so -seed=N replays a failure.
func TestRandomScheduleIsDeterministic(t *testing.T) {
	nodes := []string{"a", "b", "c"}
	s1 := RandomSchedule(42, nodes, 8, 50*time.Millisecond)
	s2 := RandomSchedule(42, nodes, 8, 50*time.Millisecond)
	if len(s1) != len(s2) {
		t.Fatalf("lengths differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].Desc != s2[i].Desc || s1[i].At != s2[i].At {
			t.Fatalf("step %d differs: %q@%s vs %q@%s", i, s1[i].Desc, s1[i].At, s2[i].Desc, s2[i].At)
		}
	}
	if fmt.Sprint(RandomSchedule(43, nodes, 8, 50*time.Millisecond)[0]) == fmt.Sprint(s1[0]) &&
		RandomSchedule(43, nodes, 8, 50*time.Millisecond)[1].Desc == s1[1].Desc {
		t.Log("adjacent seeds share a prefix (possible, just unlikely)")
	}
	if s1[len(s1)-1].Desc != "final heal" {
		t.Fatalf("schedule must end healed, ends with %q", s1[len(s1)-1].Desc)
	}
}
