// Package netchaos is a deterministic, seed-driven fault-injection layer
// for the TCP wire transport: a Network hands out dialers (and listener
// wrappers) whose connections parse the protocol's length-prefixed frames
// and subject each one to the faults configured on its directed link —
// drop (up to a full blackhole), duplicate, reorder, and added delay —
// without the transport above noticing anything but a misbehaving
// network.
//
// Links are directed (from, to) name pairs, so one-way partitions are
// expressed directly: a rule on (A, B) faults only A's frames toward B,
// while B's responses ride (B, A). Fault decisions come from a PRNG
// seeded by (seed, link, connection), so a failing schedule replays from
// its logged seed. Faults are consulted per frame, so rules changed
// mid-connection (Partition, Heal) apply to live traffic immediately —
// partitioned connections stay open and silently eat frames, which is
// exactly the "alive but unreachable" shape that distinguishes a
// partition from a crash.
package netchaos

import (
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"time"
)

// Faults is the per-directed-link fault configuration. The zero value is
// a clean link.
type Faults struct {
	// DropPerMille discards that fraction (out of 1000) of frames;
	// 1000 is a blackhole, and new dials over a blackholed link are
	// refused outright.
	DropPerMille int
	// DupPerMille delivers that fraction of frames twice. The protocol's
	// correlation IDs and the replication layer's idempotent re-acks must
	// absorb the duplicate.
	DupPerMille int
	// ReorderPerMille holds that fraction of frames back and delivers
	// each after its successor (or after a short timeout when no
	// successor arrives, so a held last frame cannot stall a test).
	ReorderPerMille int
	// Delay is added before each delivered frame.
	Delay time.Duration
}

// Blackhole is the full symmetric-partition fault: every frame vanishes.
var Blackhole = Faults{DropPerMille: 1000}

// Network is a registry of node names, directed link faults, and the
// seed that makes the fault pattern reproducible.
type Network struct {
	seed uint64
	logf func(string, ...any)

	mu      sync.Mutex
	names   map[string]string // real address -> node name
	rules   map[[2]string]Faults
	connSeq map[[2]string]uint64 // per-link dial counter, for per-conn PRNG seeds
	dialed  map[string]bool      // local addrs of dialer-wrapped conns (double-wrap guard)
}

// New returns a network whose fault decisions derive from seed. A nil
// logf discards fault-schedule logs.
func New(seed uint64, logf func(string, ...any)) *Network {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Network{
		seed:    seed,
		logf:    logf,
		names:   make(map[string]string),
		rules:   make(map[[2]string]Faults),
		connSeq: make(map[[2]string]uint64),
		dialed:  make(map[string]bool),
	}
}

// Seed reports the seed the network was built with, for failure logs.
func (nw *Network) Seed() uint64 { return nw.seed }

// Register names a real listen address so link rules can refer to the
// node by name. Unregistered addresses fault under the name "world".
func (nw *Network) Register(name, addr string) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.names[addr] = name
}

// World is the link name for traffic whose peer address is unregistered.
const World = "world"

func (nw *Network) nameOf(addr string) string {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if n, ok := nw.names[addr]; ok {
		return n
	}
	return World
}

// SetLink replaces the fault rule on the directed link from -> to.
func (nw *Network) SetLink(from, to string, f Faults) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.rules[[2]string{from, to}] = f
}

// SetLinkBoth replaces the fault rule on both directions between a and b.
func (nw *Network) SetLinkBoth(a, b string, f Faults) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.rules[[2]string{a, b}] = f
	nw.rules[[2]string{b, a}] = f
}

// Partition blackholes every link that crosses between the given groups
// (both directions); links inside a group are untouched. Live
// connections across the cut stay open but deliver nothing.
func (nw *Network) Partition(groups ...[]string) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	for i, g := range groups {
		for j, h := range groups {
			if i == j {
				continue
			}
			for _, a := range g {
				for _, b := range h {
					nw.rules[[2]string{a, b}] = Blackhole
				}
			}
		}
	}
}

// OneWay blackholes only the from -> to direction: from's frames vanish
// while to's frames (including toward from) still arrive.
func (nw *Network) OneWay(from, to string) {
	nw.SetLink(from, to, Blackhole)
}

// Heal clears every fault rule; live connections deliver again on their
// next frame.
func (nw *Network) Heal() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.rules = make(map[[2]string]Faults)
}

func (nw *Network) rule(from, to string) Faults {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.rules[[2]string{from, to}]
}

// linkSeed derives the PRNG seed for one direction of one connection:
// stable in (network seed, link, per-link dial ordinal), so a replay
// with the same seed and the same dial order draws the same decisions.
func (nw *Network) linkSeed(from, to string, conn uint64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d", from, to, conn)
	return nw.seed ^ h.Sum64()
}

// Dialer returns a net.Conn dialer whose traffic is attributed to the
// named source: frames it sends ride the (from, peer) link and frames it
// receives ride (peer, from). Plug it into client.SessionOptions.NetDial
// (or replica.Options.NetDial) to put a whole transport behind the
// chaos layer unchanged.
func (nw *Network) Dialer(from string) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		to := nw.nameOf(addr)
		if nw.rule(from, to).DropPerMille >= 1000 {
			// A blackholed dial's SYN would vanish; fail fast instead of
			// tying the caller up for a full handshake timeout.
			return nil, fmt.Errorf("netchaos: dial %s -> %s: partitioned", from, to)
		}
		real, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		nw.mu.Lock()
		nw.connSeq[[2]string{from, to}]++
		seq := nw.connSeq[[2]string{from, to}]
		nw.dialed[real.LocalAddr().String()] = true
		nw.mu.Unlock()
		return nw.wrap(real, from, to, seq), nil
	}
}

// Listen wraps a fresh loopback TCP listener for the named node and
// registers its address. Accepted connections whose peer is not one of
// this network's dialers are wrapped as (World, name) traffic — the
// listener-side counterpart for clients that cannot be given a Dialer.
// Connections arriving from this network's own dialers pass through
// unwrapped: their faults are already applied on the dialing side, and
// wrapping twice would double every fault.
func (nw *Network) Listen(name string) (net.Listener, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	nw.Register(name, lis.Addr().String())
	return &listener{Listener: lis, nw: nw, name: name}, nil
}

type listener struct {
	net.Listener
	nw   *Network
	name string
}

func (l *listener) Accept() (net.Conn, error) {
	real, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.nw.mu.Lock()
	fromDialer := l.nw.dialed[real.RemoteAddr().String()]
	l.nw.connSeq[[2]string{World, l.name}]++
	seq := l.nw.connSeq[[2]string{World, l.name}]
	l.nw.mu.Unlock()
	if fromDialer {
		return real, nil
	}
	// Server side: frames it writes travel name -> World, frames it
	// reads travel World -> name.
	return l.nw.wrap(real, l.name, World, seq), nil
}
