package replica

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/kv"
	"repro/internal/netchaos"
	"repro/internal/server"
	"repro/internal/wire"
)

// startChaosNode serves a node whose shippers dial through the chaos
// network under the given name, so partitions between group members are
// expressed as netchaos link rules instead of killed processes — the
// node stays alive and unreachable, which is the shape quorum mode
// exists to survive.
func startChaosNode(t testing.TB, lease time.Duration, nw *netchaos.Network, name string, quorum bool) *testNode {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	store := kv.NewMemStore()
	node, err := New(store, server.Config{}, Options{
		Self:    lis.Addr().String(),
		Lease:   lease,
		Logf:    func(string, ...any) {},
		Quorum:  quorum,
		NetDial: nw.Dialer(name),
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Register(name, lis.Addr().String())
	srv := server.NewServer(node, func(string, ...any) {})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ctx, lis) }()
	tn := &testNode{node: node, store: store, addr: lis.Addr().String(), srv: srv}
	tn.stop = func() {
		node.Close()
		cancel()
		srv.Close()
		<-done
	}
	t.Cleanup(tn.stop)
	return tn
}

// sealChunkVal is testSealedChunk with an explicit point value, so a
// test can tell two competing writes of the same chunk index apart.
func sealChunkVal(t testing.TB, idx uint64, val int64) []byte {
	t.Helper()
	start := int64(idx) * 100
	sealed, err := chunk.SealPlain(testSpec, chunk.CompressionNone, idx, start, start+100,
		[]chunk.Point{{TS: start, Val: val}})
	if err != nil {
		t.Fatal(err)
	}
	return chunk.MarshalSealed(sealed)
}

func wantCode(t testing.TB, resp wire.Message, code uint32, what string) {
	t.Helper()
	errMsg, isErr := resp.(*wire.Error)
	if !isErr || errMsg.Code != code {
		t.Fatalf("%s -> %#v, want error code %d", what, resp, code)
	}
}

// TestQuorumRefusesSmallGroup: quorum acknowledgement over fewer than 3
// members degrades silently to leader-only durability (⌈2/2⌉ = 1, the
// leader itself), so both bootstrap paths must refuse the configuration
// loudly instead of starting.
func TestQuorumRefusesSmallGroup(t *testing.T) {
	silent := func(string, ...any) {}
	node, err := New(kv.NewMemStore(), server.Config{}, Options{Self: "a:1", Logf: silent, Quorum: true})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.Lead(nil); err == nil {
		t.Fatal("quorum Lead with no followers succeeded")
	}
	if err := node.Lead([]string{"b:1"}); err == nil {
		t.Fatal("quorum Lead with one follower succeeded (F=1 group)")
	}
	if role, _, _ := node.Status(); role != wire.ReplStandalone {
		t.Fatal("refused Lead still changed the node's role")
	}
	// The promotion path enforces the same bound: a router must not be
	// able to shrink a quorum group below 3 by promoting over a stump.
	wantCode(t, node.Handle(context.Background(), &wire.Promote{
		Epoch: 5, Leader: "a:1", Members: []string{"a:1", "b:1"},
	}), wire.CodeBadRequest, "quorum Promote with 2 members")
	// A full 3-member group is accepted by both paths.
	if err := node.Lead([]string{"b:1", "c:1"}); err != nil {
		t.Fatalf("quorum Lead with 2 followers: %v", err)
	}
	if role, _, _ := node.Status(); role != wire.ReplLeader {
		t.Fatal("3-member quorum Lead did not take the lease")
	}
}

// TestQuorumAcksWithMajorityOnly: ⌈3/2⌉ = 2 of 3 must ack, leader
// included — so a group with one dead member keeps acknowledging writes,
// and the surviving follower still offers read-your-writes.
func TestQuorumAcksWithMajorityOnly(t *testing.T) {
	nw := netchaos.New(1, nil)
	lease := 200 * time.Millisecond
	live := startChaosNode(t, lease, nw, "b", true)
	// A dead member: allocate a real address, then close it.
	deadLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := deadLis.Addr().String()
	deadLis.Close()
	leader := startChaosNode(t, lease, nw, "a", true)
	if err := leader.node.Lead([]string{live.addr, dead}); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	if resp := leader.node.Handle(ctx, &wire.CreateStream{UUID: "s", Cfg: testCfg()}); !isOK(resp) {
		t.Fatalf("CreateStream -> %#v", resp)
	}
	for i := uint64(0); i < 5; i++ {
		if resp := leader.node.Handle(ctx, &wire.InsertChunk{UUID: "s", Chunk: testSealedChunk(t, i)}); !isOK(resp) {
			t.Fatalf("InsertChunk(%d) with one member down -> %#v", i, resp)
		}
		// The ack implies the live follower applied it: read-your-writes.
		info, ok := live.node.Handle(ctx, &wire.StreamInfo{UUID: "s"}).(*wire.StreamInfoResp)
		if !ok || info.Count != i+1 {
			t.Fatalf("follower count after insert %d: %#v", i, info)
		}
	}
	if got, want := statBytes(t, live.node, "s"), statBytes(t, leader.node, "s"); !bytes.Equal(got, want) {
		t.Error("surviving follower diverged from leader")
	}
}

// TestQuorumBlocksWithoutMajorityAndHealsCleanly: a leader partitioned
// from both followers must (a) let an already-in-flight write block
// rather than ack it, (b) refuse NEW writes with CodeBusy before
// applying anything once the gate notices, and (c) release the blocked
// write exactly once after the partition heals — no duplicate
// application, no lost ack.
func TestQuorumBlocksWithoutMajorityAndHealsCleanly(t *testing.T) {
	nw := netchaos.New(2, t.Logf)
	lease := 200 * time.Millisecond
	f1 := startChaosNode(t, lease, nw, "b", true)
	f2 := startChaosNode(t, lease, nw, "c", true)
	leader := startChaosNode(t, lease, nw, "a", true)
	if err := leader.node.Lead([]string{f1.addr, f2.addr}); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	if resp := leader.node.Handle(ctx, &wire.CreateStream{UUID: "s", Cfg: testCfg()}); !isOK(resp) {
		t.Fatalf("CreateStream -> %#v", resp)
	}
	for i := uint64(0); i < 3; i++ {
		if resp := leader.node.Handle(ctx, &wire.InsertChunk{UUID: "s", Chunk: testSealedChunk(t, i)}); !isOK(resp) {
			t.Fatalf("InsertChunk(%d) -> %#v", i, resp)
		}
	}

	nw.Partition([]string{"a"}, []string{"b", "c"})

	// An in-flight write issued right after the cut: applied locally,
	// then parked in the durability wait. Its generous deadline outlives
	// the partition, so the ONLY acceptable outcomes are an ack after
	// the heal or a leadership change — never a premature solo ack.
	blocked := make(chan wire.Message, 1)
	go func() {
		wctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		blocked <- leader.node.Handle(wctx, &wire.InsertChunk{UUID: "s", Chunk: testSealedChunk(t, 3)})
	}()
	select {
	case resp := <-blocked:
		t.Fatalf("write acked without a quorum: %#v", resp)
	case <-time.After(lease):
	}

	// After a full lease without follower contact the gate closes: new
	// writes refuse fast with CodeBusy, applying nothing.
	time.Sleep(2 * lease)
	for i := 0; i < 3; i++ {
		wantCode(t, leader.node.Handle(ctx, &wire.InsertChunk{UUID: "s", Chunk: testSealedChunk(t, 4)}),
			wire.CodeBusy, "write without quorum")
	}

	nw.Heal()
	select {
	case resp := <-blocked:
		if !isOK(resp) {
			t.Fatalf("blocked write after heal -> %#v", resp)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("blocked write never resolved after heal")
	}
	// The CodeBusy probes applied nothing and the blocked write applied
	// once: chunk 4 inserts cleanly now, and all three replicas agree.
	if resp := leader.node.Handle(ctx, &wire.InsertChunk{UUID: "s", Chunk: testSealedChunk(t, 4)}); !isOK(resp) {
		t.Fatalf("post-heal insert -> %#v", resp)
	}
	for _, tn := range []*testNode{f1, f2} {
		tn := tn
		waitFor(t, "follower caught up after heal", func() bool {
			info, ok := tn.node.Handle(ctx, &wire.StreamInfo{UUID: "s"}).(*wire.StreamInfoResp)
			return ok && info.Count == 5
		})
		if got, want := statBytes(t, tn.node, "s"), statBytes(t, leader.node, "s"); !bytes.Equal(got, want) {
			t.Error("replica diverged after heal")
		}
	}
}

// TestDeposedMinorityLeaderResyncsAndDiscardsTail: a quorum leader cut
// off from its majority applies a write locally that never acks; the
// majority promotes a new leader and accepts different writes. When the
// partition heals, the ex-leader must rejoin via snapshot resync with
// its unacked tail GONE — replaced by the majority's history, not merged
// with it.
func TestDeposedMinorityLeaderResyncsAndDiscardsTail(t *testing.T) {
	nw := netchaos.New(3, t.Logf)
	lease := 200 * time.Millisecond
	b := startChaosNode(t, lease, nw, "b", true)
	c := startChaosNode(t, lease, nw, "c", true)
	a := startChaosNode(t, lease, nw, "a", true)
	if err := a.node.Lead([]string{b.addr, c.addr}); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	if resp := a.node.Handle(ctx, &wire.CreateStream{UUID: "s", Cfg: testCfg()}); !isOK(resp) {
		t.Fatalf("CreateStream -> %#v", resp)
	}
	for i := uint64(0); i < 3; i++ {
		if resp := a.node.Handle(ctx, &wire.InsertChunk{UUID: "s", Chunk: testSealedChunk(t, i)}); !isOK(resp) {
			t.Fatalf("InsertChunk(%d) -> %#v", i, resp)
		}
	}

	nw.Partition([]string{"a"}, []string{"b", "c"})

	// The minority leader applies chunk 3 (value 4) locally; the ack
	// never comes. This is a's unacked tail.
	tail := make(chan wire.Message, 1)
	go func() {
		wctx, cancel := context.WithTimeout(context.Background(), 2*lease)
		defer cancel()
		tail <- a.node.Handle(wctx, &wire.InsertChunk{UUID: "s", Chunk: testSealedChunk(t, 3)})
	}()
	waitFor(t, "tail applied locally on the minority leader", func() bool {
		info, ok := a.node.Handle(ctx, &wire.StreamInfo{UUID: "s"}).(*wire.StreamInfoResp)
		return ok && info.Count == 4
	})
	if resp := <-tail; isOK(resp) {
		t.Fatal("minority leader acked a write without a quorum")
	}

	// Majority-side failover: b takes the lease with the full membership.
	ack, ok := b.node.Handle(ctx, &wire.Promote{
		Epoch: 2, Leader: b.addr, Members: []string{a.addr, b.addr, c.addr},
	}).(*wire.ReplAck)
	if !ok || ack.Epoch != 2 {
		t.Fatalf("Promote -> %#v", ack)
	}
	// The new leader writes its OWN chunk 3 (value 99): after the heal
	// exactly one of the two competing histories may survive.
	if resp := b.node.Handle(ctx, &wire.InsertChunk{UUID: "s", Chunk: sealChunkVal(t, 3, 99)}); !isOK(resp) {
		t.Fatalf("InsertChunk on new leader -> %#v", resp)
	}

	nw.Heal()
	waitFor(t, "ex-leader resynced to the majority history", func() bool {
		role, epoch, _ := a.node.Status()
		if role != wire.ReplFollower || epoch != 2 {
			return false
		}
		return bytes.Equal(statBytes(t, a.node, "s"), statBytes(t, b.node, "s"))
	})
	if a.node.Installs() == 0 {
		t.Error("ex-leader rejoined without a snapshot resync")
	}
	// The surviving chunk 3 is the majority's (sum 1+2+3+99), not the
	// discarded tail's (1+2+3+4).
	resp, ok := a.node.Handle(ctx, &wire.StatRange{UUIDs: []string{"s"}, Ts: 0, Te: 400}).(*wire.StatRangeResp)
	if !ok {
		t.Fatalf("StatRange -> %#v", resp)
	}
	if got := resp.Windows[0][0]; got != 105 {
		t.Fatalf("post-heal sum = %d, want 105 (unacked tail discarded)", got)
	}
}
