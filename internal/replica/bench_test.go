package replica

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/kv"
	"repro/internal/server"
	"repro/internal/wire"
)

// BenchmarkReplAppend measures the follower's apply path: one ReplAppend
// frame per op, each carrying one InsertChunk record, applied through the
// engine with the sequencing and epoch checks in the loop. This is the
// per-record overhead replication adds on top of the engine's own insert
// cost.
func BenchmarkReplAppend(b *testing.B) {
	node := newBareNode(b)
	ctx := context.Background()
	if _, ok := node.Handle(ctx, &wire.ReplAppend{Epoch: 1, FirstSeq: 1,
		Records: [][]byte{record(&wire.CreateStream{UUID: "s", Cfg: testCfg()})}}).(*wire.ReplAck); !ok {
		b.Fatal("setup apply failed")
	}
	recs := make([][]byte, b.N)
	for i := range recs {
		recs[i] = record(&wire.InsertChunk{UUID: "s", Chunk: testSealedChunk(b, uint64(i))})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		resp := node.Handle(ctx, &wire.ReplAppend{
			Epoch: 1, FirstSeq: uint64(i) + 2, Records: recs[i : i+1],
		})
		if _, ok := resp.(*wire.ReplAck); !ok {
			b.Fatalf("append %d -> %s", i, fmt.Sprintf("%#v", resp))
		}
	}
}

// startBenchMember serves one replication group member over loopback TCP
// for the leader-path benchmarks (startNodeOn minus the test-only store
// threading, plus the quorum flag).
func startBenchMember(b *testing.B, quorum bool) *testNode {
	b.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	node, err := New(kv.NewMemStore(), server.Config{}, Options{
		Self:   lis.Addr().String(),
		Lease:  time.Second,
		Logf:   func(string, ...any) {},
		Quorum: quorum,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv := server.NewServer(node, func(string, ...any) {})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ctx, lis) }()
	tn := &testNode{node: node, store: nil, addr: lis.Addr().String(), srv: srv}
	tn.stop = func() {
		node.Close()
		cancel()
		srv.Close()
		<-done
	}
	b.Cleanup(tn.stop)
	return tn
}

// benchLeaderAppend measures the leader's acknowledged write path end to
// end over a 3-member loopback group: apply locally, ship to both
// followers, release the ack per the group's mode — all active followers
// (availability) or a majority of 2 of 3, leader included (quorum).
func benchLeaderAppend(b *testing.B, quorum bool) {
	leader := startBenchMember(b, quorum)
	f1 := startBenchMember(b, quorum)
	f2 := startBenchMember(b, quorum)
	if err := leader.node.Lead([]string{f1.addr, f2.addr}); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if resp := leader.node.Handle(ctx, &wire.CreateStream{UUID: "s", Cfg: testCfg()}); !isOK(resp) {
		b.Fatalf("CreateStream -> %#v", resp)
	}
	chunks := make([][]byte, b.N)
	for i := range chunks {
		chunks[i] = testSealedChunk(b, uint64(i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if resp := leader.node.Handle(ctx, &wire.InsertChunk{UUID: "s", Chunk: chunks[i]}); !isOK(resp) {
			b.Fatalf("insert %d -> %#v", i, resp)
		}
	}
}

// BenchmarkAvailabilityAppend: ack waits for every active follower — the
// F=2 baseline BenchmarkQuorumAppend reads against.
func BenchmarkAvailabilityAppend(b *testing.B) { benchLeaderAppend(b, false) }

// BenchmarkQuorumAppend: ack releases at 2 of 3 durable, so the slower
// follower is off the critical path of every write.
func BenchmarkQuorumAppend(b *testing.B) { benchLeaderAppend(b, true) }
