package replica

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/wire"
)

// BenchmarkReplAppend measures the follower's apply path: one ReplAppend
// frame per op, each carrying one InsertChunk record, applied through the
// engine with the sequencing and epoch checks in the loop. This is the
// per-record overhead replication adds on top of the engine's own insert
// cost.
func BenchmarkReplAppend(b *testing.B) {
	node := newBareNode(b)
	ctx := context.Background()
	if _, ok := node.Handle(ctx, &wire.ReplAppend{Epoch: 1, FirstSeq: 1,
		Records: [][]byte{record(&wire.CreateStream{UUID: "s", Cfg: testCfg()})}}).(*wire.ReplAck); !ok {
		b.Fatal("setup apply failed")
	}
	recs := make([][]byte, b.N)
	for i := range recs {
		recs[i] = record(&wire.InsertChunk{UUID: "s", Chunk: testSealedChunk(b, uint64(i))})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		resp := node.Handle(ctx, &wire.ReplAppend{
			Epoch: 1, FirstSeq: uint64(i) + 2, Records: recs[i : i+1],
		})
		if _, ok := resp.(*wire.ReplAck); !ok {
			b.Fatalf("append %d -> %s", i, fmt.Sprintf("%#v", resp))
		}
	}
}
