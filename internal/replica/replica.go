// Package replica adds per-shard replication and failover to a TimeCrypt
// engine (paper §3.2's horizontal scaling, hardened for node loss): a
// replica.Node wraps one server.Engine and ships every applied mutation —
// as its marshaled wire request, stamped with a dense sequence number —
// to F follower nodes over the ordinary multiplexed transport.
//
// Exactly one node per shard holds the group's epoch'd lease and acts as
// leader: it applies client mutations locally, appends them to an
// in-memory record log, and acknowledges a write only once every active
// follower has applied it (synchronous, statement-level primary-backup).
// Followers apply records strictly in sequence order onto their own
// durable store — a gap or reordering is refused loudly with CodeReplGap,
// never applied — and serve reads behind their applied watermark, so a
// client that saw a write acknowledged can read it from any active
// follower. A follower that has fallen off the log's tail (or a node
// joining empty) is resynchronized with a paged full snapshot of the
// leader's store.
//
// Epochs make failover safe. Every replication frame carries the sender's
// lease epoch; a node that sees a higher epoch adopts it (a leader steps
// down), and one that sees a lower epoch refuses with the epoch it knows,
// deposing the stale sender. The cluster router promotes the
// most-advanced follower by sending Promote with epoch+1 after a leader's
// lease has lapsed; a deposed or restarted ex-leader refuses client
// writes until the current leader adopts it back — via full resync — as a
// follower. The same epoch comparison, enforced inside the engine as the
// write fence (server.HandoffFence), rejects stale-epoch mutations during
// shard migration.
package replica

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/kv"
	"repro/internal/server"
	"repro/internal/sub"
	"repro/internal/wire"
)

// stateKey persists {epoch, role, installing} across restarts; it lives
// outside every engine key prefix and is excluded from resync snapshots
// and from the pre-install wipe, so a node's own role survives both a
// leader's snapshot and a crash in the middle of installing one.
const stateKey = "repl/state"

// applyStripes is the number of apply-order locks: the leader holds a
// stream's stripe across engine apply + log append, so the log's sequence
// order matches the engine's apply order per stream (followers replay the
// log single-threaded, which makes cross-stream order irrelevant).
const applyStripes = 64

// Options parameterizes a replication node.
type Options struct {
	// Self is this node's advertised address, matched against
	// Promote.Leader and reported in LeaseInfoResp.
	Self string
	// Lease is the leader's lease interval: shippers heartbeat every
	// Lease/3, and a router considers the leader dead only after the
	// lease has lapsed without contact. 0 means DefaultLease.
	Lease time.Duration
	// LogBytes is the replication log retention budget (0 = 16 MiB).
	LogBytes int
	// StoreSeq reports the durable store's committed sequence for
	// LeaseInfoResp (nil = always 0); wired to durable.CommittedSeq so
	// operators can compare replication watermarks against fsync'd
	// state.
	StoreSeq func() uint64
	// Logf receives replication events (role changes, resyncs,
	// depositions); nil means log.Printf.
	Logf func(format string, args ...any)
	// Quorum switches the group to write-quorum acknowledgement: a leader
	// acks a mutation only once ⌈N/2⌉ of the N group members (itself
	// included) have durably applied it, and refuses new writes with
	// CodeBusy — before applying anything — while it cannot reach that
	// many members. The default (false) is availability-first: unreachable
	// followers are deactivated and the leader keeps acknowledging with
	// whoever remains. Quorum groups need at least 3 members; Lead and
	// Promote refuse smaller ones.
	Quorum bool
	// NetDial overrides how shippers dial followers (nil = TCP); test
	// harnesses inject fault-injecting dialers (internal/netchaos) here.
	NetDial func(addr string) (net.Conn, error)
	// OnAck, when set, observes every client-acknowledged replicated
	// mutation as (epoch, seq) just before the ack is released — the hook
	// partition tests use to check that acked sequence ranges never
	// overlap across epochs (at most one acking leader per epoch).
	OnAck func(epoch, seq uint64)
}

// DefaultLease is the leader lease interval when Options.Lease is 0.
const DefaultLease = 3 * time.Second

// follower is the leader's view of one replication target.
type follower struct {
	addr string
	// active marks a follower the leader waits on before acknowledging a
	// write. Followers start active (a healthy follower must see every
	// write from the first one) and are deactivated only when observed
	// unreachable — degrading durability rather than availability; a
	// returning follower reactivates once it acknowledges again.
	active bool
	// acked is the highest sequence the follower has acknowledged.
	acked uint64
	// lastAck is when the follower last answered the shipper at all (ack,
	// heartbeat, or gap report): quorum mode's reachability estimate. A
	// follower silent for a full lease no longer counts toward the quorum
	// gate, so new writes refuse fast instead of blocking to their
	// deadline.
	lastAck time.Time
	// modeWarned suppresses repeated mode-mismatch warnings.
	modeWarned bool
	// notify wakes the shipper when new records are appended.
	notify chan struct{}
	stop   chan struct{}
}

// Node wraps a server.Engine with the replication plane. It implements
// server.Handler and server.Subscriber, so it drops into the TCP front
// end (or a test harness) exactly where a bare engine would.
type Node struct {
	store kv.Store
	cfg   server.Config
	opts  Options

	applyMu [applyStripes]sync.Mutex

	mu         sync.Mutex
	engine     *server.Engine
	role       uint8
	epoch      uint64
	leader     string // current leader's address ("" when unknown)
	applied    uint64 // leader: last sequence applied locally
	watermark  uint64 // follower: last sequence applied from the leader
	installing bool   // a snapshot install is in progress; reads answer CodeBusy
	// installEpoch is the epoch of the in-process snapshot install; it is
	// deliberately NOT persisted, so a restart with the installing marker
	// refuses resumed pages (their predecessors died with the process) and
	// waits for a fresh First.
	installEpoch uint64
	followers    map[string]*follower
	changed      chan struct{} // closed and replaced on any ack/role change
	closed       bool
	// installs counts completed snapshot installs: the one transition
	// across which a follower's watermark may legitimately move backward
	// (a resync rebases it into the new leader's sequence space), so
	// monotonicity monitors exempt exactly those.
	installs uint64

	log *recordLog
}

// New opens the engine over store and restores the node's persisted
// replication state: a node that previously led comes back deposed (it
// must be re-promoted or adopted — self-resuming the lease could split
// the brain), a previous follower comes back as a follower with an empty
// watermark (forcing a resync), and a node with no state starts
// standalone, adoptable by any leader's first frame.
func New(store kv.Store, cfg server.Config, opts Options) (*Node, error) {
	engine, err := server.New(store, cfg)
	if err != nil {
		return nil, err
	}
	if opts.Lease <= 0 {
		opts.Lease = DefaultLease
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	n := &Node{
		store:     store,
		cfg:       cfg,
		opts:      opts,
		engine:    engine,
		role:      wire.ReplStandalone,
		followers: make(map[string]*follower),
		changed:   make(chan struct{}),
		log:       newRecordLog(opts.LogBytes),
	}
	if raw, err := store.Get(stateKey); err == nil {
		d := wire.NewDecoder(raw)
		epoch, role := d.U64(), d.U8()
		if d.Err() == nil {
			// The installing flag is absent in pre-flag state records; a
			// truncated read decodes as false.
			installing := d.U8() == 1
			n.epoch = epoch
			switch role {
			case wire.ReplLeader, wire.ReplDeposed:
				n.role = wire.ReplDeposed
				opts.Logf("replica: restarted after leading epoch %d; deposed until re-promoted or adopted", epoch)
			case wire.ReplFollower:
				n.role = wire.ReplFollower
				if installing {
					// Crashed between the pre-install wipe and the
					// snapshot's Done page: the store is a partial image.
					// Keep the install fence up — reads answer CodeBusy,
					// mutations answer CodeNotLeader — until the leader
					// resyncs us with a fresh full snapshot.
					n.installing = true
					opts.Logf("replica: restarted mid-snapshot-install at epoch %d; refusing traffic until resynced", epoch)
				}
			}
		}
	} else if err != kv.ErrNotFound {
		return nil, err
	}
	return n, nil
}

// Lead bootstraps this node as the group's first leader. It is a no-op
// (with a warning) when the node carries persisted replication state: a
// restarted ex-leader must wait to be re-promoted by the router or
// adopted by the current leader, otherwise two nodes could claim the same
// epoch. In quorum mode a group of fewer than 3 members is refused with
// an error: with N=2 the write quorum is 1, which the leader satisfies
// alone — quorum acknowledgement would silently degrade to
// availability-mode semantics, so the misconfiguration fails loudly
// instead.
func (n *Node) Lead(members []string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.opts.Quorum && othersIn(members, n.opts.Self) < 2 {
		return fmt.Errorf("replica: quorum mode needs a group of at least 3 members (self + 2); got %d follower(s)",
			othersIn(members, n.opts.Self))
	}
	if n.role != wire.ReplStandalone || n.epoch != 0 {
		n.opts.Logf("replica: not self-promoting over persisted state (role %d, epoch %d); awaiting promotion", n.role, n.epoch)
		return nil
	}
	n.becomeLeaderLocked(1, members)
	return nil
}

// othersIn counts the distinct non-self addresses in members — the
// follower count a membership list implies.
func othersIn(members []string, self string) int {
	seen := make(map[string]bool)
	for _, a := range members {
		if a != "" && a != self && !seen[a] {
			seen[a] = true
		}
	}
	return len(seen)
}

// mode reports the group's acknowledgement mode for the wire. Options
// are immutable after New, so no lock is needed.
func (n *Node) mode() uint8 {
	if n.opts.Quorum {
		return wire.ReplModeQuorum
	}
	return wire.ReplModeAvailability
}

// quorumLocked is the write-quorum size ⌈N/2⌉ over the N = followers+1
// group members, leader included: 2 of 3, 3 of 5. Zero when the node is
// not a quorum-mode leader.
func (n *Node) quorumLocked() int {
	if !n.opts.Quorum || n.role != wire.ReplLeader {
		return 0
	}
	return (len(n.followers) + 2) / 2
}

// quorumGate refuses a new write — before anything is applied, so
// CodeBusy always means "retry freely" — when the leader is not
// currently in contact with a write quorum. Contact means a shipper
// response (ack, heartbeat, or gap report) within the last lease
// interval; a leader partitioned from its majority therefore starts
// refusing within one lease rather than accepting writes it can never
// acknowledge.
func (n *Node) quorumGate() *wire.Error {
	if !n.opts.Quorum {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	need := n.quorumLocked()
	if need == 0 {
		return nil // not leading; leaderApply revalidates the role anyway
	}
	inContact := 1 // the leader itself
	cutoff := time.Now().Add(-n.opts.Lease)
	for _, f := range n.followers {
		if f.lastAck.After(cutoff) {
			inContact++
		}
	}
	if inContact < need {
		return &wire.Error{Code: wire.CodeBusy,
			Msg: fmt.Sprintf("replica: quorum unreachable (%d of %d members in contact, need %d); retry",
				inContact, len(n.followers)+1, need)}
	}
	return nil
}

// Installs reports how many snapshot installs this node has completed.
// A completed install is the one transition across which the applied
// watermark may legitimately regress (a resync rebases it into the new
// leader's sequence space); monotonicity monitors sample this counter to
// exempt exactly those.
func (n *Node) Installs() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.installs
}

// Close stops shippers and releases the node. The engine's store is not
// closed; the caller owns it.
func (n *Node) Close() {
	n.mu.Lock()
	n.closed = true
	n.stopShippersLocked()
	n.bumpLocked()
	n.mu.Unlock()
}

// Status reports the node's current replication state for tests and
// operator tooling: role, epoch, and the applied watermark.
func (n *Node) Status() (role uint8, epoch, watermark uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role, n.epoch, n.watermarkLocked()
}

func (n *Node) watermarkLocked() uint64 {
	if n.role == wire.ReplLeader {
		return n.applied
	}
	return n.watermark
}

// bumpLocked wakes every waitDurable waiter and shipper-state observer.
func (n *Node) bumpLocked() {
	close(n.changed)
	n.changed = make(chan struct{})
}

// persistLocked records {epoch, role, installing} so a restart cannot
// regress the epoch, silently resume a lease, or serve a half-installed
// snapshot as real data.
func (n *Node) persistLocked() {
	var e wire.Encoder
	e.U64(n.epoch)
	e.U8(n.role)
	if n.installing {
		e.U8(1)
	} else {
		e.U8(0)
	}
	if err := n.store.Put(stateKey, e.Bytes()); err != nil {
		n.opts.Logf("replica: persisting state: %v", err)
	}
}

func (n *Node) stopShippersLocked() {
	for _, f := range n.followers {
		close(f.stop)
	}
	n.followers = make(map[string]*follower)
}

// becomeLeaderLocked takes the lease at epoch for the given follower set
// (own address excluded). The record log is re-based at watermark+1 so
// sequence numbers remain comparable across a promotion: an in-sync
// follower resumes from the log without a snapshot.
func (n *Node) becomeLeaderLocked(epoch uint64, members []string) {
	applied := n.watermarkLocked() // a re-promoted leader keeps its progress
	n.stopShippersLocked()
	n.role = wire.ReplLeader
	n.epoch = epoch
	n.leader = n.opts.Self
	n.applied = applied
	n.log.reset(n.applied + 1)
	for _, addr := range members {
		if addr == n.opts.Self || addr == "" {
			continue
		}
		if _, dup := n.followers[addr]; dup {
			continue
		}
		f := &follower{addr: addr, active: true, lastAck: time.Now(), notify: make(chan struct{}, 1), stop: make(chan struct{})}
		n.followers[addr] = f
		go n.runShipper(f, epoch)
	}
	n.persistLocked()
	n.bumpLocked()
	n.opts.Logf("replica: leading epoch %d with %d follower(s)", epoch, len(n.followers))
}

// becomeFollowerLocked adopts epoch under the given leader. Any
// leadership state is torn down, and in-flight waitDurable calls fail
// with CodeNotLeader (the write's outcome is ambiguous, exactly like a
// broken connection).
func (n *Node) becomeFollowerLocked(epoch uint64, leader string) {
	wasLeader := n.role == wire.ReplLeader
	n.stopShippersLocked()
	n.role = wire.ReplFollower
	n.epoch = epoch
	n.leader = leader
	if wasLeader {
		// An ex-leader may hold locally-applied writes the new leader
		// never saw; force a full resync before serving as a follower.
		n.watermark = 0
		n.opts.Logf("replica: deposed by epoch %d; resync required", epoch)
	}
	n.persistLocked()
	n.bumpLocked()
}

// deposeTo steps down after observing a higher epoch from a frame we sent
// (a follower refused our records). The node stays deposed — refusing
// writes — until the new leader adopts it.
func (n *Node) deposeTo(epoch uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if epoch <= n.epoch && n.role != wire.ReplLeader {
		return
	}
	if epoch > n.epoch {
		n.epoch = epoch
	}
	if n.role == wire.ReplLeader {
		n.stopShippersLocked()
		n.role = wire.ReplDeposed
		n.watermark = 0
		n.persistLocked()
		n.bumpLocked()
		n.opts.Logf("replica: deposed at epoch %d", n.epoch)
	}
}

// currentEngine returns the engine to serve reads from, or a CodeBusy
// error while a snapshot install has the store torn down.
func (n *Node) currentEngine() (*server.Engine, *wire.Error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.installing {
		return nil, &wire.Error{Code: wire.CodeBusy, Msg: "replica: snapshot install in progress"}
	}
	return n.engine, nil
}

// isMutation reports whether req changes engine state and therefore must
// be applied through the leader and replicated. Everything else is a read
// and may be served by any role.
func isMutation(req wire.Message) bool {
	switch m := req.(type) {
	case *wire.CreateStream, *wire.DeleteStream, *wire.InsertChunk,
		*wire.DeleteRange, *wire.Rollup, *wire.PutGrant, *wire.DeleteGrant,
		*wire.PutEnvelopes, *wire.StageRecord, *wire.IngestSnapshot,
		*wire.HandoffComplete, *wire.TopologyUpdate:
		return true
	case *wire.Batch:
		for _, sub := range m.Reqs {
			if isMutation(sub) {
				return true
			}
		}
		return false
	}
	return false
}

// Handle implements server.Handler: replication-plane frames are
// consumed here, client mutations route through the leader path (or are
// refused with CodeNotLeader), and reads fall through to the wrapped
// engine.
func (n *Node) Handle(ctx context.Context, req wire.Message) wire.Message {
	switch m := req.(type) {
	case *wire.ReplAppend:
		return n.handleReplAppend(ctx, m)
	case *wire.ReplSnapshot:
		return n.handleReplSnapshot(ctx, m)
	case *wire.Promote:
		return n.handlePromote(m)
	case *wire.LeaseInfo:
		return n.handleLeaseInfo()
	}
	if isMutation(req) {
		n.mu.Lock()
		role, epoch, leader := n.role, n.epoch, n.leader
		n.mu.Unlock()
		switch role {
		case wire.ReplLeader:
			return n.leaderApply(ctx, req, epoch)
		case wire.ReplFollower, wire.ReplDeposed:
			return &wire.Error{Code: wire.CodeNotLeader, Aux: epoch, Msg: leader}
		}
		// Standalone: an unreplicated engine, plain pass-through.
	}
	engine, busy := n.currentEngine()
	if busy != nil {
		return busy
	}
	return engine.Handle(ctx, req)
}

// Subscribe implements server.Subscriber by delegating to the wrapped
// engine: followers serve live subscriptions too, fed by replicated
// inserts, so watchers survive a failover by redialing any group member.
func (n *Node) Subscribe(ctx context.Context, req *wire.Subscribe) (sub.Handle, error) {
	engine, busy := n.currentEngine()
	if busy != nil {
		return nil, busy
	}
	return engine.Subscribe(ctx, req)
}

// handleReplAppend applies a leader's record frame. The serve layer
// chains all replication frames of one connection through
// wire.ReplRoutingKey, so frames from ONE leader session arrive here in
// shipping order — but nothing serializes this against frames on other
// connections (a newer leader, a Promote). Every record is therefore
// applied under n.mu with the epoch revalidated first: a stale leader's
// in-flight frame stops dead — with nothing applied past the depose point
// and the watermark untouched — the instant another connection moves the
// node to a higher epoch.
func (n *Node) handleReplAppend(ctx context.Context, m *wire.ReplAppend) wire.Message {
	if m.Epoch == 0 {
		return &wire.Error{Code: wire.CodeBadRequest, Msg: "replica: epoch 0 is reserved"}
	}
	n.mu.Lock()
	if m.Epoch < n.epoch {
		defer n.mu.Unlock()
		return &wire.Error{Code: wire.CodeWrongShard, Aux: n.epoch,
			Msg: fmt.Sprintf("replica: stale replication epoch %d (current %d)", m.Epoch, n.epoch)}
	}
	if m.Epoch > n.epoch || n.role == wire.ReplStandalone || n.role == wire.ReplDeposed {
		// Adopt the higher (or first) epoch; a live leader steps down. The
		// frame names the shipping leader, so referrals point there — not
		// at whatever leader this node knew before.
		n.becomeFollowerLocked(m.Epoch, m.Leader)
	} else if n.role == wire.ReplLeader {
		// Equal epoch from another claimant: refuse — the sender must
		// resolve the conflict through a higher epoch, never silently.
		defer n.mu.Unlock()
		return &wire.Error{Code: wire.CodeWrongShard, Aux: n.epoch,
			Msg: "replica: competing leader at the same epoch"}
	} else if m.Leader != "" && n.leader != m.Leader {
		// Already following at this epoch: refresh a stale or unknown
		// leader address (there is exactly one leader per epoch).
		n.leader = m.Leader
	}
	watermark := n.watermark
	installing := n.installing
	n.mu.Unlock()

	if installing {
		return &wire.Error{Code: wire.CodeBusy, Msg: "replica: snapshot install in progress"}
	}
	if len(m.Records) == 0 {
		// Heartbeat: refresh the lease, report the watermark.
		return &wire.ReplAck{Epoch: m.Epoch, Watermark: watermark, Mode: n.mode()}
	}
	last := m.FirstSeq + uint64(len(m.Records)) - 1
	if m.FirstSeq > watermark+1 {
		// A gap: refuse the whole frame and report how far we actually
		// got, so the leader reships from there (or falls back to a
		// snapshot when the log no longer reaches back).
		return &wire.Error{Code: wire.CodeReplGap, Aux: watermark,
			Msg: fmt.Sprintf("replica: gap: frame starts at %d, watermark %d", m.FirstSeq, watermark)}
	}
	if last <= watermark {
		// Full duplicate (a retry after a lost ack): acknowledge
		// idempotently, apply nothing.
		return &wire.ReplAck{Epoch: m.Epoch, Watermark: watermark, Mode: n.mode()}
	}
	replayCtx := wire.ContextWithEpoch(ctx, wire.ReplayEpoch)
	for i, rec := range m.Records {
		seq := m.FirstSeq + uint64(i)
		if seq <= watermark {
			continue // overlap prefix already applied
		}
		req, err := wire.Unmarshal(rec)
		if err != nil {
			return &wire.Error{Code: wire.CodeBadRequest,
				Msg: fmt.Sprintf("replica: record %d undecodable: %v", seq, err)}
		}
		if !isMutation(req) {
			return &wire.Error{Code: wire.CodeBadRequest,
				Msg: fmt.Sprintf("replica: record %d is not a mutation (%T)", seq, req)}
		}
		// Apply and commit under n.mu, revalidating the epoch first: once
		// another connection has re-epoch'd this node (Promote, a newer
		// leader's frame), a deposed leader's in-flight frame must neither
		// touch the engine nor inflate the watermark. Holding n.mu across
		// the engine apply makes check-apply-commit one atomic step with
		// respect to every role/epoch transition (all of which take n.mu);
		// an epoch change waits at most one record apply.
		n.mu.Lock()
		if n.closed || n.epoch != m.Epoch || n.role != wire.ReplFollower {
			cur := n.epoch
			n.mu.Unlock()
			return &wire.Error{Code: wire.CodeWrongShard, Aux: cur,
				Msg: fmt.Sprintf("replica: deposed mid-frame at record %d (epoch moved to %d)", seq, cur)}
		}
		if n.installing {
			n.mu.Unlock()
			return &wire.Error{Code: wire.CodeBusy, Msg: "replica: snapshot install in progress"}
		}
		if seq <= n.watermark {
			// Another frame for the same epoch already covered this record.
			watermark = n.watermark
			n.mu.Unlock()
			continue
		}
		if seq != n.watermark+1 {
			wm := n.watermark
			n.mu.Unlock()
			return &wire.Error{Code: wire.CodeReplGap, Aux: wm,
				Msg: fmt.Sprintf("replica: gap mid-frame: record %d, watermark %d", seq, wm)}
		}
		resp := n.engine.Handle(replayCtx, req)
		if errMsg, isErr := resp.(*wire.Error); isErr {
			n.mu.Unlock()
			// The leader only ships mutations that succeeded; an error
			// here means our state has diverged. Refuse loudly and stop
			// advancing — the leader will resync us by snapshot.
			return &wire.Error{Code: wire.CodeInternal,
				Msg: fmt.Sprintf("replica: record %d (%T) diverged: %s", seq, req, errMsg.Msg)}
		}
		n.watermark = seq
		watermark = seq
		n.mu.Unlock()
	}
	return &wire.ReplAck{Epoch: m.Epoch, Watermark: watermark, Mode: n.mode()}
}

// handleReplSnapshot installs one page of a leader's full-store snapshot.
// First wipes the local store (the resync replaces everything), Done
// reopens the engine over the installed state and adopts the snapshot's
// watermark. Reads answer CodeBusy for the duration. The installing flag
// is persisted (with the state key excluded from the wipe) BEFORE any key
// is deleted, so a crash anywhere inside the install restarts as a fenced
// follower — never as a standalone node serving the partial image.
func (n *Node) handleReplSnapshot(ctx context.Context, m *wire.ReplSnapshot) wire.Message {
	if m.Epoch == 0 {
		return &wire.Error{Code: wire.CodeBadRequest, Msg: "replica: epoch 0 is reserved"}
	}
	n.mu.Lock()
	if m.Epoch < n.epoch {
		defer n.mu.Unlock()
		return &wire.Error{Code: wire.CodeWrongShard, Aux: n.epoch,
			Msg: fmt.Sprintf("replica: stale replication epoch %d (current %d)", m.Epoch, n.epoch)}
	}
	if m.Epoch > n.epoch || n.role != wire.ReplFollower {
		n.becomeFollowerLocked(m.Epoch, m.Leader)
	} else if m.Leader != "" && n.leader != m.Leader {
		n.leader = m.Leader
	}
	if m.First {
		n.installing = true
		n.installEpoch = m.Epoch
		n.persistLocked() // durable marker: a crash mid-install restarts fenced
	} else if !n.installing || n.installEpoch != m.Epoch {
		// No live install at this epoch: pages either never had a First, or
		// their predecessors died with a restart / were superseded by a
		// newer install. The leader restarts the resync from a fresh First.
		defer n.mu.Unlock()
		return &wire.Error{Code: wire.CodeBadRequest, Msg: "replica: snapshot page without First"}
	}
	n.mu.Unlock()

	if m.First {
		if errw := n.wipeStore(m.Epoch); errw != nil {
			return errw
		}
	}
	if len(m.Items) > 0 {
		ops := make([]kv.Op, 0, len(m.Items))
		for _, it := range m.Items {
			ops = append(ops, kv.Op{Kind: kv.OpPut, Key: it.Key, Value: it.Value})
		}
		if errw := n.installStep(m.Epoch, func() error {
			if err := n.store.Batch(ops); err != nil {
				return fmt.Errorf("replica: installing page: %w", err)
			}
			return nil
		}); errw != nil {
			return errw
		}
	}
	if !m.Done {
		return &wire.ReplAck{Epoch: m.Epoch, Watermark: 0, Mode: n.mode()}
	}
	if errw := n.installStep(m.Epoch, func() error {
		engine, err := server.New(n.store, n.cfg)
		if err != nil {
			return fmt.Errorf("replica: reopening engine: %w", err)
		}
		n.engine = engine
		n.watermark = m.Watermark
		n.installing = false
		n.installEpoch = 0
		n.installs++
		n.persistLocked() // clear the durable installing marker
		return nil
	}); errw != nil {
		return errw
	}
	n.opts.Logf("replica: resynced by snapshot at epoch %d, watermark %d", m.Epoch, m.Watermark)
	return &wire.ReplAck{Epoch: m.Epoch, Watermark: m.Watermark, Mode: n.mode()}
}

// installStep runs one bounded store operation of a snapshot install with
// n.mu held, after revalidating that the install at epoch is still the
// current one. Like the per-record check in handleReplAppend, this makes
// check-then-write atomic with respect to every epoch/role transition: a
// page from a superseded install can never splice keys into a newer
// install (or into a live store) — the wipe, every page batch, and the
// final engine reopen all pass through here.
func (n *Node) installStep(epoch uint64, op func() error) *wire.Error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return &wire.Error{Code: wire.CodeBusy, Msg: "replica: node closed"}
	}
	if n.epoch != epoch {
		return &wire.Error{Code: wire.CodeWrongShard, Aux: n.epoch,
			Msg: fmt.Sprintf("replica: snapshot install superseded by epoch %d", n.epoch)}
	}
	if !n.installing || n.installEpoch != epoch {
		return &wire.Error{Code: wire.CodeBadRequest, Msg: "replica: no snapshot install in progress at this epoch"}
	}
	if err := op(); err != nil {
		return &wire.Error{Code: wire.CodeInternal, Msg: err.Error()}
	}
	return nil
}

// wipeStore deletes every key except the node's own replication state, in
// batches, ahead of the snapshot install at epoch. The state key must
// survive: it holds the persisted installing marker, and a crash mid-wipe
// (or between the wipe and the snapshot's Done page) must restart as a
// fenced follower, not as a blank standalone node. Each delete batch goes
// through installStep, so a superseded install stops wiping immediately.
func (n *Node) wipeStore(epoch uint64) *wire.Error {
	var keys []string
	if err := n.store.Scan("", func(key string, _ []byte) bool {
		if key != stateKey {
			keys = append(keys, key)
		}
		return true
	}); err != nil {
		return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("replica: wiping store: %v", err)}
	}
	for len(keys) > 0 {
		batch := keys
		if len(batch) > 1024 {
			batch = batch[:1024]
		}
		ops := make([]kv.Op, len(batch))
		for i, k := range batch {
			ops[i] = kv.Op{Kind: kv.OpDelete, Key: k}
		}
		if errw := n.installStep(epoch, func() error {
			if err := n.store.Batch(ops); err != nil {
				return fmt.Errorf("replica: wiping store: %w", err)
			}
			return nil
		}); errw != nil {
			return errw
		}
		keys = keys[len(batch):]
	}
	return nil
}

// handlePromote executes the router's failover (or bootstrap) decision:
// at a strictly higher epoch, the named node takes the lease and everyone
// else follows it.
func (n *Node) handlePromote(m *wire.Promote) wire.Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m.Epoch <= n.epoch {
		return &wire.Error{Code: wire.CodeWrongShard, Aux: n.epoch,
			Msg: fmt.Sprintf("replica: promotion epoch %d is not above %d", m.Epoch, n.epoch)}
	}
	if m.Leader == n.opts.Self && n.installing {
		// A mid-install store is a partial image; leading from it would
		// serve garbage. The router retries against another member (or
		// this one, once a leader has finished resyncing it).
		return &wire.Error{Code: wire.CodeBusy, Msg: "replica: snapshot install in progress"}
	}
	if m.Leader == n.opts.Self && n.opts.Quorum && othersIn(m.Members, n.opts.Self) < 2 {
		// Same loud refusal as Lead: a quorum-mode leader over fewer than
		// 3 members would satisfy its own write quorum alone.
		return &wire.Error{Code: wire.CodeBadRequest,
			Msg: fmt.Sprintf("replica: quorum mode needs a group of at least 3 members; promotion names %d follower(s)",
				othersIn(m.Members, n.opts.Self))}
	}
	if m.Leader == n.opts.Self {
		n.becomeLeaderLocked(m.Epoch, m.Members)
	} else {
		n.becomeFollowerLocked(m.Epoch, m.Leader)
	}
	return &wire.ReplAck{Epoch: n.epoch, Watermark: n.watermarkLocked(), Mode: n.mode()}
}

// handleLeaseInfo reports the node's replication state for routers and
// operator tooling.
func (n *Node) handleLeaseInfo() wire.Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	resp := &wire.LeaseInfoResp{
		Role:      n.role,
		Epoch:     n.epoch,
		Watermark: n.watermarkLocked(),
		LeaseMS:   n.opts.Lease.Milliseconds(),
		Leader:    n.leader,
		Mode:      n.mode(),
		Quorum:    uint32(n.quorumLocked()),
	}
	if n.opts.StoreSeq != nil {
		resp.StoreSeq = n.opts.StoreSeq()
	}
	if n.role == wire.ReplLeader {
		resp.Members = append(resp.Members, n.opts.Self)
		for addr := range n.followers {
			resp.Members = append(resp.Members, addr)
		}
	}
	return resp
}
