package replica

import (
	"context"
	"testing"
	"time"

	"repro/internal/kv"
	"repro/internal/server"
	"repro/internal/wire"
)

// newBareNode returns a Node with no TCP server — hostile frames are
// injected straight into Handle, which is exactly what a compromised or
// buggy peer could do over the wire.
func newBareNode(t testing.TB) *Node {
	t.Helper()
	node, err := New(kv.NewMemStore(), server.Config{}, Options{
		Self: "victim:1", Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	return node
}

// record marshals a request as a replication log record.
func record(m wire.Message) []byte { return wire.Marshal(m) }

func wantErr(t testing.TB, resp wire.Message, code uint32) *wire.Error {
	t.Helper()
	errMsg, ok := resp.(*wire.Error)
	if !ok || errMsg.Code != code {
		t.Fatalf("got %#v, want error code %d", resp, code)
	}
	return errMsg
}

// TestHostileFollowerRefusesGap: a frame that starts past watermark+1 is
// refused with the follower's true watermark and nothing is applied.
func TestHostileFollowerRefusesGap(t *testing.T) {
	node := newBareNode(t)
	ctx := context.Background()
	errMsg := wantErr(t, node.Handle(ctx, &wire.ReplAppend{
		Epoch: 1, FirstSeq: 5,
		Records: [][]byte{record(&wire.CreateStream{UUID: "evil", Cfg: testCfg()})},
	}), wire.CodeReplGap)
	if errMsg.Aux != 0 {
		t.Errorf("gap reported watermark %d, want 0", errMsg.Aux)
	}
	// Nothing was applied: the stream must not exist.
	if _, _, wm := node.Status(); wm != 0 {
		t.Errorf("watermark advanced to %d on a gapped frame", wm)
	}
	resp := node.Handle(ctx, &wire.StreamInfo{UUID: "evil"})
	if _, isErr := resp.(*wire.Error); !isErr {
		t.Error("gapped record was applied")
	}
}

// TestHostileFollowerDuplicateIsIdempotent: re-sending an applied prefix
// acks without re-applying (re-applying CreateStream would fail).
func TestHostileFollowerDuplicateIsIdempotent(t *testing.T) {
	node := newBareNode(t)
	ctx := context.Background()
	frame := &wire.ReplAppend{Epoch: 1, FirstSeq: 1,
		Records: [][]byte{record(&wire.CreateStream{UUID: "s", Cfg: testCfg()})}}
	if ack, ok := node.Handle(ctx, frame).(*wire.ReplAck); !ok || ack.Watermark != 1 {
		t.Fatalf("first apply -> %#v", ack)
	}
	// Exact duplicate: idempotent ack at the same watermark.
	if ack, ok := node.Handle(ctx, frame).(*wire.ReplAck); !ok || ack.Watermark != 1 {
		t.Fatalf("duplicate -> %#v", ack)
	}
	// Overlapping frame: the applied prefix is skipped, the suffix lands.
	overlap := &wire.ReplAppend{Epoch: 1, FirstSeq: 1, Records: [][]byte{
		record(&wire.CreateStream{UUID: "s", Cfg: testCfg()}),
		record(&wire.InsertChunk{UUID: "s", Chunk: testSealedChunk(t, 0)}),
	}}
	if ack, ok := node.Handle(ctx, overlap).(*wire.ReplAck); !ok || ack.Watermark != 2 {
		t.Fatalf("overlap -> %#v", ack)
	}
}

// TestHostileFollowerRefusesDivergence: a record the engine rejects (here
// a duplicate CreateStream shipped as a *new* sequence) halts the
// follower loudly instead of silently skipping it.
func TestHostileFollowerRefusesDivergence(t *testing.T) {
	node := newBareNode(t)
	ctx := context.Background()
	if _, ok := node.Handle(ctx, &wire.ReplAppend{Epoch: 1, FirstSeq: 1,
		Records: [][]byte{record(&wire.CreateStream{UUID: "s", Cfg: testCfg()})}}).(*wire.ReplAck); !ok {
		t.Fatal("setup apply failed")
	}
	wantErr(t, node.Handle(ctx, &wire.ReplAppend{Epoch: 1, FirstSeq: 2,
		Records: [][]byte{record(&wire.CreateStream{UUID: "s", Cfg: testCfg()})}}), wire.CodeInternal)
	if _, _, wm := node.Status(); wm != 1 {
		t.Errorf("watermark advanced to %d past a diverged record", wm)
	}
}

// TestHostileFollowerRefusesNonMutations: a replicated read (or a nested
// replication frame) is not a legal log record.
func TestHostileFollowerRefusesNonMutations(t *testing.T) {
	node := newBareNode(t)
	ctx := context.Background()
	wantErr(t, node.Handle(ctx, &wire.ReplAppend{Epoch: 1, FirstSeq: 1,
		Records: [][]byte{record(&wire.StreamInfo{UUID: "s"})}}), wire.CodeBadRequest)
	wantErr(t, node.Handle(ctx, &wire.ReplAppend{Epoch: 1, FirstSeq: 1,
		Records: [][]byte{record(&wire.ReplAppend{Epoch: 9, FirstSeq: 1})}}), wire.CodeBadRequest)
	// An undecodable record likewise.
	wantErr(t, node.Handle(ctx, &wire.ReplAppend{Epoch: 1, FirstSeq: 1,
		Records: [][]byte{{0xFF, 0xFE, 0xFD}}}), wire.CodeBadRequest)
	if _, _, wm := node.Status(); wm != 0 {
		t.Errorf("watermark advanced to %d on refused records", wm)
	}
}

// TestHostileEpochRules: stale epochs are refused with the known epoch,
// epoch 0 is never legal, and an equal-epoch competing leader is refused.
func TestHostileEpochRules(t *testing.T) {
	node := newBareNode(t)
	ctx := context.Background()
	// Adopt epoch 5.
	if _, ok := node.Handle(ctx, &wire.ReplAppend{Epoch: 5, FirstSeq: 1}).(*wire.ReplAck); !ok {
		t.Fatal("adoption heartbeat failed")
	}
	// Stale epoch: refused, deposing the sender.
	errMsg := wantErr(t, node.Handle(ctx, &wire.ReplAppend{Epoch: 3, FirstSeq: 1,
		Records: [][]byte{record(&wire.CreateStream{UUID: "evil", Cfg: testCfg()})}}), wire.CodeWrongShard)
	if errMsg.Aux != 5 {
		t.Errorf("refusal carried epoch %d, want 5", errMsg.Aux)
	}
	// Epoch 0 is reserved.
	wantErr(t, node.Handle(ctx, &wire.ReplAppend{Epoch: 0, FirstSeq: 1}), wire.CodeBadRequest)
	wantErr(t, node.Handle(ctx, &wire.ReplSnapshot{Epoch: 0, First: true}), wire.CodeBadRequest)
	// A promotion that does not advance the epoch is refused.
	wantErr(t, node.Handle(ctx, &wire.Promote{Epoch: 5, Leader: "victim:1"}), wire.CodeWrongShard)

	// An equal-epoch append against a live leader is a competing claim.
	leader := newBareNode(t)
	leader.Lead(nil)
	wantErr(t, leader.Handle(ctx, &wire.ReplAppend{Epoch: 1, FirstSeq: 1}), wire.CodeWrongShard)
}

// TestPromoteMidFrameStopsStaleApplies: replication frames on one
// connection are serialized, but a Promote arrives on another. A frame
// in flight from the old leader must stop applying the instant the node
// moves to a higher epoch — every record the engine applied must be one
// the node's post-promotion watermark accounts for, or a stale leader
// smuggles writes past the new epoch.
func TestPromoteMidFrameStopsStaleApplies(t *testing.T) {
	ctx := context.Background()
	for iter := 0; iter < 15; iter++ {
		node := newBareNode(t)
		if _, ok := node.Handle(ctx, &wire.ReplAppend{Epoch: 1, FirstSeq: 1,
			Records: [][]byte{record(&wire.CreateStream{UUID: "s", Cfg: testCfg()})}}).(*wire.ReplAck); !ok {
			t.Fatal("setup apply failed")
		}
		recs := make([][]byte, 60)
		for i := range recs {
			recs[i] = record(&wire.InsertChunk{UUID: "s", Chunk: testSealedChunk(t, uint64(i))})
		}
		done := make(chan wire.Message, 1)
		go func() {
			done <- node.Handle(ctx, &wire.ReplAppend{Epoch: 1, FirstSeq: 2, Records: recs})
		}()
		// Vary the promotion's landing point inside the frame.
		time.Sleep(time.Duration(iter) * 50 * time.Microsecond)
		if _, ok := node.Handle(ctx, &wire.Promote{Epoch: 2, Leader: "victim:1"}).(*wire.ReplAck); !ok {
			t.Fatal("promotion failed")
		}
		resp := <-done
		switch r := resp.(type) {
		case *wire.ReplAck: // the whole frame landed before the promotion
		case *wire.Error:
			if r.Code != wire.CodeWrongShard {
				t.Fatalf("iter %d: interrupted frame -> %#v", iter, r)
			}
		default:
			t.Fatalf("iter %d: frame -> %#v", iter, resp)
		}
		// The invariant: engine state matches the watermark the promoted
		// node reports (sequence 1 was the CreateStream, the rest inserts).
		role, epoch, wm := node.Status()
		if role != wire.ReplLeader || epoch != 2 {
			t.Fatalf("iter %d: role=%d epoch=%d after promotion", iter, role, epoch)
		}
		info, ok := node.Handle(ctx, &wire.StreamInfo{UUID: "s"}).(*wire.StreamInfoResp)
		if !ok {
			t.Fatalf("iter %d: StreamInfo failed", iter)
		}
		if uint64(info.Count) != wm-1 {
			t.Fatalf("iter %d: engine has %d chunks but watermark is %d — a stale frame kept applying past the promotion",
				iter, info.Count, wm)
		}
	}
}

// TestHostileSnapshotPageWithoutFirst: snapshot pages outside an install
// sequence are refused, so a hostile peer cannot splice keys into a live
// store.
func TestHostileSnapshotPageWithoutFirst(t *testing.T) {
	node := newBareNode(t)
	ctx := context.Background()
	wantErr(t, node.Handle(ctx, &wire.ReplSnapshot{
		Epoch: 1, Watermark: 99, Done: true,
		Items: []wire.KVItem{{Key: "m/evil", Value: []byte{1}}},
	}), wire.CodeBadRequest)
	if _, _, wm := node.Status(); wm != 0 {
		t.Errorf("watermark adopted %d from a refused page", wm)
	}
}
