package replica

import "sync"

// recordLog is the leader's in-memory replication log: the marshaled
// mutation requests it has applied, each stamped with a dense sequence
// number. Shippers read suffixes of it; once every follower has
// acknowledged a prefix, the leader trims it down to the byte budget. The
// log is deliberately volatile — durability lives in the engine's KV
// store; the log only exists to replay recent mutations to followers, and
// a follower that needs records the log no longer holds gets a full
// snapshot instead.
type recordLog struct {
	mu sync.Mutex
	// base is the sequence number of recs[0]; the log holds the
	// contiguous range [base, base+len(recs)). Sequence 0 is reserved
	// ("nothing applied"), so a fresh log has base 1.
	base  uint64
	recs  [][]byte
	bytes int
	// maxBytes is the retention budget; trimming never cuts into records
	// a follower still needs (the caller passes the group's minimum
	// acknowledged sequence).
	maxBytes int
}

const defaultLogBytes = 16 << 20

func newRecordLog(maxBytes int) *recordLog {
	if maxBytes <= 0 {
		maxBytes = defaultLogBytes
	}
	return &recordLog{base: 1, maxBytes: maxBytes}
}

// append adds one record and returns its sequence number.
func (l *recordLog) append(rec []byte) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recs = append(l.recs, rec)
	l.bytes += len(rec)
	return l.base + uint64(len(l.recs)) - 1
}

// head returns the highest sequence number in the log (base-1 when empty,
// i.e. the sequence of the last record ever appended).
func (l *recordLog) head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + uint64(len(l.recs)) - 1
}

// from returns up to maxBytes worth of records starting at seq (at least
// one record if any exists at seq). ok is false when seq has been trimmed
// away — the caller must fall back to a full snapshot. An empty result
// with ok=true means the follower is caught up.
func (l *recordLog) from(seq uint64, maxBytes int) (first uint64, recs [][]byte, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < l.base {
		return 0, nil, false
	}
	i := int(seq - l.base)
	if i >= len(l.recs) {
		return seq, nil, true
	}
	total := 0
	j := i
	for ; j < len(l.recs); j++ {
		total += len(l.recs[j])
		if total > maxBytes && j > i {
			break
		}
	}
	out := make([][]byte, j-i)
	copy(out, l.recs[i:j])
	return seq, out, true
}

// trimTo drops records with sequence <= seq while the log is over its
// byte budget. Records under budget are kept even when acknowledged, so a
// briefly lagging follower can catch up from the log instead of a
// snapshot.
func (l *recordLog) trimTo(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.bytes > l.maxBytes && len(l.recs) > 0 && l.base <= seq {
		l.bytes -= len(l.recs[0])
		l.recs[0] = nil
		l.recs = l.recs[1:]
		l.base++
	}
}

// reset re-bases an empty log so the next append is assigned seq next.
// A freshly promoted leader resets to its applied watermark + 1: sequence
// numbers stay comparable across the promotion, so followers whose
// watermark matches resume from the log without a snapshot.
func (l *recordLog) reset(next uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.base = next
	l.recs = nil
	l.bytes = 0
}
