package replica

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/client"
	"repro/internal/kv"
	"repro/internal/wire"
)

// maxShipBytes bounds one ReplAppend frame's record payload; a lagging
// follower catches up in bounded bites that stay well under the frame
// size limit.
const maxShipBytes = 1 << 20

// maxSnapshotPageBytes bounds one ReplSnapshot page.
const maxSnapshotPageBytes = 1 << 20

// leaderApply is the leader's mutation path: apply locally, append the
// marshaled request to the record log, and acknowledge only once the
// group's durability condition holds — every active follower in
// availability mode, a write quorum in quorum mode. The stream's apply
// stripe is held across engine apply + log append so the log's order
// matches the engine's per-stream apply order (followers replay
// single-threaded).
//
// Error semantics the clients lean on: a CodeBusy from the quorum gate
// is returned BEFORE anything is applied (retry freely); a CodeCanceled
// from waitDurable means the write was applied locally but its
// replication outcome is unknown (same ambiguity as a broken
// connection — resolve by re-reading, never by blind retry).
func (n *Node) leaderApply(ctx context.Context, req wire.Message, epoch uint64) wire.Message {
	if busy := n.quorumGate(); busy != nil {
		return busy
	}
	unlock := n.lockApply(req)
	engine, busy := n.currentEngine()
	if busy != nil {
		unlock()
		return busy
	}
	resp := engine.Handle(ctx, req)
	if _, isErr := resp.(*wire.Error); isErr {
		// A failed mutation changed nothing; nothing to replicate.
		unlock()
		return resp
	}
	seq := n.log.append(wire.Marshal(req))
	n.mu.Lock()
	if seq > n.applied {
		n.applied = seq
	}
	n.mu.Unlock()
	unlock()
	n.notifyShippers()
	if err := n.waitDurable(ctx, seq, epoch); err != nil {
		return err
	}
	if n.opts.OnAck != nil {
		n.opts.OnAck(epoch, seq)
	}
	n.mu.Lock()
	min := n.minAckedLocked()
	n.mu.Unlock()
	n.log.trimTo(min)
	return resp
}

// lockApply takes the request's per-stream apply stripe, or every stripe
// (in order, to stay deadlock-free) for requests without a routing key.
func (n *Node) lockApply(req wire.Message) func() {
	if uuid, ok := wire.RoutingUUID(req); ok {
		h := fnv.New32a()
		h.Write([]byte(uuid))
		m := &n.applyMu[h.Sum32()%applyStripes]
		m.Lock()
		return m.Unlock
	}
	for i := range n.applyMu {
		n.applyMu[i].Lock()
	}
	return func() {
		for i := range n.applyMu {
			n.applyMu[i].Unlock()
		}
	}
}

func (n *Node) notifyShippers() {
	n.mu.Lock()
	for _, f := range n.followers {
		select {
		case f.notify <- struct{}{}:
		default:
		}
	}
	n.mu.Unlock()
}

// waitDurable blocks until the durability condition for seq holds —
// every active follower has acknowledged it (availability mode), or
// ⌈N/2⌉ group members including the leader have (quorum mode) — the
// context expires, or the node loses the lease (the write's outcome is
// then ambiguous — same contract as a broken connection).
//
// The quorum count deliberately ignores the active flag: deactivating an
// unreachable follower must never shrink the ack set below the quorum,
// so quorum mode counts real acknowledgements only and simply keeps
// waiting (until the writer's deadline) when too few members answer.
func (n *Node) waitDurable(ctx context.Context, seq, epoch uint64) *wire.Error {
	n.mu.Lock()
	for {
		if n.closed || n.role != wire.ReplLeader || n.epoch != epoch {
			leader := n.leader
			cur := n.epoch
			n.mu.Unlock()
			return &wire.Error{Code: wire.CodeNotLeader, Aux: cur,
				Msg: leader}
		}
		if need := n.quorumLocked(); need > 0 {
			durable := 1 // the leader itself
			for _, f := range n.followers {
				if f.acked >= seq {
					durable++
				}
			}
			if durable >= need {
				n.mu.Unlock()
				return nil
			}
		} else {
			pending := false
			for _, f := range n.followers {
				if f.active && f.acked < seq {
					pending = true
					break
				}
			}
			if !pending {
				n.mu.Unlock()
				return nil
			}
		}
		ch := n.changed
		n.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return &wire.Error{Code: wire.CodeCanceled,
				Msg: fmt.Sprintf("replica: replication wait: %v", ctx.Err())}
		}
		n.mu.Lock()
	}
}

// minAckedLocked returns the lowest acknowledged sequence across active
// followers (the leader's own applied sequence when none are active);
// the log may trim up to it.
func (n *Node) minAckedLocked() uint64 {
	min := n.applied
	for _, f := range n.followers {
		if f.active && f.acked < min {
			min = f.acked
		}
	}
	return min
}

// runShipper drives one follower: it ships log suffixes as ReplAppend
// frames, heartbeats when idle, falls back to a full snapshot when the
// follower is behind the log's tail, and marks the follower inactive
// (degrading durability, not availability) while it is unreachable.
func (n *Node) runShipper(f *follower, epoch uint64) {
	heartbeat := n.opts.Lease / 3
	if heartbeat <= 0 {
		heartbeat = time.Second
	}
	var tr *client.TCP
	defer func() {
		if tr != nil {
			tr.Close()
		}
	}()
	backoff := 50 * time.Millisecond
	deactivate := func() {
		n.mu.Lock()
		if f.active {
			f.active = false
			n.bumpLocked()
			n.opts.Logf("replica: follower %s unreachable; continuing without it", f.addr)
		}
		n.mu.Unlock()
	}
	sleep := func(d time.Duration) bool {
		select {
		case <-f.stop:
			return false
		case <-time.After(d):
			return true
		}
	}
	// forceSnapshot requests a full resync regardless of log coverage: set
	// when the follower's acks prove it lives in another leader's sequence
	// space, or when it is stuck installing a snapshot whose sender died.
	forceSnapshot := false
	// busyStreak counts consecutive CodeBusy refusals. A follower that
	// answers busy forever is fenced mid-install with no one finishing the
	// job; a fresh snapshot First is the one frame it still accepts.
	busyStreak := 0
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		if tr == nil {
			var err error
			tr, err = client.DialTCPOptions(f.addr, client.SessionOptions{NetDial: n.opts.NetDial})
			if err != nil {
				deactivate()
				if !sleep(backoff) {
					return
				}
				if backoff < n.opts.Lease {
					backoff *= 2
				}
				continue
			}
			backoff = 50 * time.Millisecond
		}

		n.mu.Lock()
		acked := f.acked
		n.mu.Unlock()
		first, recs, ok := n.log.from(acked+1, maxShipBytes)
		if forceSnapshot || !ok {
			// The follower is behind the log's tail (or provably
			// divergent/stuck): full resync.
			wm, err := n.sendSnapshot(tr, epoch)
			if err != nil {
				n.opts.Logf("replica: snapshot to %s: %v", f.addr, err)
				deactivate()
				if !sleep(backoff) {
					return
				}
				continue
			}
			forceSnapshot = false
			busyStreak = 0
			n.mu.Lock()
			f.acked = wm
			f.active = true
			f.lastAck = time.Now()
			n.bumpLocked()
			n.mu.Unlock()
			continue
		}
		if len(recs) == 0 {
			// Caught up: wait for work, heartbeating to keep the lease
			// observable (and to learn promptly if we were deposed).
			select {
			case <-f.stop:
				return
			case <-f.notify:
				continue
			case <-time.After(heartbeat):
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), n.opts.Lease)
		resp, err := tr.RoundTrip(ctx, &wire.ReplAppend{
			Epoch: epoch, FirstSeq: first, Records: recs, Leader: n.opts.Self,
		})
		cancel()
		if err != nil {
			deactivate()
			if !sleep(backoff) {
				return
			}
			continue
		}
		switch r := resp.(type) {
		case *wire.ReplAck:
			if head := n.log.head(); r.Watermark > head {
				// The follower acknowledges sequences this leader never
				// assigned: its watermark comes from an older leader's
				// sequence space (it missed a re-based promotion). Its
				// duplicate-acks would silently discard every new record,
				// so its state is unusable — force a full resync.
				n.opts.Logf("replica: follower %s watermark %d is beyond log head %d (divergent history); forcing snapshot resync",
					f.addr, r.Watermark, head)
				forceSnapshot = true
				continue
			}
			busyStreak = 0
			n.mu.Lock()
			if r.Watermark > f.acked {
				f.acked = r.Watermark
			}
			f.lastAck = time.Now()
			if r.Mode != n.mode() && !f.modeWarned {
				f.modeWarned = true
				n.opts.Logf("replica: follower %s acknowledges in mode %d but this group runs mode %d; fix the -quorum flag on that node",
					f.addr, r.Mode, n.mode())
			}
			if !f.active {
				f.active = true
				n.opts.Logf("replica: follower %s active at watermark %d", f.addr, f.acked)
			}
			n.bumpLocked()
			min := n.minAckedLocked()
			n.mu.Unlock()
			n.log.trimTo(min)
		case *wire.Error:
			switch r.Code {
			case wire.CodeReplGap:
				// Reship from where the follower actually is.
				busyStreak = 0
				n.mu.Lock()
				f.acked = r.Aux
				f.lastAck = time.Now()
				n.mu.Unlock()
			case wire.CodeWrongShard:
				// The follower knows a higher epoch: we are deposed.
				n.deposeTo(r.Aux)
				return
			case wire.CodeBusy:
				// Likely a snapshot install in progress. If it persists,
				// the installer died with the job half done and the
				// follower is fenced forever; a fresh snapshot First is
				// the one frame it still accepts, so send one.
				busyStreak++
				if busyStreak >= 3 {
					n.opts.Logf("replica: follower %s busy %d times in a row; forcing snapshot resync", f.addr, busyStreak)
					forceSnapshot = true
					busyStreak = 0
				}
				if !sleep(backoff) {
					return
				}
			default:
				n.opts.Logf("replica: follower %s refused append: %s", f.addr, r.Msg)
				deactivate()
				if !sleep(backoff) {
					return
				}
			}
		default:
			n.opts.Logf("replica: follower %s: unexpected response %T", f.addr, resp)
			deactivate()
			if !sleep(backoff) {
				return
			}
		}
	}
}

// snapshotDump captures a consistent full-store image: every apply stripe
// is held, freezing mutations, while keys are captured (the node's own
// replication state is excluded — roles don't replicate). It returns the
// image and the applied sequence it corresponds to.
//
// A consistent instant is mandatory — engine replay is not idempotent and
// the store scans in no particular order — so the freeze itself can't be
// avoided; instead it is made cheap. Stores that support ShallowScanner
// (their internal value buffers are immutable) are captured as slice
// headers only, no value bytes copied: the freeze costs O(keys) pointer
// copies and pages marshal straight from the store's own buffers after
// the stripes are released. Other stores get a defensive deep copy.
func (n *Node) snapshotDump() ([]wire.KVItem, uint64, error) {
	unlock := n.lockApply(&wire.TopologyUpdate{}) // no routing key: all stripes
	defer unlock()
	var items []wire.KVItem
	var err error
	if ss, ok := n.store.(kv.ShallowScanner); ok {
		err = ss.ScanShallow("", func(key string, value []byte) bool {
			if key == stateKey {
				return true
			}
			items = append(items, wire.KVItem{Key: key, Value: value})
			return true
		})
	} else {
		err = n.store.Scan("", func(key string, value []byte) bool {
			if key == stateKey {
				return true
			}
			items = append(items, wire.KVItem{Key: key, Value: append([]byte(nil), value...)})
			return true
		})
	}
	if err != nil {
		return nil, 0, err
	}
	n.mu.Lock()
	applied := n.applied
	n.mu.Unlock()
	return items, applied, nil
}

// sendSnapshot resyncs one follower with a paged full snapshot and
// returns the watermark the follower adopted.
func (n *Node) sendSnapshot(tr *client.TCP, epoch uint64) (uint64, error) {
	items, watermark, err := n.snapshotDump()
	if err != nil {
		return 0, err
	}
	n.opts.Logf("replica: resyncing follower by snapshot: %d keys at watermark %d", len(items), watermark)
	first := true
	for {
		var page []wire.KVItem
		bytes := 0
		for len(items) > 0 && len(page) < wire.MaxSnapshotItems {
			it := items[0]
			if bytes > 0 && bytes+len(it.Key)+len(it.Value) > maxSnapshotPageBytes {
				break
			}
			bytes += len(it.Key) + len(it.Value)
			page = append(page, it)
			items[0] = wire.KVItem{} // release captured buffers as pages ship
			items = items[1:]
		}
		done := len(items) == 0
		ctx, cancel := context.WithTimeout(context.Background(), 4*n.opts.Lease)
		resp, err := tr.RoundTrip(ctx, &wire.ReplSnapshot{
			Epoch: epoch, Watermark: watermark, First: first, Done: done, Items: page,
			Leader: n.opts.Self,
		})
		cancel()
		if err != nil {
			return 0, err
		}
		if e, isErr := resp.(*wire.Error); isErr {
			if e.Code == wire.CodeWrongShard {
				n.deposeTo(e.Aux)
			}
			return 0, e
		}
		if done {
			return watermark, nil
		}
		first = false
	}
}
