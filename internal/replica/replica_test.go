package replica

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/kv"
	"repro/internal/server"
	"repro/internal/wire"
)

var testSpec = chunk.DigestSpec{Sum: true, Count: true}

func testCfg() wire.StreamConfig {
	specBytes, _ := testSpec.MarshalBinary()
	return wire.StreamConfig{
		Epoch: 0, Interval: 100, VectorLen: uint32(testSpec.VectorLen()),
		Fanout: 8, DigestSpec: specBytes,
	}
}

func testSealedChunk(t testing.TB, idx uint64) []byte {
	t.Helper()
	start := int64(idx) * 100
	sealed, err := chunk.SealPlain(testSpec, chunk.CompressionNone, idx, start, start+100,
		[]chunk.Point{{TS: start, Val: int64(idx + 1)}})
	if err != nil {
		t.Fatal(err)
	}
	return chunk.MarshalSealed(sealed)
}

// testNode is one replication group member served over real TCP.
type testNode struct {
	node  *Node
	store kv.Store
	addr  string
	srv   *server.Server
	stop  func()
}

// startNode serves a fresh Node on a loopback listener. lease keeps test
// heartbeats and failure detection fast.
func startNode(t testing.TB, lease time.Duration) *testNode {
	t.Helper()
	return startNodeOn(t, lease, kv.NewMemStore())
}

// startNodeOn serves a Node over an existing store, so tests can restart
// a member on top of its persisted replication state.
func startNodeOn(t testing.TB, lease time.Duration, store kv.Store) *testNode {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node, err := New(store, server.Config{}, Options{
		Self:  lis.Addr().String(),
		Lease: lease,
		Logf:  func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewServer(node, func(string, ...any) {})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ctx, lis) }()
	tn := &testNode{node: node, store: store, addr: lis.Addr().String(), srv: srv}
	tn.stop = func() {
		node.Close()
		cancel()
		srv.Close()
		<-done
	}
	t.Cleanup(tn.stop)
	return tn
}

func isOK(m wire.Message) bool { _, ok := m.(*wire.OK); return ok }

// waitFor polls until cond holds or the deadline lapses.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// statBytes marshals a node's StatRange response so replicas can be
// compared byte for byte.
func statBytes(t testing.TB, n *Node, uuid string) []byte {
	t.Helper()
	resp := n.Handle(context.Background(), &wire.StatRange{
		UUIDs: []string{uuid}, Ts: 0, Te: 1 << 40, WindowChunks: 4,
	})
	if _, isErr := resp.(*wire.Error); isErr {
		t.Fatalf("StatRange -> %#v", resp)
	}
	return wire.Marshal(resp)
}

func TestLeaderReplicatesToFollower(t *testing.T) {
	follower := startNode(t, 200*time.Millisecond)
	leader := startNode(t, 200*time.Millisecond)
	leader.node.Lead([]string{follower.addr})

	ctx := context.Background()
	if resp := leader.node.Handle(ctx, &wire.CreateStream{UUID: "s1", Cfg: testCfg()}); !isOK(resp) {
		t.Fatalf("CreateStream -> %#v", resp)
	}
	for i := uint64(0); i < 10; i++ {
		if resp := leader.node.Handle(ctx, &wire.InsertChunk{UUID: "s1", Chunk: testSealedChunk(t, i)}); !isOK(resp) {
			t.Fatalf("InsertChunk(%d) -> %#v", i, resp)
		}
		// Read-your-writes: the insert was acknowledged only after the
		// follower applied it, so the follower must see it now.
		info, ok := follower.node.Handle(ctx, &wire.StreamInfo{UUID: "s1"}).(*wire.StreamInfoResp)
		if !ok || info.Count != i+1 {
			t.Fatalf("follower count after insert %d: %#v", i, info)
		}
	}
	if got, want := statBytes(t, follower.node, "s1"), statBytes(t, leader.node, "s1"); !bytes.Equal(got, want) {
		t.Error("follower StatRange diverged from leader")
	}
	role, epoch, wm := follower.node.Status()
	if role != wire.ReplFollower || epoch != 1 || wm != 11 {
		t.Errorf("follower status: role=%d epoch=%d watermark=%d", role, epoch, wm)
	}
}

func TestFollowerRefusesClientWrites(t *testing.T) {
	follower := startNode(t, 200*time.Millisecond)
	leader := startNode(t, 200*time.Millisecond)
	leader.node.Lead([]string{follower.addr})
	ctx := context.Background()
	if resp := leader.node.Handle(ctx, &wire.CreateStream{UUID: "s1", Cfg: testCfg()}); !isOK(resp) {
		t.Fatalf("CreateStream -> %#v", resp)
	}
	waitFor(t, "follower adoption", func() bool {
		role, _, _ := follower.node.Status()
		return role == wire.ReplFollower
	})
	errMsg, ok := follower.node.Handle(ctx, &wire.InsertChunk{UUID: "s1", Chunk: testSealedChunk(t, 0)}).(*wire.Error)
	if !ok || errMsg.Code != wire.CodeNotLeader {
		t.Fatalf("follower write -> %#v", errMsg)
	}
	if errMsg.Aux != 1 {
		t.Errorf("CodeNotLeader epoch = %d, want 1", errMsg.Aux)
	}
	// The referral names the leader that is actually shipping to this
	// follower (carried in every ReplAppend frame), so clients redirect in
	// one hop.
	if errMsg.Msg != leader.addr {
		t.Errorf("CodeNotLeader referral = %q, want %q", errMsg.Msg, leader.addr)
	}
	// Reads keep working on the follower.
	if resp := follower.node.Handle(ctx, &wire.StreamInfo{UUID: "s1"}); resp == nil {
		t.Fatal("follower read failed")
	}
}

func TestPromoteFailoverAndDeposedLeader(t *testing.T) {
	follower := startNode(t, 100*time.Millisecond)
	leader := startNode(t, 100*time.Millisecond)
	leader.node.Lead([]string{follower.addr})

	ctx := context.Background()
	if resp := leader.node.Handle(ctx, &wire.CreateStream{UUID: "s1", Cfg: testCfg()}); !isOK(resp) {
		t.Fatalf("CreateStream -> %#v", resp)
	}
	for i := uint64(0); i < 5; i++ {
		if resp := leader.node.Handle(ctx, &wire.InsertChunk{UUID: "s1", Chunk: testSealedChunk(t, i)}); !isOK(resp) {
			t.Fatalf("InsertChunk(%d) -> %#v", i, resp)
		}
	}
	before := statBytes(t, leader.node, "s1")

	// Failover: promote the follower at a higher epoch, naming the old
	// leader as a member so it gets adopted back.
	ack, ok := follower.node.Handle(ctx, &wire.Promote{
		Epoch: 2, Leader: follower.addr, Members: []string{follower.addr, leader.addr},
	}).(*wire.ReplAck)
	if !ok || ack.Epoch != 2 {
		t.Fatalf("Promote -> %#v", ack)
	}
	role, epoch, _ := follower.node.Status()
	if role != wire.ReplLeader || epoch != 2 {
		t.Fatalf("promoted follower: role=%d epoch=%d", role, epoch)
	}
	// Every acknowledged chunk survives, byte for byte.
	if got := statBytes(t, follower.node, "s1"); !bytes.Equal(got, before) {
		t.Error("promoted follower lost acknowledged data")
	}

	// The old leader learns of the higher epoch from its own shipping (or
	// from the new leader's adoption) and stops accepting writes.
	waitFor(t, "old leader deposed", func() bool {
		role, _, _ := leader.node.Status()
		return role != wire.ReplLeader
	})
	resp := leader.node.Handle(ctx, &wire.InsertChunk{UUID: "s1", Chunk: testSealedChunk(t, 5)})
	if errMsg, isErr := resp.(*wire.Error); !isErr || errMsg.Code != wire.CodeNotLeader {
		t.Fatalf("deposed leader accepted a write: %#v", resp)
	}

	// The new leader resyncs the ex-leader (watermark reset forces a
	// snapshot) and then writes replicate to it as a follower.
	waitFor(t, "ex-leader resynced", func() bool {
		role, epoch, wm := leader.node.Status()
		return role == wire.ReplFollower && epoch == 2 && wm >= 6
	})
	if resp := follower.node.Handle(ctx, &wire.InsertChunk{UUID: "s1", Chunk: testSealedChunk(t, 5)}); !isOK(resp) {
		t.Fatalf("write on new leader -> %#v", resp)
	}
	if got, want := statBytes(t, leader.node, "s1"), statBytes(t, follower.node, "s1"); !bytes.Equal(got, want) {
		t.Error("ex-leader diverged after rejoining as follower")
	}
}

func TestSnapshotResyncFromTrimmedLog(t *testing.T) {
	follower := startNode(t, 100*time.Millisecond)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	store := kv.NewMemStore()
	// A one-byte log budget trims every acknowledged record away, so a
	// late-joining follower can never catch up from the log.
	node, err := New(store, server.Config{}, Options{
		Self: lis.Addr().String(), Lease: 100 * time.Millisecond,
		LogBytes: 1, Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	node.Lead(nil) // no followers yet

	ctx := context.Background()
	if resp := node.Handle(ctx, &wire.CreateStream{UUID: "s1", Cfg: testCfg()}); !isOK(resp) {
		t.Fatalf("CreateStream -> %#v", resp)
	}
	for i := uint64(0); i < 8; i++ {
		if resp := node.Handle(ctx, &wire.InsertChunk{UUID: "s1", Chunk: testSealedChunk(t, i)}); !isOK(resp) {
			t.Fatalf("InsertChunk(%d) -> %#v", i, resp)
		}
	}
	// Re-promote with the follower in the group: its watermark 0 is far
	// behind the trimmed log, forcing a full snapshot resync.
	if resp := node.Handle(ctx, &wire.Promote{
		Epoch: 2, Leader: lis.Addr().String(),
		Members: []string{lis.Addr().String(), follower.addr},
	}); resp == nil {
		t.Fatal("Promote failed")
	}
	waitFor(t, "snapshot resync", func() bool {
		role, epoch, wm := follower.node.Status()
		return role == wire.ReplFollower && epoch == 2 && wm >= 9
	})
	if got, want := statBytes(t, follower.node, "s1"), statBytes(t, node, "s1"); !bytes.Equal(got, want) {
		t.Error("resynced follower diverged from leader")
	}
	// And the pipeline keeps flowing after the resync.
	if resp := node.Handle(ctx, &wire.InsertChunk{UUID: "s1", Chunk: testSealedChunk(t, 8)}); !isOK(resp) {
		t.Fatalf("post-resync insert -> %#v", resp)
	}
	info, ok := follower.node.Handle(ctx, &wire.StreamInfo{UUID: "s1"}).(*wire.StreamInfoResp)
	if !ok || info.Count != 9 {
		t.Errorf("follower count after post-resync insert: %#v", info)
	}
}

// TestDivergentFollowerForcedToResync: a follower whose watermark comes
// from an older leader's sequence space (it missed a re-based promotion)
// must be snapshot-resynced, not allowed to duplicate-ack every new record
// while applying none of them — that would silently lose acknowledged
// writes.
func TestDivergentFollowerForcedToResync(t *testing.T) {
	follower := startNode(t, 100*time.Millisecond)
	old := startNode(t, 100*time.Millisecond)
	old.node.Lead([]string{follower.addr})

	ctx := context.Background()
	if resp := old.node.Handle(ctx, &wire.CreateStream{UUID: "s1", Cfg: testCfg()}); !isOK(resp) {
		t.Fatalf("CreateStream -> %#v", resp)
	}
	for i := uint64(0); i < 5; i++ {
		if resp := old.node.Handle(ctx, &wire.InsertChunk{UUID: "s1", Chunk: testSealedChunk(t, i)}); !isOK(resp) {
			t.Fatalf("InsertChunk(%d) -> %#v", i, resp)
		}
	}
	waitFor(t, "follower caught up on old leader", func() bool {
		_, _, wm := follower.node.Status()
		return wm == 6
	})

	// The old leader "dies"; a FRESH, empty node is promoted at a higher
	// epoch. Its log starts at sequence 1 — a different sequence space —
	// while the follower still carries watermark 6 from epoch 1.
	fresh := startNode(t, 100*time.Millisecond)
	if resp := fresh.node.Handle(ctx, &wire.Promote{
		Epoch: 2, Leader: fresh.addr, Members: []string{fresh.addr, follower.addr},
	}); resp == nil {
		t.Fatal("Promote failed")
	}

	// New writes on the fresh leader must actually reach the follower; a
	// divergent follower dup-acking them without applying would leave it
	// without stream s2 forever.
	if resp := fresh.node.Handle(ctx, &wire.CreateStream{UUID: "s2", Cfg: testCfg()}); !isOK(resp) {
		t.Fatalf("CreateStream on fresh leader -> %#v", resp)
	}
	for i := uint64(0); i < 5; i++ {
		if resp := fresh.node.Handle(ctx, &wire.InsertChunk{UUID: "s2", Chunk: testSealedChunk(t, i)}); !isOK(resp) {
			t.Fatalf("InsertChunk on fresh leader -> %#v", resp)
		}
	}
	waitFor(t, "divergent follower resynced to the fresh leader", func() bool {
		info, ok := follower.node.Handle(ctx, &wire.StreamInfo{UUID: "s2"}).(*wire.StreamInfoResp)
		return ok && info.Count == 5
	})
	// The resync replaced the follower's divergent image wholesale: the old
	// stream is gone (the fresh leader never had it) and states match.
	if resp := follower.node.Handle(ctx, &wire.StreamInfo{UUID: "s1"}); !func() bool {
		_, isErr := resp.(*wire.Error)
		return isErr
	}() {
		t.Errorf("divergent follower kept stale stream s1: %#v", resp)
	}
	if got, want := statBytes(t, follower.node, "s2"), statBytes(t, fresh.node, "s2"); !bytes.Equal(got, want) {
		t.Error("resynced follower diverged from fresh leader")
	}
}

// TestCrashMidSnapshotInstallRestartsFenced: the installing marker is
// durable and the state key survives the pre-install wipe, so a node that
// crashes between the wipe and the snapshot's Done page restarts as a
// fenced follower — it must not come back standalone serving a partial
// image (empty reads, accepted writes).
func TestCrashMidSnapshotInstallRestartsFenced(t *testing.T) {
	store := kv.NewMemStore()
	silent := func(string, ...any) {}
	node, err := New(store, server.Config{}, Options{Self: "a:1", Logf: silent})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if resp := node.Handle(ctx, &wire.CreateStream{UUID: "old", Cfg: testCfg()}); !isOK(resp) {
		t.Fatalf("CreateStream -> %#v", resp)
	}
	// First page of an install at epoch 7 wipes the store; the sender dies
	// before Done, then this node crashes.
	if resp := node.Handle(ctx, &wire.ReplSnapshot{
		Epoch: 7, Watermark: 40, First: true, Leader: "b:1",
		Items: []wire.KVItem{{Key: "partial/key", Value: []byte{1}}},
	}); resp == nil {
		t.Fatal("snapshot first page refused")
	}
	node.Close()

	reborn, err := New(store, server.Config{}, Options{Self: "a:1", Logf: silent})
	if err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()
	role, epoch, _ := reborn.Status()
	if role != wire.ReplFollower || epoch != 7 {
		t.Fatalf("restarted mid-install: role=%d epoch=%d, want fenced follower at epoch 7", role, epoch)
	}
	// Reads are fenced (the store is a partial image)...
	wantErr(t, reborn.Handle(ctx, &wire.StreamInfo{UUID: "old"}), wire.CodeBusy)
	// ...writes are refused...
	wantErr(t, reborn.Handle(ctx, &wire.CreateStream{UUID: "x", Cfg: testCfg()}), wire.CodeNotLeader)
	// ...it cannot be promoted to lead over the partial image...
	wantErr(t, reborn.Handle(ctx, &wire.Promote{Epoch: 8, Leader: "a:1"}), wire.CodeBusy)
	// ...and a resumed page without a fresh First is refused (its
	// predecessor pages died with the process).
	wantErr(t, reborn.Handle(ctx, &wire.ReplSnapshot{Epoch: 7, Watermark: 40, Done: true}), wire.CodeBadRequest)

	// A fresh First..Done snapshot completes the resync and lifts the fence.
	ack, ok := reborn.Handle(ctx, &wire.ReplSnapshot{
		Epoch: 7, Watermark: 3, First: true, Done: true, Leader: "b:1",
	}).(*wire.ReplAck)
	if !ok || ack.Watermark != 3 {
		t.Fatalf("fresh snapshot -> %#v", ack)
	}
	if role, epoch, wm := reborn.Status(); role != wire.ReplFollower || epoch != 7 || wm != 3 {
		t.Fatalf("after resync: role=%d epoch=%d wm=%d", role, epoch, wm)
	}
	if resp := reborn.Handle(ctx, &wire.StreamInfo{UUID: "old"}); func() bool {
		errMsg, isErr := resp.(*wire.Error)
		return isErr && errMsg.Code == wire.CodeBusy
	}() {
		t.Error("reads still fenced after a completed resync")
	}
}

// TestLeaderRecoversFollowerStuckMidInstall: a follower fenced by a
// crashed snapshot install answers CodeBusy to every append forever; the
// leader must notice the busy streak and send a fresh snapshot — the one
// frame such a follower still accepts — instead of retrying appends
// indefinitely.
func TestLeaderRecoversFollowerStuckMidInstall(t *testing.T) {
	silent := func(string, ...any) {}
	fstore := kv.NewMemStore()
	crashed, err := New(fstore, server.Config{}, Options{Self: "f:1", Logf: silent})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if resp := crashed.Handle(ctx, &wire.ReplSnapshot{
		Epoch: 1, Watermark: 9, First: true, Leader: "dead:1",
		Items: []wire.KVItem{{Key: "partial/key", Value: []byte{1}}},
	}); resp == nil {
		t.Fatal("snapshot first page refused")
	}
	crashed.Close()

	follower := startNodeOn(t, 100*time.Millisecond, fstore)
	wantErr(t, follower.node.Handle(ctx, &wire.StreamInfo{UUID: "s1"}), wire.CodeBusy)

	leader := startNode(t, 100*time.Millisecond)
	if resp := leader.node.Handle(ctx, &wire.CreateStream{UUID: "s1", Cfg: testCfg()}); !isOK(resp) {
		t.Fatalf("CreateStream -> %#v", resp)
	}
	for i := uint64(0); i < 3; i++ {
		if resp := leader.node.Handle(ctx, &wire.InsertChunk{UUID: "s1", Chunk: testSealedChunk(t, i)}); !isOK(resp) {
			t.Fatalf("InsertChunk(%d) -> %#v", i, resp)
		}
	}
	leader.node.Lead([]string{follower.addr})

	waitFor(t, "stuck follower snapshot-resynced", func() bool {
		role, _, _ := follower.node.Status()
		if role != wire.ReplFollower {
			return false
		}
		info, ok := follower.node.Handle(ctx, &wire.StreamInfo{UUID: "s1"}).(*wire.StreamInfoResp)
		return ok && info.Count == 3
	})
	// And the pipeline flows after the recovery.
	if resp := leader.node.Handle(ctx, &wire.InsertChunk{UUID: "s1", Chunk: testSealedChunk(t, 3)}); !isOK(resp) {
		t.Fatalf("post-recovery insert -> %#v", resp)
	}
	if got, want := statBytes(t, follower.node, "s1"), statBytes(t, leader.node, "s1"); !bytes.Equal(got, want) {
		t.Error("recovered follower diverged from leader")
	}
}

func TestRestartedLeaderComesBackDeposed(t *testing.T) {
	store := kv.NewMemStore()
	node, err := New(store, server.Config{}, Options{Self: "a:1", Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	node.Lead(nil)
	node.Close()

	reborn, err := New(store, server.Config{}, Options{Self: "a:1", Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()
	role, epoch, _ := reborn.Status()
	if role != wire.ReplDeposed || epoch != 1 {
		t.Fatalf("restarted leader: role=%d epoch=%d, want deposed at epoch 1", role, epoch)
	}
	// It refuses writes until re-promoted or adopted...
	resp := reborn.Handle(context.Background(), &wire.CreateStream{UUID: "x", Cfg: testCfg()})
	if errMsg, isErr := resp.(*wire.Error); !isErr || errMsg.Code != wire.CodeNotLeader {
		t.Fatalf("deposed node accepted a write: %#v", resp)
	}
	// ...and Lead is a no-op over persisted state (no self-promotion).
	reborn.Lead(nil)
	if role, _, _ := reborn.Status(); role != wire.ReplDeposed {
		t.Error("restarted ex-leader self-promoted")
	}
	// An explicit re-promotion at a higher epoch restores it.
	if ack, ok := reborn.Handle(context.Background(), &wire.Promote{Epoch: 2, Leader: "a:1"}).(*wire.ReplAck); !ok || ack.Epoch != 2 {
		t.Fatalf("re-promotion failed: %#v", ack)
	}
	if role, _, _ := reborn.Status(); role != wire.ReplLeader {
		t.Error("re-promoted node is not leading")
	}
}

func TestStandaloneNodePassesThrough(t *testing.T) {
	node, err := New(kv.NewMemStore(), server.Config{}, Options{Self: "a:1", Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	ctx := context.Background()
	if resp := node.Handle(ctx, &wire.CreateStream{UUID: "s", Cfg: testCfg()}); !isOK(resp) {
		t.Fatalf("CreateStream -> %#v", resp)
	}
	if resp := node.Handle(ctx, &wire.InsertChunk{UUID: "s", Chunk: testSealedChunk(t, 0)}); !isOK(resp) {
		t.Fatalf("InsertChunk -> %#v", resp)
	}
	li, ok := node.Handle(ctx, &wire.LeaseInfo{}).(*wire.LeaseInfoResp)
	if !ok || li.Role != wire.ReplStandalone {
		t.Fatalf("LeaseInfo -> %#v", li)
	}
}

func TestLeaseInfoReportsGroup(t *testing.T) {
	follower := startNode(t, 200*time.Millisecond)
	leader := startNode(t, 200*time.Millisecond)
	leader.node.Lead([]string{follower.addr})
	li, ok := leader.node.Handle(context.Background(), &wire.LeaseInfo{}).(*wire.LeaseInfoResp)
	if !ok || li.Role != wire.ReplLeader || li.Epoch != 1 || len(li.Members) != 2 {
		t.Fatalf("leader LeaseInfo -> %#v", li)
	}
	if li.LeaseMS != 200 {
		t.Errorf("LeaseMS = %d, want 200", li.LeaseMS)
	}
	waitFor(t, "follower adoption", func() bool {
		role, _, _ := follower.node.Status()
		return role == wire.ReplFollower
	})
	fli, ok := follower.node.Handle(context.Background(), &wire.LeaseInfo{}).(*wire.LeaseInfoResp)
	if !ok || fli.Role != wire.ReplFollower || fli.Epoch != 1 {
		t.Fatalf("follower LeaseInfo -> %#v", fli)
	}
}
