package replica

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/kv"
	"repro/internal/server"
	"repro/internal/wire"
)

var testSpec = chunk.DigestSpec{Sum: true, Count: true}

func testCfg() wire.StreamConfig {
	specBytes, _ := testSpec.MarshalBinary()
	return wire.StreamConfig{
		Epoch: 0, Interval: 100, VectorLen: uint32(testSpec.VectorLen()),
		Fanout: 8, DigestSpec: specBytes,
	}
}

func testSealedChunk(t testing.TB, idx uint64) []byte {
	t.Helper()
	start := int64(idx) * 100
	sealed, err := chunk.SealPlain(testSpec, chunk.CompressionNone, idx, start, start+100,
		[]chunk.Point{{TS: start, Val: int64(idx + 1)}})
	if err != nil {
		t.Fatal(err)
	}
	return chunk.MarshalSealed(sealed)
}

// testNode is one replication group member served over real TCP.
type testNode struct {
	node  *Node
	store kv.Store
	addr  string
	srv   *server.Server
	stop  func()
}

// startNode serves a fresh Node on a loopback listener. lease keeps test
// heartbeats and failure detection fast.
func startNode(t testing.TB, lease time.Duration) *testNode {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	store := kv.NewMemStore()
	node, err := New(store, server.Config{}, Options{
		Self:  lis.Addr().String(),
		Lease: lease,
		Logf:  func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewServer(node, func(string, ...any) {})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ctx, lis) }()
	tn := &testNode{node: node, store: store, addr: lis.Addr().String(), srv: srv}
	tn.stop = func() {
		node.Close()
		cancel()
		srv.Close()
		<-done
	}
	t.Cleanup(tn.stop)
	return tn
}

func isOK(m wire.Message) bool { _, ok := m.(*wire.OK); return ok }

// waitFor polls until cond holds or the deadline lapses.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// statBytes marshals a node's StatRange response so replicas can be
// compared byte for byte.
func statBytes(t testing.TB, n *Node, uuid string) []byte {
	t.Helper()
	resp := n.Handle(context.Background(), &wire.StatRange{
		UUIDs: []string{uuid}, Ts: 0, Te: 1 << 40, WindowChunks: 4,
	})
	if _, isErr := resp.(*wire.Error); isErr {
		t.Fatalf("StatRange -> %#v", resp)
	}
	return wire.Marshal(resp)
}

func TestLeaderReplicatesToFollower(t *testing.T) {
	follower := startNode(t, 200*time.Millisecond)
	leader := startNode(t, 200*time.Millisecond)
	leader.node.Lead([]string{follower.addr})

	ctx := context.Background()
	if resp := leader.node.Handle(ctx, &wire.CreateStream{UUID: "s1", Cfg: testCfg()}); !isOK(resp) {
		t.Fatalf("CreateStream -> %#v", resp)
	}
	for i := uint64(0); i < 10; i++ {
		if resp := leader.node.Handle(ctx, &wire.InsertChunk{UUID: "s1", Chunk: testSealedChunk(t, i)}); !isOK(resp) {
			t.Fatalf("InsertChunk(%d) -> %#v", i, resp)
		}
		// Read-your-writes: the insert was acknowledged only after the
		// follower applied it, so the follower must see it now.
		info, ok := follower.node.Handle(ctx, &wire.StreamInfo{UUID: "s1"}).(*wire.StreamInfoResp)
		if !ok || info.Count != i+1 {
			t.Fatalf("follower count after insert %d: %#v", i, info)
		}
	}
	if got, want := statBytes(t, follower.node, "s1"), statBytes(t, leader.node, "s1"); !bytes.Equal(got, want) {
		t.Error("follower StatRange diverged from leader")
	}
	role, epoch, wm := follower.node.Status()
	if role != wire.ReplFollower || epoch != 1 || wm != 11 {
		t.Errorf("follower status: role=%d epoch=%d watermark=%d", role, epoch, wm)
	}
}

func TestFollowerRefusesClientWrites(t *testing.T) {
	follower := startNode(t, 200*time.Millisecond)
	leader := startNode(t, 200*time.Millisecond)
	leader.node.Lead([]string{follower.addr})
	ctx := context.Background()
	if resp := leader.node.Handle(ctx, &wire.CreateStream{UUID: "s1", Cfg: testCfg()}); !isOK(resp) {
		t.Fatalf("CreateStream -> %#v", resp)
	}
	waitFor(t, "follower adoption", func() bool {
		role, _, _ := follower.node.Status()
		return role == wire.ReplFollower
	})
	errMsg, ok := follower.node.Handle(ctx, &wire.InsertChunk{UUID: "s1", Chunk: testSealedChunk(t, 0)}).(*wire.Error)
	if !ok || errMsg.Code != wire.CodeNotLeader {
		t.Fatalf("follower write -> %#v", errMsg)
	}
	if errMsg.Aux != 1 {
		t.Errorf("CodeNotLeader epoch = %d, want 1", errMsg.Aux)
	}
	// Reads keep working on the follower.
	if resp := follower.node.Handle(ctx, &wire.StreamInfo{UUID: "s1"}); resp == nil {
		t.Fatal("follower read failed")
	}
}

func TestPromoteFailoverAndDeposedLeader(t *testing.T) {
	follower := startNode(t, 100*time.Millisecond)
	leader := startNode(t, 100*time.Millisecond)
	leader.node.Lead([]string{follower.addr})

	ctx := context.Background()
	if resp := leader.node.Handle(ctx, &wire.CreateStream{UUID: "s1", Cfg: testCfg()}); !isOK(resp) {
		t.Fatalf("CreateStream -> %#v", resp)
	}
	for i := uint64(0); i < 5; i++ {
		if resp := leader.node.Handle(ctx, &wire.InsertChunk{UUID: "s1", Chunk: testSealedChunk(t, i)}); !isOK(resp) {
			t.Fatalf("InsertChunk(%d) -> %#v", i, resp)
		}
	}
	before := statBytes(t, leader.node, "s1")

	// Failover: promote the follower at a higher epoch, naming the old
	// leader as a member so it gets adopted back.
	ack, ok := follower.node.Handle(ctx, &wire.Promote{
		Epoch: 2, Leader: follower.addr, Members: []string{follower.addr, leader.addr},
	}).(*wire.ReplAck)
	if !ok || ack.Epoch != 2 {
		t.Fatalf("Promote -> %#v", ack)
	}
	role, epoch, _ := follower.node.Status()
	if role != wire.ReplLeader || epoch != 2 {
		t.Fatalf("promoted follower: role=%d epoch=%d", role, epoch)
	}
	// Every acknowledged chunk survives, byte for byte.
	if got := statBytes(t, follower.node, "s1"); !bytes.Equal(got, before) {
		t.Error("promoted follower lost acknowledged data")
	}

	// The old leader learns of the higher epoch from its own shipping (or
	// from the new leader's adoption) and stops accepting writes.
	waitFor(t, "old leader deposed", func() bool {
		role, _, _ := leader.node.Status()
		return role != wire.ReplLeader
	})
	resp := leader.node.Handle(ctx, &wire.InsertChunk{UUID: "s1", Chunk: testSealedChunk(t, 5)})
	if errMsg, isErr := resp.(*wire.Error); !isErr || errMsg.Code != wire.CodeNotLeader {
		t.Fatalf("deposed leader accepted a write: %#v", resp)
	}

	// The new leader resyncs the ex-leader (watermark reset forces a
	// snapshot) and then writes replicate to it as a follower.
	waitFor(t, "ex-leader resynced", func() bool {
		role, epoch, wm := leader.node.Status()
		return role == wire.ReplFollower && epoch == 2 && wm >= 6
	})
	if resp := follower.node.Handle(ctx, &wire.InsertChunk{UUID: "s1", Chunk: testSealedChunk(t, 5)}); !isOK(resp) {
		t.Fatalf("write on new leader -> %#v", resp)
	}
	if got, want := statBytes(t, leader.node, "s1"), statBytes(t, follower.node, "s1"); !bytes.Equal(got, want) {
		t.Error("ex-leader diverged after rejoining as follower")
	}
}

func TestSnapshotResyncFromTrimmedLog(t *testing.T) {
	follower := startNode(t, 100*time.Millisecond)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	store := kv.NewMemStore()
	// A one-byte log budget trims every acknowledged record away, so a
	// late-joining follower can never catch up from the log.
	node, err := New(store, server.Config{}, Options{
		Self: lis.Addr().String(), Lease: 100 * time.Millisecond,
		LogBytes: 1, Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	node.Lead(nil) // no followers yet

	ctx := context.Background()
	if resp := node.Handle(ctx, &wire.CreateStream{UUID: "s1", Cfg: testCfg()}); !isOK(resp) {
		t.Fatalf("CreateStream -> %#v", resp)
	}
	for i := uint64(0); i < 8; i++ {
		if resp := node.Handle(ctx, &wire.InsertChunk{UUID: "s1", Chunk: testSealedChunk(t, i)}); !isOK(resp) {
			t.Fatalf("InsertChunk(%d) -> %#v", i, resp)
		}
	}
	// Re-promote with the follower in the group: its watermark 0 is far
	// behind the trimmed log, forcing a full snapshot resync.
	if resp := node.Handle(ctx, &wire.Promote{
		Epoch: 2, Leader: lis.Addr().String(),
		Members: []string{lis.Addr().String(), follower.addr},
	}); resp == nil {
		t.Fatal("Promote failed")
	}
	waitFor(t, "snapshot resync", func() bool {
		role, epoch, wm := follower.node.Status()
		return role == wire.ReplFollower && epoch == 2 && wm >= 9
	})
	if got, want := statBytes(t, follower.node, "s1"), statBytes(t, node, "s1"); !bytes.Equal(got, want) {
		t.Error("resynced follower diverged from leader")
	}
	// And the pipeline keeps flowing after the resync.
	if resp := node.Handle(ctx, &wire.InsertChunk{UUID: "s1", Chunk: testSealedChunk(t, 8)}); !isOK(resp) {
		t.Fatalf("post-resync insert -> %#v", resp)
	}
	info, ok := follower.node.Handle(ctx, &wire.StreamInfo{UUID: "s1"}).(*wire.StreamInfoResp)
	if !ok || info.Count != 9 {
		t.Errorf("follower count after post-resync insert: %#v", info)
	}
}

func TestRestartedLeaderComesBackDeposed(t *testing.T) {
	store := kv.NewMemStore()
	node, err := New(store, server.Config{}, Options{Self: "a:1", Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	node.Lead(nil)
	node.Close()

	reborn, err := New(store, server.Config{}, Options{Self: "a:1", Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()
	role, epoch, _ := reborn.Status()
	if role != wire.ReplDeposed || epoch != 1 {
		t.Fatalf("restarted leader: role=%d epoch=%d, want deposed at epoch 1", role, epoch)
	}
	// It refuses writes until re-promoted or adopted...
	resp := reborn.Handle(context.Background(), &wire.CreateStream{UUID: "x", Cfg: testCfg()})
	if errMsg, isErr := resp.(*wire.Error); !isErr || errMsg.Code != wire.CodeNotLeader {
		t.Fatalf("deposed node accepted a write: %#v", resp)
	}
	// ...and Lead is a no-op over persisted state (no self-promotion).
	reborn.Lead(nil)
	if role, _, _ := reborn.Status(); role != wire.ReplDeposed {
		t.Error("restarted ex-leader self-promoted")
	}
	// An explicit re-promotion at a higher epoch restores it.
	if ack, ok := reborn.Handle(context.Background(), &wire.Promote{Epoch: 2, Leader: "a:1"}).(*wire.ReplAck); !ok || ack.Epoch != 2 {
		t.Fatalf("re-promotion failed: %#v", ack)
	}
	if role, _, _ := reborn.Status(); role != wire.ReplLeader {
		t.Error("re-promoted node is not leading")
	}
}

func TestStandaloneNodePassesThrough(t *testing.T) {
	node, err := New(kv.NewMemStore(), server.Config{}, Options{Self: "a:1", Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	ctx := context.Background()
	if resp := node.Handle(ctx, &wire.CreateStream{UUID: "s", Cfg: testCfg()}); !isOK(resp) {
		t.Fatalf("CreateStream -> %#v", resp)
	}
	if resp := node.Handle(ctx, &wire.InsertChunk{UUID: "s", Chunk: testSealedChunk(t, 0)}); !isOK(resp) {
		t.Fatalf("InsertChunk -> %#v", resp)
	}
	li, ok := node.Handle(ctx, &wire.LeaseInfo{}).(*wire.LeaseInfoResp)
	if !ok || li.Role != wire.ReplStandalone {
		t.Fatalf("LeaseInfo -> %#v", li)
	}
}

func TestLeaseInfoReportsGroup(t *testing.T) {
	follower := startNode(t, 200*time.Millisecond)
	leader := startNode(t, 200*time.Millisecond)
	leader.node.Lead([]string{follower.addr})
	li, ok := leader.node.Handle(context.Background(), &wire.LeaseInfo{}).(*wire.LeaseInfoResp)
	if !ok || li.Role != wire.ReplLeader || li.Epoch != 1 || len(li.Members) != 2 {
		t.Fatalf("leader LeaseInfo -> %#v", li)
	}
	if li.LeaseMS != 200 {
		t.Errorf("LeaseMS = %d, want 200", li.LeaseMS)
	}
	waitFor(t, "follower adoption", func() bool {
		role, _, _ := follower.node.Status()
		return role == wire.ReplFollower
	})
	fli, ok := follower.node.Handle(context.Background(), &wire.LeaseInfo{}).(*wire.LeaseInfoResp)
	if !ok || fli.Role != wire.ReplFollower || fli.Epoch != 1 {
		t.Fatalf("follower LeaseInfo -> %#v", fli)
	}
}
