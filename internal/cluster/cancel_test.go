package cluster

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/client"
	"repro/internal/kv"
	"repro/internal/server"
	"repro/internal/wire"
)

// slowStatHandler wraps an engine and stalls statistical sub-requests until
// the request context is canceled, recording that the cancellation was
// observed. Everything else passes through, so streams can be created and
// loaded normally.
type slowStatHandler struct {
	inner    server.Handler
	sawStat  atomic.Int64 // stat sub-requests received
	canceled atomic.Int64 // stat sub-requests aborted by ctx
}

func (s *slowStatHandler) Handle(ctx context.Context, req wire.Message) wire.Message {
	switch req.(type) {
	case *wire.StatRange, *wire.StreamInfo:
		s.sawStat.Add(1)
		select {
		case <-ctx.Done():
			s.canceled.Add(1)
			return &wire.Error{Code: wire.CodeCanceled, Msg: ctx.Err().Error()}
		case <-time.After(30 * time.Second):
			return &wire.Error{Code: wire.CodeInternal, Msg: "slow shard was never canceled"}
		}
	default:
		return s.inner.Handle(ctx, req)
	}
}

// newSlowCluster builds a 4-shard router whose shards stall statistical
// requests, plus two stream UUIDs guaranteed to live on different shards
// with three chunks each.
func newSlowCluster(t *testing.T) (*Router, []*slowStatHandler, []string) {
	t.Helper()
	spec := chunk.DigestSpec{Sum: true, Count: true}
	specBytes, _ := spec.MarshalBinary()
	cfg := wire.StreamConfig{
		Epoch: 0, Interval: 100, VectorLen: uint32(spec.VectorLen()),
		Fanout: 8, DigestSpec: specBytes,
	}
	var shards []Shard
	var slows []*slowStatHandler
	for i := 0; i < 4; i++ {
		engine, err := server.New(kv.NewMemStore(), server.Config{})
		if err != nil {
			t.Fatal(err)
		}
		slow := &slowStatHandler{inner: engine}
		slows = append(slows, slow)
		shards = append(shards, Shard{Name: string(rune('a' + i)), Handler: slow})
	}
	router, err := NewRouter(shards, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Find two streams on different shards and load three chunks into each.
	var uuids []string
	seen := map[string]bool{}
	for i := 0; len(uuids) < 2 && i < 256; i++ {
		uuid := "cancel-" + string(rune('A'+i))
		owner := router.Owner(uuid)
		if seen[owner] {
			continue
		}
		seen[owner] = true
		uuids = append(uuids, uuid)
		if resp := router.Handle(context.Background(), &wire.CreateStream{UUID: uuid, Cfg: cfg}); !isOK(resp) {
			t.Fatalf("create %s: %#v", uuid, resp)
		}
		for c := uint64(0); c < 3; c++ {
			start := int64(c) * 100
			sealed, err := chunk.SealPlain(spec, chunk.CompressionNone, c, start, start+100,
				[]chunk.Point{{TS: start, Val: int64(c + 1)}})
			if err != nil {
				t.Fatal(err)
			}
			if resp := router.Handle(context.Background(), &wire.InsertChunk{UUID: uuid, Chunk: chunk.MarshalSealed(sealed)}); !isOK(resp) {
				t.Fatalf("insert %s/%d: %#v", uuid, c, resp)
			}
		}
	}
	if len(uuids) < 2 {
		t.Fatal("could not place streams on two shards")
	}
	return router, slows, uuids
}

// TestCanceledContextAbortsCrossShardStatRange: a cross-shard StatRange
// fan-out against stalled shards must return promptly once the caller's
// context fires, with wire.CodeCanceled, and the shards themselves must
// observe the cancellation (no abandoned goroutines grinding on).
func TestCanceledContextAbortsCrossShardStatRange(t *testing.T) {
	router, slows, uuids := newSlowCluster(t)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	resp := router.Handle(ctx, &wire.StatRange{UUIDs: uuids, Ts: 0, Te: 300})
	elapsed := time.Since(start)

	e, ok := resp.(*wire.Error)
	if !ok || e.Code != wire.CodeCanceled {
		t.Fatalf("expected CodeCanceled, got %#v", resp)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; not prompt", elapsed)
	}
	if slows[0].sawStat.Load()+slows[1].sawStat.Load()+slows[2].sawStat.Load()+slows[3].sawStat.Load() == 0 {
		t.Fatal("no shard ever saw the fan-out")
	}
	// The stalled sub-requests received the same ctx and must unwind too.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var canceled, saw int64
		for _, s := range slows {
			canceled += s.canceled.Load()
			saw += s.sawStat.Load()
		}
		if canceled == saw {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shards saw %d stat requests but only %d unwound", saw, canceled)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCanceledContextAbortsListStreams covers the other fan-out path.
func TestCanceledContextAbortsListStreams(t *testing.T) {
	engine, err := server.New(kv.NewMemStore(), server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	stall := &stallAllHandler{}
	router, err := NewRouter([]Shard{
		{Name: "ok", Handler: engine},
		{Name: "stuck", Handler: stall},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	resp := router.Handle(ctx, &wire.ListStreams{})
	if e, ok := resp.(*wire.Error); !ok || e.Code != wire.CodeCanceled {
		t.Fatalf("expected CodeCanceled, got %#v", resp)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("not prompt")
	}
}

// stallAllHandler blocks every request until its context is canceled.
type stallAllHandler struct{}

func (*stallAllHandler) Handle(ctx context.Context, _ wire.Message) wire.Message {
	<-ctx.Done()
	return &wire.Error{Code: wire.CodeCanceled, Msg: ctx.Err().Error()}
}

// TestDeadlinePropagatesOverTCP proves the acceptance path end to end: a
// client deadline crosses the wire in the request envelope, reconstitutes
// as a server-side context, aborts a stalled cross-shard fan-out behind the
// TCP front end, and the client round trip returns promptly.
func TestDeadlinePropagatesOverTCP(t *testing.T) {
	router, slows, uuids := newSlowCluster(t)

	srv := server.NewServer(router, func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveCtx, stopServe := context.WithCancel(context.Background())
	defer stopServe()
	go srv.Serve(serveCtx, lis)
	defer srv.Close()

	tr, err := client.DialTCP(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	resp, rtErr := tr.RoundTrip(ctx, &wire.StatRange{UUIDs: uuids, Ts: 0, Te: 300})
	elapsed := time.Since(start)
	// Two valid outcomes, racing: the server's graceful CodeCanceled
	// response beats the client's socket deadline, or the client gives up
	// first with a context error. Either way the deadline crossed the wire.
	if rtErr == nil {
		e, ok := resp.(*wire.Error)
		if !ok || e.Code != wire.CodeCanceled {
			t.Fatalf("round trip against stalled shards -> %#v", resp)
		}
	} else if !errors.Is(rtErr, context.DeadlineExceeded) {
		t.Fatalf("expected deadline error, got %v", rtErr)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("client unblocked after %v; deadline not honored", elapsed)
	}
	// Server-side: the envelope deadline must have reached the shards.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var canceled int64
		for _, s := range slows {
			canceled += s.canceled.Load()
		}
		if canceled > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no shard observed the wire-propagated deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The transport redials transparently: the next call works.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if _, err := tr.RoundTrip(ctx2, &wire.ListStreams{}); err != nil {
		t.Fatalf("transport did not recover after abandoned round trip: %v", err)
	}
}
