package cluster

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/sub"
	"repro/internal/wire"
)

// recvN receives n events from the handle or fails.
func recvN(t *testing.T, h sub.Handle, n int) []*wire.SubEvent {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	out := make([]*wire.SubEvent, 0, n)
	for len(out) < n {
		ev, err := h.Recv(ctx)
		if err != nil {
			t.Fatalf("Recv after %d events: %v", len(out), err)
		}
		out = append(out, ev)
	}
	return out
}

// ingestFrom seals n chunks starting at index from (continuing an earlier
// ingest) through the router.
func (tc *testCluster) ingestFrom(t *testing.T, uuid string, from, n uint64) {
	t.Helper()
	for i := from; i < from+n; i++ {
		start := int64(i) * 100
		sealed, err := chunk.SealPlain(tc.spec, chunk.CompressionNone, i, start, start+100,
			[]chunk.Point{{TS: start, Val: int64(i + 1)}})
		if err != nil {
			t.Fatal(err)
		}
		if resp := tc.router.Handle(context.Background(), &wire.InsertChunk{UUID: uuid, Chunk: chunk.MarshalSealed(sealed)}); !isOK(resp) {
			t.Fatalf("InsertChunk(%q, %d) -> %#v", uuid, i, resp)
		}
	}
}

// crossShardPair finds two stream UUIDs owned by different shards under
// the router's current ring.
func crossShardPair(t *testing.T, r *Router) (a, b string) {
	t.Helper()
	for i := 0; i < 256; i++ {
		u := fmt.Sprintf("s-%d", i)
		if a == "" {
			a = u
			continue
		}
		if r.Owner(u) != r.Owner(a) {
			return a, u
		}
	}
	t.Fatal("no cross-shard pair in 256 candidates")
	return
}

// baselineWindows polls the full aggregate over [0, te) at wc and returns
// the window vectors.
func (tc *testCluster) baselineWindows(t *testing.T, uuids []string, te int64, wc uint64) [][]uint64 {
	t.Helper()
	resp := tc.router.Handle(context.Background(), &wire.StatRange{UUIDs: uuids, Ts: 0, Te: te, WindowChunks: wc})
	sr, ok := resp.(*wire.StatRangeResp)
	if !ok {
		t.Fatalf("StatRange -> %#v", resp)
	}
	return sr.Windows
}

// A cross-shard subscription must deliver exactly the windows a polling
// cross-shard aggregate computes: per-shard partials combined by the
// router, byte-identical to the one-shot query, whether the windows are
// backfilled or pushed live.
func TestClusterSubscribeMatchesPolling(t *testing.T) {
	tc := newTestCluster(t, 3)
	a, b := crossShardPair(t, tc.router)
	tc.createStream(t, a)
	tc.createStream(t, b)
	tc.ingest(t, a, 6)
	tc.ingest(t, b, 6)

	h, err := tc.router.Subscribe(context.Background(), &wire.Subscribe{
		UUIDs: []string{a, b}, WindowChunks: 3, FromSeq: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if resp := h.Resp(); resp.FirstSeq != 0 || resp.StreamCount != 2 || resp.WindowChunks != 3 {
		t.Fatalf("handshake %+v", resp)
	}

	backfill := recvN(t, h, 2) // windows 0,1 predate the subscription
	tc.ingestFrom(t, a, 6, 6)
	tc.ingestFrom(t, b, 6, 6)
	live := recvN(t, h, 2) // windows 2,3 arrive live

	want := tc.baselineWindows(t, []string{a, b}, 12*100, 3)
	all := append(backfill, live...)
	for i, ev := range all {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d (gap or duplicate)", i, ev.Seq)
		}
		if !reflect.DeepEqual(ev.Window, want[i]) {
			t.Fatalf("window %d differs from polling baseline:\n sub  %v\n poll %v", i, ev.Window, want[i])
		}
	}
}

// FromLatest on a cross-shard plan resolves against the slowest member
// globally, not each shard's local frontier.
func TestClusterSubscribeFromLatest(t *testing.T) {
	tc := newTestCluster(t, 3)
	a, b := crossShardPair(t, tc.router)
	tc.createStream(t, a)
	tc.createStream(t, b)
	tc.ingest(t, a, 9) // local frontier 3 at wc=3
	tc.ingest(t, b, 4) // local frontier 1 — the global minimum

	h, err := tc.router.Subscribe(context.Background(), &wire.Subscribe{
		UUIDs: []string{a, b}, WindowChunks: 3, FromLatest: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if got := h.Resp().FirstSeq; got != 1 {
		t.Fatalf("FirstSeq %d, want 1 (global min 4 chunks / wc 3)", got)
	}
	tc.ingestFrom(t, b, 4, 2) // complete window 1 on the laggard
	ev := recvN(t, h, 1)[0]
	if ev.Seq != 1 {
		t.Fatalf("first event seq %d, want 1", ev.Seq)
	}
	want := tc.baselineWindows(t, []string{a, b}, 6*100, 3)
	if !reflect.DeepEqual(ev.Window, want[1]) {
		t.Fatalf("window 1: sub %v poll %v", ev.Window, want[1])
	}
}

// Element projection distributes over the cross-shard combine.
func TestClusterSubscribeProjection(t *testing.T) {
	tc := newTestCluster(t, 3)
	a, b := crossShardPair(t, tc.router)
	tc.createStream(t, a)
	tc.createStream(t, b)
	tc.ingest(t, a, 3)
	tc.ingest(t, b, 3)
	h, err := tc.router.Subscribe(context.Background(), &wire.Subscribe{
		UUIDs: []string{a, b}, WindowChunks: 3, Elems: []uint32{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ev := recvN(t, h, 1)[0]
	resp := tc.router.Handle(context.Background(), &wire.AggRange{
		UUIDs: []string{a, b}, Ts: 0, Te: 300, WindowChunks: 3, Elems: []uint32{1}})
	agg, ok := resp.(*wire.AggRangeResp)
	if !ok {
		t.Fatalf("AggRange -> %#v", resp)
	}
	if !reflect.DeepEqual(ev.Window, agg.Windows[0]) {
		t.Fatalf("projected window: sub %v agg %v", ev.Window, agg.Windows[0])
	}
}

// A live reshard moves watched streams to a new shard mid-subscription;
// the router heals by rebuilding the fan-out on the new owners, and the
// subscriber sees an unbroken, duplicate-free window sequence whose values
// still match the polling baseline.
func TestClusterSubscribeHealsAcrossReshard(t *testing.T) {
	tc := newTestCluster(t, 3)
	// Pick the watched pair deterministically against both rings: stream a
	// WILL move to the new shard when the membership grows (consistent
	// hashing only reassigns keys to the newcomer), stream b stays put on
	// a different shard — so one leg of the subscription is guaranteed to
	// die mid-flight and heal.
	oldRing, err := NewRing(tc.names, 0)
	if err != nil {
		t.Fatal(err)
	}
	newRing, err := NewRing(append(append([]string(nil), tc.names...), "shard-3"), 0)
	if err != nil {
		t.Fatal(err)
	}
	var a, b string
	for i := 0; i < 1024 && a == ""; i++ {
		if u := fmt.Sprintf("s-%d", i); newRing.Owner(u) == "shard-3" {
			a = u
		}
	}
	for i := 0; i < 1024 && b == ""; i++ {
		u := fmt.Sprintf("s-%d", i)
		if u != a && newRing.Owner(u) != "shard-3" && oldRing.Owner(u) != oldRing.Owner(a) {
			b = u
		}
	}
	if a == "" || b == "" {
		t.Fatalf("no moving/staying pair in 1024 candidates (a=%q b=%q)", a, b)
	}
	tc.createStream(t, a)
	tc.createStream(t, b)
	tc.ingest(t, a, 6)
	tc.ingest(t, b, 6)

	h, err := tc.router.Subscribe(context.Background(), &wire.Subscribe{
		UUIDs: []string{a, b}, WindowChunks: 3, FromSeq: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	events := recvN(t, h, 2) // windows 0,1 before the reshard

	shards, _ := tc.growShards(t, "shard-3")
	if _, err := tc.router.Rebalance(context.Background(), shards); err != nil {
		t.Fatal(err)
	}
	if owner := tc.router.Owner(a); owner != "shard-3" {
		t.Fatalf("stream %q owned by %s after grow, expected shard-3", a, owner)
	}

	tc.ingestFrom(t, a, 6, 6)
	tc.ingestFrom(t, b, 6, 6)
	events = append(events, recvN(t, h, 2)...) // windows 2,3 after the reshard

	want := tc.baselineWindows(t, []string{a, b}, 12*100, 3)
	for i, ev := range events {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d (gap or duplicate across reshard)", i, ev.Seq)
		}
		if !reflect.DeepEqual(ev.Window, want[i]) {
			t.Fatalf("window %d differs from baseline after reshard:\n sub  %v\n poll %v",
				i, ev.Window, want[i])
		}
	}
}

// Unsubscribing is idempotent, also when racing a parked Recv.
func TestClusterSubscribeCloseIdempotent(t *testing.T) {
	tc := newTestCluster(t, 3)
	a, b := crossShardPair(t, tc.router)
	tc.createStream(t, a)
	tc.createStream(t, b)
	tc.ingest(t, a, 3)
	tc.ingest(t, b, 3)
	h, err := tc.router.Subscribe(context.Background(), &wire.Subscribe{
		UUIDs: []string{a, b}, WindowChunks: 3, FromLatest: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.Recv(ctx) // parked: frontier already delivered
	}()
	for i := 0; i < 3; i++ {
		if err := h.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i, err)
		}
	}
	cancel()
	<-done
}

// Router-level subscription plans are validated before any shard is
// contacted.
func TestClusterSubscribeValidation(t *testing.T) {
	tc := newTestCluster(t, 2)
	ctx := context.Background()
	if _, err := tc.router.Subscribe(ctx, &wire.Subscribe{UUIDs: []string{"x"}}); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := tc.router.Subscribe(ctx, &wire.Subscribe{WindowChunks: 3}); err == nil {
		t.Error("empty stream set accepted")
	}
	if _, err := tc.router.Subscribe(ctx, &wire.Subscribe{UUIDs: []string{"ghost"}, WindowChunks: 3}); err == nil {
		t.Error("unknown stream accepted")
	}
}
