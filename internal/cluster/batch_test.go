package cluster

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/chunk"
	"repro/internal/wire"
)

// TestBatchSplitsAcrossShards: one Batch envelope carrying interleaved
// requests for streams on different shards (plus a fan-out sub-request)
// must come back as one BatchResp with the responses in request order,
// with per-stream chunk ordering preserved inside each shard sub-batch.
func TestBatchSplitsAcrossShards(t *testing.T) {
	tc := newTestCluster(t, 4)
	const streams = 6
	var uuids []string
	owners := map[string]bool{}
	for i := 0; i < streams; i++ {
		uuid := fmt.Sprintf("batch-%d", i)
		uuids = append(uuids, uuid)
		owners[tc.router.Owner(uuid)] = true
		tc.createStream(t, uuid)
	}
	if len(owners) < 2 {
		t.Fatal("streams landed on one shard; batch split not exercised")
	}

	// Interleave 3 in-order chunks per stream across the batch, followed by
	// stream info for each (infos share the stream's routing key, so they
	// are ordered after its inserts within the shard sub-batch).
	var reqs []wire.Message
	for c := uint64(0); c < 3; c++ {
		for _, uuid := range uuids {
			start := int64(c) * 100
			sealed, err := chunk.SealPlain(tc.spec, chunk.CompressionNone, c, start, start+100,
				[]chunk.Point{{TS: start, Val: int64(c + 1)}})
			if err != nil {
				t.Fatal(err)
			}
			reqs = append(reqs, &wire.InsertChunk{UUID: uuid, Chunk: chunk.MarshalSealed(sealed)})
		}
	}
	for _, uuid := range uuids {
		reqs = append(reqs, &wire.StreamInfo{UUID: uuid})
	}

	resp := tc.router.Handle(context.Background(), &wire.Batch{Reqs: reqs})
	br, ok := resp.(*wire.BatchResp)
	if !ok {
		t.Fatalf("batch -> %#v", resp)
	}
	if len(br.Resps) != len(reqs) {
		t.Fatalf("got %d responses for %d requests", len(br.Resps), len(reqs))
	}
	for i := 0; i < 3*streams; i++ {
		if !isOK(br.Resps[i]) {
			t.Fatalf("insert %d -> %#v", i, br.Resps[i])
		}
	}
	for i := 0; i < streams; i++ {
		info, ok := br.Resps[3*streams+i].(*wire.StreamInfoResp)
		if !ok || info.Count != 3 {
			t.Fatalf("info %d -> %#v", i, br.Resps[3*streams+i])
		}
	}

	// A cross-shard StatRange riding in a later batch sees all inserts
	// (within one batch it would race them: requests without a routing
	// key run concurrently with the shard sub-batches).
	resp = tc.router.Handle(context.Background(), &wire.Batch{Reqs: []wire.Message{
		&wire.StatRange{UUIDs: uuids, Ts: 0, Te: 300},
	}})
	br, ok = resp.(*wire.BatchResp)
	if !ok || len(br.Resps) != 1 {
		t.Fatalf("stat batch -> %#v", resp)
	}
	sr, ok := br.Resps[0].(*wire.StatRangeResp)
	if !ok {
		t.Fatalf("cross-shard stat in batch -> %#v", br.Resps[0])
	}
	// Sum over 6 streams x chunks 1+2+3 = 36.
	vec := sr.Windows[0]
	if vec[0] != uint64(streams*6) {
		t.Errorf("batched cross-shard sum = %d, want %d", vec[0], streams*6)
	}

	// Per-element failures stay per-element: an insert for a missing
	// stream errors while the rest of the batch succeeds.
	sealed, err := chunk.SealPlain(tc.spec, chunk.CompressionNone, 3, 300, 400,
		[]chunk.Point{{TS: 300, Val: 4}})
	if err != nil {
		t.Fatal(err)
	}
	mixed := &wire.Batch{Reqs: []wire.Message{
		&wire.InsertChunk{UUID: "nope", Chunk: chunk.MarshalSealed(sealed)},
		&wire.InsertChunk{UUID: uuids[0], Chunk: chunk.MarshalSealed(sealed)},
	}}
	br2, ok := tc.router.Handle(context.Background(), mixed).(*wire.BatchResp)
	if !ok || len(br2.Resps) != 2 {
		t.Fatalf("mixed batch -> %#v", tc.router.Handle(context.Background(), mixed))
	}
	if e, bad := br2.Resps[0].(*wire.Error); !bad || e.Code != wire.CodeNotFound {
		t.Errorf("missing-stream insert -> %#v", br2.Resps[0])
	}
	if !isOK(br2.Resps[1]) {
		t.Errorf("valid insert in mixed batch -> %#v", br2.Resps[1])
	}
}
