package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/chunk"
	"repro/internal/kv"
	"repro/internal/server"
	"repro/internal/wire"
)

// testCluster is a router over n in-process engines, each with its own
// store.
type testCluster struct {
	router  *Router
	engines []*server.Engine
	names   []string
	spec    chunk.DigestSpec
	cfg     wire.StreamConfig
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{spec: chunk.DigestSpec{Sum: true, Count: true}}
	specBytes, _ := tc.spec.MarshalBinary()
	tc.cfg = wire.StreamConfig{
		Epoch: 0, Interval: 100, VectorLen: uint32(tc.spec.VectorLen()),
		Fanout: 8, DigestSpec: specBytes,
	}
	var shards []Shard
	for i := 0; i < n; i++ {
		engine, err := server.New(kv.NewMemStore(), server.Config{})
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("shard-%d", i)
		tc.engines = append(tc.engines, engine)
		tc.names = append(tc.names, name)
		shards = append(shards, Shard{Name: name, Handler: engine})
	}
	router, err := NewRouter(shards, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tc.router = router
	return tc
}

func (tc *testCluster) engineFor(uuid string) *server.Engine {
	owner := tc.router.Owner(uuid)
	for i, name := range tc.names {
		if name == owner {
			return tc.engines[i]
		}
	}
	return nil
}

// createStream registers a stream through the router and fails the test on
// error.
func (tc *testCluster) createStream(t *testing.T, uuid string) {
	t.Helper()
	if resp := tc.router.Handle(context.Background(), &wire.CreateStream{UUID: uuid, Cfg: tc.cfg}); !isOK(resp) {
		t.Fatalf("CreateStream(%q) -> %#v", uuid, resp)
	}
}

// ingest seals n plaintext chunks (one point each, value i+1) through the
// router.
func (tc *testCluster) ingest(t *testing.T, uuid string, n uint64) {
	t.Helper()
	for i := uint64(0); i < n; i++ {
		start := int64(i) * 100
		sealed, err := chunk.SealPlain(tc.spec, chunk.CompressionNone, i, start, start+100,
			[]chunk.Point{{TS: start, Val: int64(i + 1)}})
		if err != nil {
			t.Fatal(err)
		}
		if resp := tc.router.Handle(context.Background(), &wire.InsertChunk{UUID: uuid, Chunk: chunk.MarshalSealed(sealed)}); !isOK(resp) {
			t.Fatalf("InsertChunk(%q, %d) -> %#v", uuid, i, resp)
		}
	}
}

func TestRouterPlacementAndSingleStreamOps(t *testing.T) {
	tc := newTestCluster(t, 4)
	const streams = 16
	var uuids []string
	for i := 0; i < streams; i++ {
		uuid := fmt.Sprintf("stream-%d", i)
		uuids = append(uuids, uuid)
		tc.createStream(t, uuid)
		tc.ingest(t, uuid, 3)
	}
	// Every stream lives on exactly the engine the ring names.
	total := 0
	for i, engine := range tc.engines {
		for _, uuid := range engine.ListStreams() {
			if got := tc.router.Owner(uuid); got != tc.names[i] {
				t.Errorf("stream %q on engine %s but owned by %s", uuid, tc.names[i], got)
			}
			total++
		}
	}
	if total != streams {
		t.Errorf("placed %d streams, want %d", total, streams)
	}
	// Single-stream operations route transparently.
	for _, uuid := range uuids {
		if info, ok := tc.router.Handle(context.Background(), &wire.StreamInfo{UUID: uuid}).(*wire.StreamInfoResp); !ok || info.Count != 3 {
			t.Fatalf("StreamInfo(%q) wrong", uuid)
		}
		sr, ok := tc.router.Handle(context.Background(), &wire.StatRange{UUIDs: []string{uuid}, Ts: 0, Te: 300}).(*wire.StatRangeResp)
		if !ok || len(sr.Windows) != 1 {
			t.Fatalf("StatRange(%q) wrong", uuid)
		}
		if sr.Windows[0][0] != 1+2+3 {
			t.Errorf("StatRange(%q) sum = %d, want 6", uuid, sr.Windows[0][0])
		}
		if gr, ok := tc.router.Handle(context.Background(), &wire.GetRange{UUID: uuid, Ts: 0, Te: 300}).(*wire.GetRangeResp); !ok || len(gr.Chunks) != 3 {
			t.Fatalf("GetRange(%q) wrong", uuid)
		}
	}
	// Deletion removes the stream from its owner shard only.
	victim := uuids[0]
	if resp := tc.router.Handle(context.Background(), &wire.DeleteStream{UUID: victim}); !isOK(resp) {
		t.Fatalf("DeleteStream -> %#v", resp)
	}
	if e, ok := tc.router.Handle(context.Background(), &wire.StreamInfo{UUID: victim}).(*wire.Error); !ok || e.Code != wire.CodeNotFound {
		t.Error("deleted stream still resolves")
	}
	if lr, ok := tc.router.Handle(context.Background(), &wire.ListStreams{}).(*wire.ListStreamsResp); !ok || len(lr.UUIDs) != streams-1 {
		t.Errorf("listing after delete wrong: %#v", tc.router.Handle(context.Background(), &wire.ListStreams{}))
	}
}

func TestRouterListStreamsMergesSorted(t *testing.T) {
	tc := newTestCluster(t, 4)
	want := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	// Create in reverse to prove the merge sorts.
	for i := len(want) - 1; i >= 0; i-- {
		tc.createStream(t, want[i])
	}
	lr, ok := tc.router.Handle(context.Background(), &wire.ListStreams{}).(*wire.ListStreamsResp)
	if !ok {
		t.Fatal("listing failed")
	}
	if len(lr.UUIDs) != len(want) {
		t.Fatalf("got %d streams, want %d", len(lr.UUIDs), len(want))
	}
	for i, uuid := range want {
		if lr.UUIDs[i] != uuid {
			t.Fatalf("listing[%d] = %q, want %q (merge not sorted?)", i, lr.UUIDs[i], uuid)
		}
	}
}

func TestRouterStats(t *testing.T) {
	tc := newTestCluster(t, 4)
	tc.createStream(t, "s")
	tc.router.Handle(context.Background(), &wire.StreamInfo{UUID: "s"})
	tc.router.Handle(context.Background(), &wire.StreamInfo{UUID: "missing"}) // error response
	tc.router.Handle(context.Background(), &wire.ListStreams{})               // fan-out
	var requests, fanouts, errors uint64
	for _, s := range tc.router.Stats() {
		requests += s.Requests
		fanouts += s.Fanouts
		errors += s.Errors
	}
	if requests != 3 { // create + 2 infos
		t.Errorf("requests = %d, want 3", requests)
	}
	if fanouts != 4 { // listing hits all 4 shards
		t.Errorf("fanouts = %d, want 4", fanouts)
	}
	if errors != 1 {
		t.Errorf("errors = %d, want 1", errors)
	}
}

func TestRouterCrossShardStatRange(t *testing.T) {
	tc := newTestCluster(t, 4)
	// Find streams on at least two different shards.
	var uuids []string
	owners := make(map[string]bool)
	for i := 0; len(uuids) < 6; i++ {
		uuid := fmt.Sprintf("cross-%d", i)
		uuids = append(uuids, uuid)
		owners[tc.router.Owner(uuid)] = true
	}
	if len(owners) < 2 {
		t.Fatal("test streams all landed on one shard; pick different UUIDs")
	}
	for _, uuid := range uuids {
		tc.createStream(t, uuid)
		tc.ingest(t, uuid, 10)
	}
	// Cross-shard aggregate = homomorphic sum over all streams.
	sr, ok := tc.router.Handle(context.Background(), &wire.StatRange{UUIDs: uuids, Ts: 0, Te: 1000}).(*wire.StatRangeResp)
	if !ok {
		t.Fatalf("cross-shard StatRange failed: %#v", tc.router.Handle(context.Background(), &wire.StatRange{UUIDs: uuids, Ts: 0, Te: 1000}))
	}
	perStream := uint64(1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9 + 10)
	if sr.FromChunk != 0 || sr.ToChunk != 10 || len(sr.Windows) != 1 {
		t.Fatalf("window shape wrong: %+v", sr)
	}
	if sr.Windows[0][0] != perStream*uint64(len(uuids)) {
		t.Errorf("sum = %d, want %d", sr.Windows[0][0], perStream*uint64(len(uuids)))
	}
	if sr.Windows[0][1] != uint64(10*len(uuids)) { // count element
		t.Errorf("count = %d, want %d", sr.Windows[0][1], 10*len(uuids))
	}

	// Windowed cross-shard queries share one grid.
	sr, ok = tc.router.Handle(context.Background(), &wire.StatRange{UUIDs: uuids, Ts: 0, Te: 1000, WindowChunks: 5}).(*wire.StatRangeResp)
	if !ok || len(sr.Windows) != 2 {
		t.Fatalf("windowed cross-shard query wrong: %#v", sr)
	}
	if sr.Windows[0][0] != uint64(1+2+3+4+5)*uint64(len(uuids)) {
		t.Errorf("window 0 sum = %d", sr.Windows[0][0])
	}

	// A shorter stream clamps the merged range, exactly like one engine.
	short := "cross-short"
	tc.createStream(t, short)
	tc.ingest(t, short, 4)
	sr, ok = tc.router.Handle(context.Background(), &wire.StatRange{UUIDs: append(uuids, short), Ts: 0, Te: 1000}).(*wire.StatRangeResp)
	if !ok {
		t.Fatal("clamped cross-shard query failed")
	}
	if sr.FromChunk != 0 || sr.ToChunk != 4 {
		t.Errorf("clamped range [%d,%d), want [0,4)", sr.FromChunk, sr.ToChunk)
	}
	if want := uint64(1+2+3+4) * uint64(len(uuids)+1); sr.Windows[0][0] != want {
		t.Errorf("clamped sum = %d, want %d", sr.Windows[0][0], want)
	}

	// Geometry mismatches are rejected, like one engine.
	badCfg := tc.cfg
	badCfg.Interval = 999
	if resp := tc.router.Handle(context.Background(), &wire.CreateStream{UUID: "cross-odd", Cfg: badCfg}); !isOK(resp) {
		t.Fatalf("create: %#v", resp)
	}
	if e, ok := tc.router.Handle(context.Background(), &wire.StatRange{UUIDs: []string{uuids[0], "cross-odd"}, Ts: 0, Te: 1000}).(*wire.Error); !ok || e.Code != wire.CodeBadRequest {
		t.Error("geometry mismatch not rejected")
	}
	// Unknown stream in a cross-shard query surfaces NotFound.
	if e, ok := tc.router.Handle(context.Background(), &wire.StatRange{UUIDs: []string{uuids[0], "nope"}, Ts: 0, Te: 1000}).(*wire.Error); !ok || e.Code != wire.CodeNotFound {
		t.Error("missing stream not surfaced")
	}
}

func TestRouterRejectsNonRequests(t *testing.T) {
	tc := newTestCluster(t, 2)
	if e, ok := tc.router.Handle(context.Background(), &wire.OK{}).(*wire.Error); !ok || e.Code != wire.CodeBadRequest {
		t.Error("response-type message accepted")
	}
	if e, ok := tc.router.Handle(context.Background(), &wire.StatRange{}).(*wire.Error); !ok || e.Code != wire.CodeBadRequest {
		t.Error("empty StatRange accepted")
	}
}

// TestRouterConcurrent hammers one router with parallel ingest, queries,
// listings, and deletions across many streams; run with -race.
func TestRouterConcurrent(t *testing.T) {
	tc := newTestCluster(t, 4)
	const streams = 24
	const chunks = 15
	uuids := make([]string, streams)
	for i := range uuids {
		uuids[i] = fmt.Sprintf("hammer-%d", i)
		tc.createStream(t, uuids[i])
	}
	var wg sync.WaitGroup
	// One writer per stream (append order is per-stream).
	for _, uuid := range uuids {
		wg.Add(1)
		go func(uuid string) {
			defer wg.Done()
			tc.ingest(t, uuid, chunks)
		}(uuid)
	}
	// Readers: stat queries and listings racing the writers.
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				uuid := uuids[(r*50+i)%streams]
				resp := tc.router.Handle(context.Background(), &wire.StatRange{UUIDs: []string{uuid}, Ts: 0, Te: chunks * 100})
				switch resp.(type) {
				case *wire.StatRangeResp, *wire.Error: // "no data yet" races are fine
				default:
					t.Errorf("unexpected response %T", resp)
				}
				tc.router.Handle(context.Background(), &wire.ListStreams{})
			}
		}(r)
	}
	// Churn: create/delete disjoint victim streams.
	for d := 0; d < 4; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				uuid := fmt.Sprintf("victim-%d-%d", d, i)
				tc.createStream(t, uuid)
				if resp := tc.router.Handle(context.Background(), &wire.DeleteStream{UUID: uuid}); !isOK(resp) {
					t.Errorf("delete %q -> %#v", uuid, resp)
				}
			}
		}(d)
	}
	wg.Wait()
	for _, uuid := range uuids {
		info, ok := tc.router.Handle(context.Background(), &wire.StreamInfo{UUID: uuid}).(*wire.StreamInfoResp)
		if !ok || info.Count != chunks {
			t.Fatalf("stream %q count wrong after hammer: %#v", uuid, info)
		}
	}
}

// TestRouterAggRangeRejectsMismatchedGeometry: the optimistic AggRange
// fast path must never sum partials computed over different time
// geometries — even when the shards happen to report the same chunk range
// (same counts), which is exactly the case the range-equality check alone
// cannot catch.
func TestRouterAggRangeRejectsMismatchedGeometry(t *testing.T) {
	tc := newTestCluster(t, 4)

	// Two streams on different shards with different epochs but equal
	// chunk counts.
	var a, b string
	for i := 0; a == "" || b == ""; i++ {
		uuid := fmt.Sprintf("geo-%d", i)
		if a == "" {
			a = uuid
			continue
		}
		if tc.router.Owner(uuid) != tc.router.Owner(a) {
			b = uuid
		}
		if i > 1000 {
			t.Fatal("no cross-shard pair found")
		}
	}
	tc.createStream(t, a)
	tc.ingest(t, a, 8)
	cfgB := tc.cfg
	cfgB.Epoch = 1_000_000 // same interval and count, shifted epoch
	if resp := tc.router.Handle(context.Background(), &wire.CreateStream{UUID: b, Cfg: cfgB}); !isOK(resp) {
		t.Fatalf("CreateStream(%q) -> %#v", b, resp)
	}
	for i := uint64(0); i < 8; i++ {
		start := 1_000_000 + int64(i)*100
		sealed, err := chunk.SealPlain(tc.spec, chunk.CompressionNone, i, start, start+100,
			[]chunk.Point{{TS: start, Val: 1}})
		if err != nil {
			t.Fatal(err)
		}
		if resp := tc.router.Handle(context.Background(), &wire.InsertChunk{UUID: b, Chunk: chunk.MarshalSealed(sealed)}); !isOK(resp) {
			t.Fatalf("InsertChunk(%q, %d) -> %#v", b, i, resp)
		}
	}

	resp := tc.router.Handle(context.Background(), &wire.AggRange{
		UUIDs: []string{a, b}, Ts: 0, Te: 2_000_000,
	})
	e, isErr := resp.(*wire.Error)
	if !isErr {
		t.Fatalf("mismatched-geometry AggRange accepted: %#v", resp)
	}
	if e.Code != wire.CodeBadRequest {
		t.Errorf("error code %d, want CodeBadRequest", e.Code)
	}

	// Matching geometry on the same shard pair still works.
	c := ""
	for i := 0; c == ""; i++ {
		uuid := fmt.Sprintf("geo-ok-%d", i)
		if tc.router.Owner(uuid) != tc.router.Owner(a) {
			c = uuid
		}
	}
	tc.createStream(t, c)
	tc.ingest(t, c, 8)
	resp = tc.router.Handle(context.Background(), &wire.AggRange{
		UUIDs: []string{a, c}, Ts: 0, Te: 2_000_000,
	})
	if ar, ok := resp.(*wire.AggRangeResp); !ok || ar.StreamCount != 2 {
		t.Fatalf("matched-geometry AggRange -> %#v", resp)
	}
}
