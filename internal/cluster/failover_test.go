package cluster

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/kv"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wire"
)

// replMember is one replication group member served over real TCP, with
// a kill switch that simulates a crash (listener and all sessions die,
// nothing is flushed or handed off gracefully).
type replMember struct {
	node  *replica.Node
	store kv.Store
	addr  string
	kill  func()
}

func startReplMember(t *testing.T, lease time.Duration) *replMember {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	store := kv.NewMemStore()
	node, err := replica.New(store, server.Config{}, replica.Options{
		Self:  lis.Addr().String(),
		Lease: lease,
		Logf:  func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewServer(node, func(string, ...any) {})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ctx, lis) }()
	m := &replMember{node: node, store: store, addr: lis.Addr().String()}
	killed := false
	m.kill = func() {
		if killed {
			return
		}
		killed = true
		node.Close()
		cancel()
		srv.Close()
		<-done
	}
	t.Cleanup(m.kill)
	return m
}

// TestReplicatedShardFailsOver: a router shard backed by a leader +
// follower replication group survives the leader dying — reads answer
// byte-identically from the promoted follower and writes flow again —
// without the router's caller changing anything.
func TestReplicatedShardFailsOver(t *testing.T) {
	const lease = 200 * time.Millisecond
	leader := startReplMember(t, lease)
	follower := startReplMember(t, lease)
	leader.node.Lead([]string{follower.addr})

	sh, err := NewReplicatedShard("g0", []string{leader.addr, follower.addr}, 0, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewRouter([]Shard{sh}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	tc := &testCluster{router: router, spec: chunk.DigestSpec{Sum: true, Count: true}}
	specBytes, _ := tc.spec.MarshalBinary()
	tc.cfg = wire.StreamConfig{Epoch: 0, Interval: 100, VectorLen: uint32(tc.spec.VectorLen()), Fanout: 8, DigestSpec: specBytes}
	const chunks = 6
	tc.createStream(t, "s")
	tc.ingest(t, "s", chunks)

	query := &wire.StatRange{UUIDs: []string{"s"}, Ts: 0, Te: chunks * 100}
	before := router.Handle(context.Background(), query)
	if _, ok := before.(*wire.StatRangeResp); !ok {
		t.Fatalf("StatRange before crash -> %#v", before)
	}

	leader.kill()

	// The first read after the crash rides the whole failover: dead
	// leader detected, lease waited out, follower promoted. An AggRange
	// (the typed-plan query path) exercises the read-retry list.
	if resp := router.Handle(context.Background(), &wire.AggRange{UUIDs: []string{"s"}, Ts: 0, Te: chunks * 100}); resp != nil {
		if _, bad := resp.(*wire.Error); bad {
			t.Fatalf("AggRange riding the failover -> %#v", resp)
		}
	}

	// Same bytes, same caller code.
	after := router.Handle(context.Background(), query)
	if !bytes.Equal(wire.Marshal(before), wire.Marshal(after)) {
		t.Fatalf("post-failover answer differs:\n before %#v\n after  %#v", before, after)
	}

	rs := sh.Handler.(*ReplicatedShard)
	if addr, epoch := rs.Leader(); addr != follower.addr || epoch < 2 {
		t.Fatalf("shard follows %s at epoch %d, want promoted follower %s at epoch >= 2", addr, epoch, follower.addr)
	}
	if role, epoch, _ := follower.node.Status(); role != wire.ReplLeader || epoch < 2 {
		t.Fatalf("follower role/epoch after promotion = %d/%d", role, epoch)
	}

	// Writes flow against the new leader (the dead peer is detected as
	// unreachable and excluded from the durability wait).
	start := int64(chunks) * 100
	sealed, err := chunk.SealPlain(tc.spec, chunk.CompressionNone, chunks, start, start+100,
		[]chunk.Point{{TS: start, Val: chunks + 1}})
	if err != nil {
		t.Fatal(err)
	}
	if resp := router.Handle(context.Background(), &wire.InsertChunk{UUID: "s", Chunk: chunk.MarshalSealed(sealed)}); !isOK(resp) {
		t.Fatalf("post-failover write -> %#v", resp)
	}
	if got := tc.statSum(t, "s", (chunks+1)*100); got != (chunks+1)*(chunks+2)/2 {
		t.Fatalf("aggregate after post-failover write = %d", got)
	}
}
