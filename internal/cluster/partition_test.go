package cluster

// The partition suite: fault-injection tests (internal/netchaos) proving
// the quorum-acknowledgement window is closed at the cluster layer — a
// router riding a partitioned replication group never loses an
// acknowledged write, never observes two acknowledging leaders, and
// recovers read-your-writes on the majority side. Every schedule is
// deterministic: the seeded property test logs its seed and replays with
//
//	go test ./internal/cluster/ -run TestRandomFaultSchedule -seed=N

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/kv"
	"repro/internal/netchaos"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wire"
)

// chaosSeed replays a specific fault schedule in the seeded property
// test; 0 derives a fresh seed from the clock (and logs it).
var chaosSeed = flag.Uint64("seed", 0, "replay a specific netchaos fault schedule (0 = random, logged)")

// startChaosMember is startReplMember with the member's outbound dials
// routed through a chaos network under the given name, so partitions are
// link rules instead of killed processes — the member stays alive and
// unreachable, the failure shape quorum mode exists to survive.
func startChaosMember(t *testing.T, lease time.Duration, nw *netchaos.Network, name string, quorum bool, onAck func(epoch, seq uint64)) *replMember {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	store := kv.NewMemStore()
	node, err := replica.New(store, server.Config{}, replica.Options{
		Self:    lis.Addr().String(),
		Lease:   lease,
		Logf:    func(string, ...any) {},
		Quorum:  quorum,
		NetDial: nw.Dialer(name),
		OnAck:   onAck,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Register(name, lis.Addr().String())
	srv := server.NewServer(node, func(string, ...any) {})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ctx, lis) }()
	m := &replMember{node: node, store: store, addr: lis.Addr().String()}
	killed := false
	m.kill = func() {
		if killed {
			return
		}
		killed = true
		node.Close()
		cancel()
		srv.Close()
		<-done
	}
	t.Cleanup(m.kill)
	return m
}

// waitUntil polls cond for up to 15s — partition tests wait through
// lease expiries, elections, and snapshot resyncs.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// statB marshals one StatRange answer so replicas (or a replica and a
// control engine) can be compared byte-for-byte.
func statB(t *testing.T, h server.Handler, uuid string, te int64) []byte {
	t.Helper()
	resp := h.Handle(context.Background(), &wire.StatRange{UUIDs: []string{uuid}, Ts: 0, Te: te, WindowChunks: 4})
	return wire.Marshal(resp)
}

// sealIdxVal seals one single-point chunk with an explicit value, so
// competing writes of the same index are distinguishable post-heal.
func sealIdxVal(t *testing.T, spec chunk.DigestSpec, idx uint64, val int64) []byte {
	t.Helper()
	start := int64(idx) * 100
	sealed, err := chunk.SealPlain(spec, chunk.CompressionNone, idx, start, start+100,
		[]chunk.Point{{TS: start, Val: val}})
	if err != nil {
		t.Fatal(err)
	}
	return chunk.MarshalSealed(sealed)
}

// insertAcked drives one chunk to a durable acknowledgement through h,
// following the discipline real writers need under partitions: only
// wire.OK counts as acked; CodeBusy and CodeNotLeader applied nothing
// and retry freely; any ambiguous outcome (the connection died or the
// call timed out mid-flight) is resolved by reading StreamInfo.Count —
// chunks are inserted in index order, so the count names the next index
// exactly and a blind retry can never double-apply.
func insertAcked(t *testing.T, h server.Handler, spec chunk.DigestSpec, uuid string, idx uint64, timeout time.Duration) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		resp := h.Handle(ctx, &wire.InsertChunk{UUID: uuid, Chunk: sealIdxVal(t, spec, idx, int64(idx+1))})
		cancel()
		e, isErr := resp.(*wire.Error)
		if !isErr {
			if isOK(resp) {
				return true
			}
			return false // a non-error, non-OK response would be a protocol bug
		}
		switch e.Code {
		case wire.CodeBusy, wire.CodeNotLeader:
			// Nothing was applied; retry after a beat.
		default:
			// Ambiguous (or the chunk raced in and a duplicate was
			// refused): ask how far ingest actually got.
			rctx, rcancel := context.WithTimeout(context.Background(), 2*time.Second)
			info, ok := h.Handle(rctx, &wire.StreamInfo{UUID: uuid}).(*wire.StreamInfoResp)
			rcancel()
			if ok && info.Count > idx {
				return true // applied before the error reached us
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return false
}

// ackJournal records every client-acknowledged mutation as (node, epoch,
// seq) via replica.Options.OnAck, and checks the two safety invariants a
// quorum group owes its callers: at most one node acknowledges writes in
// any epoch, and acknowledged sequence ranges never overlap across
// epochs (a deposed leader's acks all precede its successor's).
type ackJournal struct {
	mu      sync.Mutex
	byEpoch map[uint64]*epochAcks
	bad     []string
}

type epochAcks struct {
	node     string
	min, max uint64
}

func newAckJournal() *ackJournal {
	return &ackJournal{byEpoch: map[uint64]*epochAcks{}}
}

func (j *ackJournal) hook(node string) func(epoch, seq uint64) {
	return func(epoch, seq uint64) {
		j.mu.Lock()
		defer j.mu.Unlock()
		e := j.byEpoch[epoch]
		if e == nil {
			j.byEpoch[epoch] = &epochAcks{node: node, min: seq, max: seq}
			return
		}
		if e.node != node {
			j.bad = append(j.bad, fmt.Sprintf("epoch %d acked by both %s and %s (seq %d)", epoch, e.node, node, seq))
			return
		}
		if seq < e.min {
			e.min = seq
		}
		if seq > e.max {
			e.max = seq
		}
	}
}

func (j *ackJournal) check(t *testing.T, seed uint64) {
	t.Helper()
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, v := range j.bad {
		t.Errorf("ack journal (seed=%d): %s", seed, v)
	}
	epochs := make([]uint64, 0, len(j.byEpoch))
	for e := range j.byEpoch {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, k int) bool { return epochs[i] < epochs[k] })
	for i := 1; i < len(epochs); i++ {
		prev, cur := j.byEpoch[epochs[i-1]], j.byEpoch[epochs[i]]
		if prev.max >= cur.min {
			t.Errorf("ack journal (seed=%d): epoch %d acked through seq %d but epoch %d acked from seq %d — ranges overlap",
				seed, epochs[i-1], prev.max, epochs[i], cur.min)
		}
	}
}

// wmMonitor samples every member's (role, epoch, watermark, installs)
// and flags a watermark that moved backwards within one epoch without a
// snapshot install — the one shape of regression that is never
// legitimate (promotions bump the epoch; resyncs bump the install
// counter).
type wmMonitor struct {
	stop chan struct{}
	done chan struct{}

	mu  sync.Mutex
	bad []string
}

func watchWatermarks(members map[string]*replMember) *wmMonitor {
	m := &wmMonitor{stop: make(chan struct{}), done: make(chan struct{})}
	type last struct {
		epoch, wm, installs uint64
		seen                bool
	}
	go func() {
		defer close(m.done)
		prev := map[string]*last{}
		for name := range members {
			prev[name] = &last{}
		}
		for {
			select {
			case <-m.stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			for name, mem := range members {
				_, epoch, wm := mem.node.Status()
				installs := mem.node.Installs()
				p := prev[name]
				if p.seen && epoch == p.epoch && installs == p.installs && wm < p.wm {
					m.mu.Lock()
					m.bad = append(m.bad, fmt.Sprintf("%s watermark %d -> %d within epoch %d", name, p.wm, wm, epoch))
					m.mu.Unlock()
				}
				*p = last{epoch: epoch, wm: wm, installs: installs, seen: true}
			}
		}
	}()
	return m
}

func (m *wmMonitor) finish(t *testing.T, seed uint64) {
	t.Helper()
	close(m.stop)
	<-m.done
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, v := range m.bad {
		t.Errorf("watermark regression (seed=%d): %s", seed, v)
	}
}

// TestSplitBrainMinorityLeaderRefused: the split-brain regression. A
// quorum leader partitioned onto the minority side must refuse both its
// in-flight and its new writes, while the router (majority side) fences
// the group, promotes a majority member, and keeps serving writes with
// read-your-writes — all through the same Handle calls the caller was
// already making.
func TestSplitBrainMinorityLeaderRefused(t *testing.T) {
	const lease = 200 * time.Millisecond
	nw := netchaos.New(21, t.Logf)
	journal := newAckJournal()
	a := startChaosMember(t, lease, nw, "a", true, journal.hook("a"))
	b := startChaosMember(t, lease, nw, "b", true, journal.hook("b"))
	c := startChaosMember(t, lease, nw, "c", true, journal.hook("c"))
	if err := a.node.Lead([]string{b.addr, c.addr}); err != nil {
		t.Fatal(err)
	}

	// The per-attempt call timeout is what lets the router notice an
	// alive-but-blackholed leader: the attempt deadlines while the
	// caller's context is still alive, which routes into failover.
	sh, err := NewReplicatedShardOptions("g0", []string{a.addr, b.addr, c.addr}, GroupOptions{
		Logf: t.Logf, NetDial: nw.Dialer("router"), Quorum: true, CallTimeout: 2 * lease,
	})
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewRouter([]Shard{sh}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	tc := &testCluster{router: router, spec: chunk.DigestSpec{Sum: true, Count: true}}
	specBytes, _ := tc.spec.MarshalBinary()
	tc.cfg = wire.StreamConfig{Epoch: 0, Interval: 100, VectorLen: uint32(tc.spec.VectorLen()), Fanout: 8, DigestSpec: specBytes}
	tc.createStream(t, "s")
	tc.ingest(t, "s", 3)

	// Cut the leader away from the majority AND the router, then race an
	// in-flight write directly against the minority leader. Its deadline
	// outlives the whole failover, so the only acceptable outcome is a
	// refusal — an OK here would be a split-brain ack.
	nw.Partition([]string{"a"}, []string{"b", "c", "router"})
	inflight := make(chan wire.Message, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 12*time.Second)
		defer cancel()
		inflight <- a.node.Handle(ctx, &wire.InsertChunk{UUID: "s", Chunk: sealIdxVal(t, tc.spec, 3, 1000)})
	}()

	// The router's next write rides the failover: blackholed leader
	// detected, majority fenced, a majority member promoted. Value 4
	// (idx+1) marks the majority's history against the minority's 1000.
	if !insertAcked(t, tc.router, tc.spec, "s", 3, 15*time.Second) {
		t.Fatal("router write never acked on the majority side")
	}
	// Read-your-writes through the same router: the acked chunk is
	// visible, and it is the majority's version.
	if got := tc.statSum(t, "s", 400); got != 1+2+3+4 {
		t.Fatalf("post-failover read = %d, want 10 (majority history)", got)
	}
	if addr, epoch := sh.Handler.(*ReplicatedShard).Leader(); addr == a.addr || epoch < 2 {
		t.Fatalf("router follows %s at epoch %d, want a majority member at epoch >= 2", addr, epoch)
	}

	// Once a full lease passes without follower contact, the minority
	// leader's gate closes: new writes refuse fast, applying nothing.
	time.Sleep(2 * lease)
	nctx, ncancel := context.WithTimeout(context.Background(), 2*lease)
	resp := a.node.Handle(nctx, &wire.InsertChunk{UUID: "s", Chunk: sealIdxVal(t, tc.spec, 4, 1000)})
	ncancel()
	if isOK(resp) {
		t.Fatalf("minority leader acked a new write during the partition: %#v", resp)
	}

	// The in-flight write must have been refused, not acked.
	nw.Heal()
	select {
	case resp := <-inflight:
		if isOK(resp) {
			t.Fatalf("minority leader acked its in-flight write: %#v", resp)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("in-flight minority write never resolved")
	}

	// After the heal the ex-leader resyncs into the majority history.
	waitUntil(t, "ex-leader rejoined the majority history", func() bool {
		role, epoch, _ := a.node.Status()
		return role == wire.ReplFollower && epoch >= 2 &&
			bytes.Equal(statB(t, a.node, "s", 400), statB(t, b.node, "s", 400))
	})
	journal.check(t, 21)
}

// runPartitionWindow is the acceptance scenario, parameterized by mode:
// a 3-member group ingests, the acking leader is isolated mid-ingest by
// the SAME netchaos schedule, the majority promotes a new leader, the
// partition heals. It returns which of the mid-cut writes were
// acknowledged and which of those acknowledgements the healed group
// lost. Quorum mode must return lost == nil; availability mode loses its
// solo-acked tail by design — the pair of runs is the proof the -quorum
// flag closes that window.
func runPartitionWindow(t *testing.T, quorum bool) (ackedCut, lost []uint64) {
	t.Helper()
	const lease = 200 * time.Millisecond
	nw := netchaos.New(7, t.Logf) // same seed both modes: identical schedule
	a := startChaosMember(t, lease, nw, "a", quorum, nil)
	b := startChaosMember(t, lease, nw, "b", quorum, nil)
	c := startChaosMember(t, lease, nw, "c", quorum, nil)
	if err := a.node.Lead([]string{b.addr, c.addr}); err != nil {
		t.Fatal(err)
	}

	spec := chunk.DigestSpec{Sum: true, Count: true}
	specBytes, _ := spec.MarshalBinary()
	cfg := wire.StreamConfig{Epoch: 0, Interval: 100, VectorLen: uint32(spec.VectorLen()), Fanout: 8, DigestSpec: specBytes}
	ctx := context.Background()
	if resp := a.node.Handle(ctx, &wire.CreateStream{UUID: "s", Cfg: cfg}); !isOK(resp) {
		t.Fatalf("CreateStream -> %#v", resp)
	}
	for i := uint64(0); i < 5; i++ {
		if resp := a.node.Handle(ctx, &wire.InsertChunk{UUID: "s", Chunk: sealIdxVal(t, spec, i, int64(i+1))}); !isOK(resp) {
			t.Fatalf("InsertChunk(%d) -> %#v", i, resp)
		}
	}

	// Mid-ingest, the schedule isolates the acking leader. The writer
	// keeps going against it with bounded patience per chunk.
	nw.Partition([]string{"a"}, []string{"b", "c"})
	for i := uint64(5); i < 8; i++ {
		wctx, cancel := context.WithTimeout(ctx, 3*lease)
		resp := a.node.Handle(wctx, &wire.InsertChunk{UUID: "s", Chunk: sealIdxVal(t, spec, i, int64(i+1))})
		cancel()
		if isOK(resp) {
			ackedCut = append(ackedCut, i)
		}
	}

	// The majority side elects b while the old leader is still cut off.
	if ack, ok := b.node.Handle(ctx, &wire.Promote{
		Epoch: 2, Leader: b.addr, Members: []string{a.addr, b.addr, c.addr},
	}).(*wire.ReplAck); !ok || ack.Epoch != 2 {
		t.Fatalf("Promote -> %#v", ack)
	}

	nw.Heal()
	waitUntil(t, "ex-leader rejoined after heal", func() bool {
		role, epoch, _ := a.node.Status()
		return role == wire.ReplFollower && epoch >= 2 &&
			bytes.Equal(statB(t, a.node, "s", 800), statB(t, b.node, "s", 800))
	})

	info, ok := b.node.Handle(ctx, &wire.StreamInfo{UUID: "s"}).(*wire.StreamInfoResp)
	if !ok {
		t.Fatalf("StreamInfo on the new leader failed")
	}
	if info.Count < 5 {
		t.Fatalf("pre-cut acknowledged chunks lost: count = %d, want >= 5", info.Count)
	}
	for _, i := range ackedCut {
		if i >= info.Count {
			lost = append(lost, i)
		}
	}

	// Byte-identical control: an engine that never saw a partition, fed
	// exactly the acknowledged writes that survived. In quorum mode this
	// must equal the healed group's answer bit for bit.
	control, err := server.New(kv.NewMemStore(), server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if resp := control.Handle(ctx, &wire.CreateStream{UUID: "s", Cfg: cfg}); !isOK(resp) {
		t.Fatalf("control CreateStream -> %#v", resp)
	}
	for i := uint64(0); i < info.Count; i++ {
		if resp := control.Handle(ctx, &wire.InsertChunk{UUID: "s", Chunk: sealIdxVal(t, spec, i, int64(i+1))}); !isOK(resp) {
			t.Fatalf("control InsertChunk(%d) -> %#v", i, resp)
		}
	}
	if quorum && !bytes.Equal(statB(t, b.node, "s", 800), statB(t, control, "s", 800)) {
		t.Error("healed quorum group differs from the never-partitioned control")
	}
	return ackedCut, lost
}

// TestPartitionWindowClosedByQuorum runs the identical leader-isolation
// schedule in both acknowledgement modes and asserts the difference the
// -quorum flag buys: availability mode demonstrably acks writes during
// the cut and loses them to the majority's history (the window), quorum
// mode acks nothing it cannot keep (the window closed).
func TestPartitionWindowClosedByQuorum(t *testing.T) {
	t.Run("availability-loses-solo-acked-tail", func(t *testing.T) {
		acked, lost := runPartitionWindow(t, false)
		if len(acked) == 0 {
			t.Fatal("availability mode acked nothing during the cut; the scenario proves nothing")
		}
		if len(lost) == 0 {
			t.Fatal("availability mode kept its solo-acked tail — then what does -quorum buy?")
		}
		t.Logf("availability mode: acked %v during the cut, lost %v after the heal", acked, lost)
	})
	t.Run("quorum-loses-nothing-acked", func(t *testing.T) {
		acked, lost := runPartitionWindow(t, true)
		if len(lost) != 0 {
			t.Fatalf("quorum mode lost acknowledged chunks %v", lost)
		}
		t.Logf("quorum mode: acked %v during the cut, lost none", acked)
	})
}

// TestRandomFaultScheduleInvariants: the seeded property test. A random
// netchaos schedule (partitions, one-way cuts, lossy links, delays,
// heals) runs against a 3-member quorum group while a writer pushes
// chunks through a router; after the final heal the group must have
// every acknowledged chunk, one acking leader per epoch, non-overlapping
// acked sequence ranges across epochs, and no illegitimate watermark
// regression. Fails reproduce with -seed=N (logged below).
func TestRandomFaultScheduleInvariants(t *testing.T) {
	seed := *chaosSeed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	t.Logf("fault schedule seed=%d (replay: go test ./internal/cluster/ -run TestRandomFaultScheduleInvariants -seed=%d)", seed, seed)

	const lease = 200 * time.Millisecond
	nw := netchaos.New(seed, t.Logf)
	journal := newAckJournal()
	members := map[string]*replMember{}
	for _, name := range []string{"a", "b", "c"} {
		members[name] = startChaosMember(t, lease, nw, name, true, journal.hook(name))
	}
	a, b, c := members["a"], members["b"], members["c"]
	if err := a.node.Lead([]string{b.addr, c.addr}); err != nil {
		t.Fatal(err)
	}
	sh, err := NewReplicatedShardOptions("g0", []string{a.addr, b.addr, c.addr}, GroupOptions{
		Logf: t.Logf, NetDial: nw.Dialer("router"), Quorum: true, CallTimeout: 2 * lease,
	})
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewRouter([]Shard{sh}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	tc := &testCluster{router: router, spec: chunk.DigestSpec{Sum: true, Count: true}}
	specBytes, _ := tc.spec.MarshalBinary()
	tc.cfg = wire.StreamConfig{Epoch: 0, Interval: 100, VectorLen: uint32(tc.spec.VectorLen()), Fanout: 8, DigestSpec: specBytes}
	tc.createStream(t, "s")
	tc.ingest(t, "s", 2)

	mon := watchWatermarks(members)
	steps := netchaos.RandomSchedule(seed, []string{"a", "b", "c"}, 4, 150*time.Millisecond)
	schedDone := make(chan struct{})
	go func() { defer close(schedDone); nw.Run(steps) }()

	// The writer pushes chunks through the router for the whole schedule;
	// every return of insertAcked is a durability promise the group must
	// keep through whatever the schedule did.
	const target = 10
	for i := uint64(2); i < target; i++ {
		if !insertAcked(t, tc.router, tc.spec, "s", i, 20*time.Second) {
			t.Fatalf("chunk %d never acked (seed=%d)", i, seed)
		}
	}
	<-schedDone // the schedule always ends on a heal

	// Every acked chunk present, and the whole group byte-converged.
	waitUntil(t, fmt.Sprintf("group converged on %d chunks (seed=%d)", target, seed), func() bool {
		for _, m := range members {
			info, ok := m.node.Handle(context.Background(), &wire.StreamInfo{UUID: "s"}).(*wire.StreamInfoResp)
			if !ok || info.Count != target {
				return false
			}
		}
		ref := statB(t, a.node, "s", target*100)
		return bytes.Equal(ref, statB(t, b.node, "s", target*100)) &&
			bytes.Equal(ref, statB(t, c.node, "s", target*100))
	})
	mon.finish(t, seed)
	journal.check(t, seed)
}
