package cluster

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/server"
	"repro/internal/wire"
)

// Shard names one engine shard and its request handler: an in-process
// *server.Engine, a remote engine via NewTCPShard, or any other
// server.Handler. In Rebalance, a Shard naming an existing member may
// leave Handler nil (the member's current handler is kept).
type Shard struct {
	Name    string
	Handler server.Handler
}

// Options tunes router construction.
type Options struct {
	// VirtualNodes per shard on the consistent-hash ring; <= 0 means
	// DefaultVirtualNodes.
	VirtualNodes int
	// Dial connects a member the router does not know yet, by name.
	// Required for wire-driven membership changes (wire.Reshard names
	// members as strings) and for recovering from CodeWrongShard after a
	// reshard coordinated by another router; without it the router serves
	// a fixed shard set. For remote deployments this is typically
	// NewTCPShard with the member name as the address.
	Dial func(member string) (Shard, error)
}

// Topology is a versioned ring membership: Epoch increments on every
// membership change, and Members lists the shard names (dialable
// addresses, for remote shards).
type Topology struct {
	Epoch   uint64
	Members []string
}

// routing is one immutable routing-table generation: the ring, the shard
// states, and the topology epoch that produced them. Swapped atomically
// on membership changes so the request hot path never takes a lock.
type routing struct {
	epoch  uint64
	ring   *Ring
	shards map[string]*shardState
	order  []string
}

// Router routes protocol requests to the engine shard owning each stream
// and fans out cross-shard operations. It implements server.Handler (serve
// it with server.NewServer) and the client Transport contract (drive it
// with an unmodified Owner/Consumer). Safe for concurrent use.
//
// The ring is versioned (Topology): Rebalance changes the membership
// while both old and new owners keep serving, migrating the streams whose
// ownership changed. A router holding a stale ring recovers from
// wire.CodeWrongShard answers by refreshing its topology from the shards
// (Options.Dial connects members it has not seen).
type Router struct {
	rt     atomic.Pointer[routing]
	vnodes int
	dial   func(member string) (Shard, error)

	// reshardMu serializes membership changes (Rebalance and stale-ring
	// topology installs); the request path never takes it.
	reshardMu sync.Mutex

	// routeMu is the dispatch barrier: every data-path request holds the
	// read side for its whole dispatch, and a migration registering its
	// move entry takes the write side once (empty critical section) — so
	// after the barrier, no request can still be in flight with a
	// pre-registration view of the moves table. Without it, a request
	// that read moveOf == nil just before the entry appeared could write
	// to the source during the frozen drain, and release would delete
	// the acknowledged write.
	routeMu sync.RWMutex

	// moves tracks streams currently migrating (and streams already
	// handed off, until the new topology installs): requests consult it
	// before the ring. movesActive mirrors len(moves) so the common case
	// (no migration) costs one atomic load.
	movesMu     sync.RWMutex
	moves       map[string]*moveState
	movesActive atomic.Int64

	// refreshMu serializes wrong-shard topology refreshes so a burst of
	// stale-ring errors triggers one refresh, not one per request.
	refreshMu sync.Mutex

	// testHookAfterCopyRound, when set, runs after each live copy round
	// of a migration (tests inject writes to exercise catch-up).
	testHookAfterCopyRound func(uuid string, round int)

	// testHookDuringFreeze, when set, runs while a migrating stream is
	// frozen for its final drain, after the source's write fence armed
	// (tests inject writes through a second router to prove the fence
	// rejects them).
	testHookDuringFreeze func(uuid string)
}

// moveState is one migrating stream's routing override. The gate admits
// requests during the copy phase (read-locked per request) and freezes
// them for the final drain (write-locked); forwarded flips once the
// destination holds the authoritative copy.
type moveState struct {
	src, dst  *shardState
	gate      sync.RWMutex
	forwarded atomic.Bool
}

type shardState struct {
	name     string
	handler  server.Handler
	requests atomic.Uint64 // directly routed requests
	fanouts  atomic.Uint64 // sub-requests from cross-shard fan-outs
	errors   atomic.Uint64 // *wire.Error responses observed
}

// ShardStats is one shard's observability snapshot.
type ShardStats struct {
	Name     string
	Requests uint64 // directly routed requests
	Fanouts  uint64 // sub-requests issued by cross-shard fan-outs
	Errors   uint64 // error responses returned by the shard
}

// NewRouter builds a router over the given shards at topology epoch 1.
func NewRouter(shards []Shard, opts Options) (*Router, error) {
	names := make([]string, 0, len(shards))
	states := make(map[string]*shardState, len(shards))
	for _, sh := range shards {
		if sh.Handler == nil {
			return nil, fmt.Errorf("cluster: shard %q has nil handler", sh.Name)
		}
		if _, dup := states[sh.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard %q", sh.Name)
		}
		names = append(names, sh.Name)
		states[sh.Name] = &shardState{name: sh.Name, handler: sh.Handler}
	}
	ring, err := NewRing(names, opts.VirtualNodes)
	if err != nil {
		return nil, err
	}
	r := &Router{vnodes: opts.VirtualNodes, dial: opts.Dial, moves: make(map[string]*moveState)}
	r.rt.Store(&routing{epoch: 1, ring: ring, shards: states, order: names})
	return r, nil
}

// Owner returns the name of the shard owning a stream UUID under the
// current ring (ignoring in-flight migrations).
func (r *Router) Owner(uuid string) string {
	rt := r.rt.Load()
	return rt.ring.Owner(uuid)
}

// Shards returns the current shard names in membership order.
func (r *Router) Shards() []string {
	rt := r.rt.Load()
	return append([]string(nil), rt.order...)
}

// Topology returns the current versioned membership.
func (r *Router) Topology() Topology {
	rt := r.rt.Load()
	return Topology{Epoch: rt.epoch, Members: append([]string(nil), rt.order...)}
}

// Stats snapshots per-shard request counters.
func (r *Router) Stats() []ShardStats {
	rt := r.rt.Load()
	out := make([]ShardStats, 0, len(rt.order))
	for _, name := range rt.order {
		s := rt.shards[name]
		out = append(out, ShardStats{
			Name:     s.name,
			Requests: s.requests.Load(),
			Fanouts:  s.fanouts.Load(),
			Errors:   s.errors.Load(),
		})
	}
	return out
}

// RoundTrip implements the client Transport contract in-process.
func (r *Router) RoundTrip(ctx context.Context, req wire.Message) (wire.Message, error) {
	return r.Handle(ctx, req), nil
}

// Close implements the client Transport contract: it closes every shard
// handler that holds resources (remote shards).
func (r *Router) Close() error {
	rt := r.rt.Load()
	var first error
	for _, name := range rt.order {
		if c, ok := rt.shards[name].handler.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// moveOf returns the move override of a stream, or nil. One atomic load
// in the common no-migration case.
func (r *Router) moveOf(uuid string) *moveState {
	if r.movesActive.Load() == 0 {
		return nil
	}
	r.movesMu.RLock()
	ms := r.moves[uuid]
	r.movesMu.RUnlock()
	return ms
}

// Handle implements server.Handler: single-stream requests go to the
// owning shard; StatRange, AggRange, ListStreams, and Batch may fan out.
// A canceled context aborts in-flight fan-outs promptly. A
// wire.CodeWrongShard answer — a stream moved under a ring this router
// has not caught up with — triggers a topology refresh (when Options.Dial
// is set) and one retry, so reshards coordinated elsewhere heal
// transparently; Batch envelopes are never replayed (their writes may
// have executed), the refresh just repairs the ring for the next ones.
func (r *Router) Handle(ctx context.Context, req wire.Message) wire.Message {
	resp := r.handleOnce(ctx, req)
	switch m := resp.(type) {
	case *wire.Error:
		if m.Code == wire.CodeWrongShard {
			if r.dial != nil {
				r.refreshTopology(ctx, m.Aux)
			}
			if cs, isCreate := req.(*wire.CreateStream); isCreate {
				// Creating a UUID whose tombstone epoch our ring already
				// covers: the tombstone is stale (the stream moved away
				// AND was deleted, and ownership came back here) — clear
				// it so the UUID is creatable again.
				r.reclaimTombstone(ctx, cs.UUID, m.Aux)
			}
			// Retry once even without a dialer: the wrong-shard answer may
			// be a race with this router's own in-flight handoff, where
			// the moves table (not the ring) already knows the new owner.
			if _, isBatch := req.(*wire.Batch); !isBatch {
				resp = r.handleOnce(ctx, req)
			}
		}
	case *wire.BatchResp:
		if r.dial != nil {
			for _, sub := range m.Resps {
				if e, ok := sub.(*wire.Error); ok && e.Code == wire.CodeWrongShard {
					r.refreshTopology(ctx, e.Aux)
					break
				}
			}
		}
	}
	return resp
}

func (r *Router) handleOnce(ctx context.Context, req wire.Message) wire.Message {
	if err := ctx.Err(); err != nil {
		return canceled(err)
	}
	// Admin requests run outside the dispatch barrier: Reshard drives the
	// migrations that take its write side.
	switch m := req.(type) {
	case *wire.TopologyInfo:
		rt := r.rt.Load()
		return &wire.TopologyInfoResp{Epoch: rt.epoch, Members: append([]string(nil), rt.order...)}
	case *wire.Reshard:
		return r.handleReshard(ctx, m)
	case *wire.TopologyUpdate:
		return &wire.Error{Code: wire.CodeBadRequest, Msg: "cluster: topology updates are published to engine shards, not routers"}
	}
	r.routeMu.RLock()
	defer r.routeMu.RUnlock()
	rt := r.rt.Load()
	// Every data-path request carries this router's topology epoch in its
	// context (and, over TCP shards, in the request envelope): engine write
	// fences compare against it, so a router holding a stale ring cannot
	// land a write in a stream whose final drain has already been read.
	return r.dispatchLocked(wire.ContextWithEpoch(ctx, rt.epoch), rt, req)
}

// dispatchLocked serves one data-path request; the caller holds the
// routeMu read side (batch sub-dispatch reuses it without re-acquiring —
// the read lock must not be taken recursively or a pending barrier
// deadlocks).
func (r *Router) dispatchLocked(ctx context.Context, rt *routing, req wire.Message) wire.Message {
	switch m := req.(type) {
	case *wire.StatRange:
		return r.statRange(ctx, rt, m)
	case *wire.AggRange:
		return r.aggRange(ctx, rt, m)
	case *wire.ListStreams:
		return r.listStreams(ctx, rt)
	case *wire.Batch:
		return r.batch(ctx, rt, m)
	default:
		uuid, ok := wire.RoutingUUID(req)
		if !ok {
			return &wire.Error{Code: wire.CodeBadRequest, Msg: "unsupported request type"}
		}
		return r.route(ctx, rt, uuid, req)
	}
}

func canceled(err error) *wire.Error {
	return &wire.Error{Code: wire.CodeCanceled, Msg: "cluster: " + err.Error()}
}

// awaitFanout waits for a fan-out wave to finish or the caller to give up,
// whichever comes first. It returns nil once all goroutines have completed,
// or the cancellation response to send while stragglers (which received the
// same ctx and will abort on their own) are abandoned.
func awaitFanout(ctx context.Context, wg *sync.WaitGroup) *wire.Error {
	if ctx.Done() == nil {
		// Not cancelable (the in-process hot path): skip the waiter
		// goroutine and channel.
		wg.Wait()
		return nil
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return canceled(ctx.Err())
	}
}

// route dispatches a single-stream request. A migrating stream's requests
// pass through its move gate: admitted (to the source) during the copy
// phase, held for the brief final drain, and forwarded to the destination
// once it holds the authoritative copy — so writes are never lost and
// reads never see a half-copied stream.
func (r *Router) route(ctx context.Context, rt *routing, uuid string, req wire.Message) wire.Message {
	if ms := r.moveOf(uuid); ms != nil {
		ms.gate.RLock()
		defer ms.gate.RUnlock()
		if ms.forwarded.Load() {
			return r.dispatch(ms.dst, ctx, req)
		}
		return r.dispatch(ms.src, ctx, req)
	}
	return r.dispatch(rt.shards[rt.ring.Owner(uuid)], ctx, req)
}

// dispatch hands a directly routed request to a shard, counting it.
func (r *Router) dispatch(s *shardState, ctx context.Context, req wire.Message) wire.Message {
	s.requests.Add(1)
	resp := s.handler.Handle(ctx, req)
	if _, isErr := resp.(*wire.Error); isErr {
		s.errors.Add(1)
	}
	return resp
}

// fanout sends one sub-request to a shard, counting it against the shard's
// fan-out and error totals.
func (r *Router) fanout(ctx context.Context, s *shardState, req wire.Message) wire.Message {
	s.fanouts.Add(1)
	resp := s.handler.Handle(ctx, req)
	if _, isErr := resp.(*wire.Error); isErr {
		s.errors.Add(1)
	}
	return resp
}

// reclaimTombstone asks the current ring owner of uuid to clear a stale
// migration tombstone (moveEpoch at or below our ring's epoch, so the
// ring's ownership claim is at least as fresh as the move that left the
// tombstone). No-op while the stream is mid-move here or while our ring
// lags the move.
func (r *Router) reclaimTombstone(ctx context.Context, uuid string, moveEpoch uint64) {
	rt := r.rt.Load()
	if moveEpoch > rt.epoch || r.moveOf(uuid) != nil {
		return
	}
	s := rt.shards[rt.ring.Owner(uuid)]
	r.fanout(ctx, s, &wire.HandoffComplete{UUID: uuid, Epoch: rt.epoch, Action: wire.HandoffReclaim})
}

// effectiveShard resolves where a stream's requests should go right now:
// the migration destination once forwarding started, the ring owner
// otherwise. Fan-out grouping uses it; unlike route it does not hold the
// move gate, so a racing handoff can surface CodeWrongShard — which the
// top-level retry absorbs.
func (r *Router) effectiveShard(rt *routing, uuid string) *shardState {
	if ms := r.moveOf(uuid); ms != nil {
		if ms.forwarded.Load() {
			return ms.dst
		}
		return ms.src
	}
	return rt.shards[rt.ring.Owner(uuid)]
}

// listStreams merges the stream listings of every shard.
func (r *Router) listStreams(ctx context.Context, rt *routing) wire.Message {
	type result struct{ resp wire.Message }
	results := make([]result, len(rt.order))
	var wg sync.WaitGroup
	for i, name := range rt.order {
		wg.Add(1)
		go func(i int, s *shardState) {
			defer wg.Done()
			results[i].resp = r.fanout(ctx, s, &wire.ListStreams{})
		}(i, rt.shards[name])
	}
	if e := awaitFanout(ctx, &wg); e != nil {
		return e
	}
	var uuids []string
	for _, res := range results {
		switch m := res.resp.(type) {
		case *wire.ListStreamsResp:
			uuids = append(uuids, m.UUIDs...)
		case *wire.Error:
			return m
		default:
			return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("cluster: unexpected listing response %T", res.resp)}
		}
	}
	sort.Strings(uuids)
	return &wire.ListStreamsResp{UUIDs: uuids}
}

// movedBatchKey marks a batch partition group that must route through the
// per-request move gate: the prefix cannot collide with shard names
// (which are printable).
const movedBatchKey = "\x00mv:"

// batch splits a pipelined batch by owning shard, forwards one sub-batch
// per shard concurrently (per-stream request order is preserved inside each
// sub-batch), and reassembles the responses in request order. Sub-requests
// that themselves fan out (multi-stream StatRange, ListStreams) are
// dispatched individually, and sub-requests for a migrating stream route
// one by one through the stream's move gate (in batch order), so pipelined
// writes keep landing on whichever side is authoritative.
func (r *Router) batch(ctx context.Context, rt *routing, b *wire.Batch) wire.Message {
	resps := make([]wire.Message, len(b.Reqs))
	p := wire.PartitionBatch(b.Reqs, func(m wire.Message) (string, bool) {
		uuid, ok := wire.RoutingUUID(m)
		if !ok {
			return "", false
		}
		if r.moveOf(uuid) != nil {
			return movedBatchKey + uuid, true
		}
		return rt.ring.Owner(uuid), true
	})
	for _, i := range p.Nested {
		resps[i] = &wire.Error{Code: wire.CodeBadRequest, Msg: "nested batch envelope"}
	}
	var wg sync.WaitGroup
	for _, owner := range p.Order {
		idxs := p.Groups[owner]
		if uuid, moved := strings.CutPrefix(owner, movedBatchKey); moved {
			wg.Add(1)
			go func(uuid string, idxs []int) {
				defer wg.Done()
				for _, i := range idxs {
					resps[i] = r.route(ctx, rt, uuid, b.Reqs[i])
				}
			}(uuid, idxs)
			continue
		}
		s := rt.shards[owner]
		wg.Add(1)
		go func(s *shardState, idxs []int) {
			defer wg.Done()
			sub := &wire.Batch{Reqs: make([]wire.Message, len(idxs))}
			for k, i := range idxs {
				sub.Reqs[k] = b.Reqs[i]
			}
			s.requests.Add(uint64(len(idxs)))
			resp := s.handler.Handle(ctx, sub)
			switch m := resp.(type) {
			case *wire.BatchResp:
				if len(m.Resps) != len(idxs) {
					e := &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf(
						"cluster: shard %s answered %d of %d batch elements", s.name, len(m.Resps), len(idxs))}
					for _, i := range idxs {
						resps[i] = e
					}
					s.errors.Add(1)
					return
				}
				for k, i := range idxs {
					resps[i] = m.Resps[k]
					if _, isErr := m.Resps[k].(*wire.Error); isErr {
						s.errors.Add(1)
					}
				}
			case *wire.Error:
				s.errors.Add(1)
				for _, i := range idxs {
					resps[i] = m
				}
			default:
				s.errors.Add(1)
				e := &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("cluster: unexpected batch response %T", resp)}
				for _, i := range idxs {
					resps[i] = e
				}
			}
		}(s, idxs)
	}
	for _, i := range p.Singles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// The caller (batch dispatch) holds the routeMu read side;
			// sub-dispatch must not re-acquire it (a recursive read lock
			// deadlocks against a pending barrier). A goroutine abandoned
			// by a canceled batch can outlive the lock, but its write was
			// never acknowledged, so the migration barrier's
			// acked-writes-survive guarantee is unaffected.
			resps[i] = r.dispatchLocked(ctx, rt, b.Reqs[i])
		}(i)
	}
	if e := awaitFanout(ctx, &wg); e != nil {
		return e
	}
	return &wire.BatchResp{Resps: resps}
}

// shardGroups partitions a query's stream set by the shard currently
// serving each stream (migration-aware), preserving first-seen order.
func (r *Router) shardGroups(rt *routing, uuids []string) (order []string, groups map[string][]string, states map[string]*shardState) {
	groups = make(map[string][]string)
	states = make(map[string]*shardState)
	for _, uuid := range uuids {
		s := r.effectiveShard(rt, uuid)
		if _, seen := groups[s.name]; !seen {
			order = append(order, s.name)
			states[s.name] = s
		}
		groups[s.name] = append(groups[s.name], uuid)
	}
	return order, groups, states
}

// clampMulti is the cross-shard pre-pass of a multi-stream query: it
// fetches geometry and ingest progress for every stream so each shard can
// be handed a range clamped identically — the engine clamps multi-stream
// queries to the shortest stream, and the router must preserve that across
// shards. The lookups are independent, so they are fetched concurrently
// (deduplicated: a UUID may repeat). It returns the clamped te; a non-nil
// message is the error response.
func (r *Router) clampMulti(ctx context.Context, rt *routing, uuids []string, ts, te int64) (int64, wire.Message) {
	unique := make([]string, 0, len(uuids))
	seen := make(map[string]bool, len(uuids))
	for _, uuid := range uuids {
		if !seen[uuid] {
			seen[uuid] = true
			unique = append(unique, uuid)
		}
	}
	infos := make([]wire.Message, len(unique))
	var infoWG sync.WaitGroup
	for i, uuid := range unique {
		infoWG.Add(1)
		go func(i int, uuid string) {
			defer infoWG.Done()
			// Counted as fan-out traffic: these are internal
			// sub-requests of the cross-shard query, not directly
			// routed client requests.
			infos[i] = r.fanout(ctx, r.effectiveShard(rt, uuid), &wire.StreamInfo{UUID: uuid})
		}(i, uuid)
	}
	if e := awaitFanout(ctx, &infoWG); e != nil {
		return 0, e
	}
	var (
		epoch, interval int64
		vectorLen       uint32
		minCount        uint64
	)
	first := unique[0]
	for i, resp := range infos {
		info, ok := resp.(*wire.StreamInfoResp)
		if !ok {
			if e, isErr := resp.(*wire.Error); isErr {
				return 0, e
			}
			return 0, &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("cluster: unexpected info response %T", resp)}
		}
		if i == 0 {
			epoch, interval, vectorLen = info.Cfg.Epoch, info.Cfg.Interval, info.Cfg.VectorLen
			minCount = info.Count
			continue
		}
		if info.Cfg.Epoch != epoch || info.Cfg.Interval != interval || info.Cfg.VectorLen != vectorLen {
			return 0, &wire.Error{Code: wire.CodeBadRequest, Msg: fmt.Sprintf(
				"server: stream %q geometry differs from %q (inter-stream queries need matching epoch/interval/digest)", unique[i], first)}
		}
		if info.Count < minCount {
			minCount = info.Count
		}
	}
	if minCount == 0 {
		return 0, &wire.Error{Code: wire.CodeBadRequest, Msg: "server: no common ingested range across streams"}
	}
	reqTe := te
	if maxTe := epoch + int64(minCount)*interval; te > maxTe {
		te = maxTe
	}
	if te <= ts {
		// Report the range the caller actually asked for, not the
		// clamped (possibly inverted) one.
		return 0, &wire.Error{Code: wire.CodeBadRequest, Msg: fmt.Sprintf("server: no ingested chunks in range [%d,%d)", ts, reqTe)}
	}
	return te, nil
}

// sumWindows folds one shard's partial window vectors into the merged
// aggregate (element-wise modular addition); the shards computed over the
// same clamped range, so any shape disagreement is an internal error.
func sumWindows(merged, part [][]uint64) *wire.Error {
	for w := range merged {
		if len(part[w]) != len(merged[w]) {
			return &wire.Error{Code: wire.CodeInternal, Msg: "cluster: shard window vectors disagree"}
		}
		for x := range merged[w] {
			merged[w][x] += part[w][x]
		}
	}
	return nil
}

// statRange routes a statistical query. Queries whose streams all live on
// one shard pass straight through; cross-shard queries are clamped to the
// common ingested range, fanned out per shard, and homomorphically summed.
func (r *Router) statRange(ctx context.Context, rt *routing, m *wire.StatRange) wire.Message {
	if len(m.UUIDs) == 0 {
		return &wire.Error{Code: wire.CodeBadRequest, Msg: "server: no streams given"}
	}
	groupOrder, groups, states := r.shardGroups(rt, m.UUIDs)
	if len(groupOrder) == 1 {
		return r.route(ctx, rt, m.UUIDs[0], m)
	}
	te, errResp := r.clampMulti(ctx, rt, m.UUIDs, m.Ts, m.Te)
	if errResp != nil {
		return errResp
	}

	// Fan out one sub-query per shard; every shard sees the same clamped
	// range and therefore computes the same chunk window.
	results := make([]wire.Message, len(groupOrder))
	var wg sync.WaitGroup
	for i, owner := range groupOrder {
		wg.Add(1)
		go func(i int, s *shardState, uuids []string) {
			defer wg.Done()
			results[i] = r.fanout(ctx, s, &wire.StatRange{UUIDs: uuids, Ts: m.Ts, Te: te, WindowChunks: m.WindowChunks})
		}(i, states[owner], groups[owner])
	}
	if e := awaitFanout(ctx, &wg); e != nil {
		return e
	}

	var merged *wire.StatRangeResp
	for _, resp := range results {
		part, ok := resp.(*wire.StatRangeResp)
		if !ok {
			if e, isErr := resp.(*wire.Error); isErr {
				return e
			}
			return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("cluster: unexpected stat response %T", resp)}
		}
		if merged == nil {
			merged = &wire.StatRangeResp{FromChunk: part.FromChunk, ToChunk: part.ToChunk, Windows: part.Windows}
			continue
		}
		if part.FromChunk != merged.FromChunk || part.ToChunk != merged.ToChunk || len(part.Windows) != len(merged.Windows) {
			return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf(
				"cluster: shard windows disagree ([%d,%d)x%d vs [%d,%d)x%d)",
				part.FromChunk, part.ToChunk, len(part.Windows),
				merged.FromChunk, merged.ToChunk, len(merged.Windows))}
		}
		if e := sumWindows(merged.Windows, part.Windows); e != nil {
			return e
		}
	}
	return merged
}

// aggRange routes a typed query plan: the stream set is split by owning
// shard, each shard homomorphically sums (and projects) its own members'
// digests, and the router combines the partial ciphertext aggregates
// shard-side — the combine tree mirrors the cluster topology, so a
// 16-stream plan over 4 shards costs 4 sub-aggregations plus 3 vector
// additions here, not 16 round trips at the client.
//
// The fan-out is optimistic: the first wave ships the caller's raw range
// and every shard clamps to its own streams; when all shards report the
// same chunk range — the common case, populations ingesting in step — the
// partials combine directly and the query cost one wave. Only on
// disagreement (or a shard-local clamp error) does the router fall back
// to the StreamInfo pre-pass that computes the globally clamped range and
// re-fan out pinned to it.
func (r *Router) aggRange(ctx context.Context, rt *routing, m *wire.AggRange) wire.Message {
	if len(m.UUIDs) == 0 {
		return &wire.Error{Code: wire.CodeBadRequest, Msg: "server: no streams given"}
	}
	groupOrder, groups, states := r.shardGroups(rt, m.UUIDs)
	if len(groupOrder) == 1 {
		return r.route(ctx, rt, m.UUIDs[0], m)
	}
	if resp, ok := r.aggWave(ctx, groupOrder, groups, states, m, m.Te); ok {
		return resp
	}
	// Shards disagreed (uneven ingest) or one failed its local clamp:
	// compute the common range and retry with every shard pinned to it.
	te, errResp := r.clampMulti(ctx, rt, m.UUIDs, m.Ts, m.Te)
	if errResp != nil {
		return errResp
	}
	resp, _ := r.aggWave(ctx, groupOrder, groups, states, m, te)
	return resp
}

// aggWave runs one fan-out wave of an AggRange with the given end bound
// and merges the shard partials. ok = false reports a recoverable
// disagreement — the shards clamped to different ranges (or one failed
// its local clamp) and the caller should retry with a pinned common
// range. Cancellation and non-range errors return ok = true; retrying
// cannot help those.
func (r *Router) aggWave(ctx context.Context, groupOrder []string, groups map[string][]string, states map[string]*shardState, m *wire.AggRange, te int64) (wire.Message, bool) {
	results := make([]wire.Message, len(groupOrder))
	var wg sync.WaitGroup
	for i, owner := range groupOrder {
		wg.Add(1)
		go func(i int, s *shardState, uuids []string) {
			defer wg.Done()
			results[i] = r.fanout(ctx, s, &wire.AggRange{
				UUIDs: uuids, Ts: m.Ts, Te: te, WindowChunks: m.WindowChunks, Elems: m.Elems})
		}(i, states[owner], groups[owner])
	}
	if e := awaitFanout(ctx, &wg); e != nil {
		return e, true
	}

	var merged *wire.AggRangeResp
	for _, resp := range results {
		part, ok := resp.(*wire.AggRangeResp)
		if !ok {
			if e, isErr := resp.(*wire.Error); isErr {
				// A bad-request from one shard may just be its local
				// clamp finding no data in the optimistic range; the
				// pinned retry resolves whether the query is really
				// empty.
				return e, e.Code != wire.CodeBadRequest
			}
			return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("cluster: unexpected aggregate response %T", resp)}, true
		}
		if merged == nil {
			merged = &wire.AggRangeResp{FromChunk: part.FromChunk, ToChunk: part.ToChunk,
				Epoch: part.Epoch, Interval: part.Interval,
				StreamCount: part.StreamCount, Windows: part.Windows}
			continue
		}
		if part.Epoch != merged.Epoch || part.Interval != merged.Interval {
			// Two shards clamped possibly-identical chunk ranges over
			// DIFFERENT time geometries: the member streams do not form a
			// combinable set. Never sum these; the geometry pre-pass
			// produces the canonical bad-request naming the offenders.
			return &wire.Error{Code: wire.CodeBadRequest,
				Msg: "cluster: member stream geometries differ"}, false
		}
		if part.FromChunk != merged.FromChunk || part.ToChunk != merged.ToChunk || len(part.Windows) != len(merged.Windows) {
			// Shards clamped differently: uneven ingest across the
			// population, recoverable by pinning the common range.
			return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf(
				"cluster: shard windows disagree ([%d,%d)x%d vs [%d,%d)x%d)",
				part.FromChunk, part.ToChunk, len(part.Windows),
				merged.FromChunk, merged.ToChunk, len(merged.Windows))}, false
		}
		merged.StreamCount += part.StreamCount
		if e := sumWindows(merged.Windows, part.Windows); e != nil {
			return e, true
		}
	}
	return merged, true
}
