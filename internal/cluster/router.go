package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/server"
	"repro/internal/wire"
)

// Shard names one engine shard and its request handler: an in-process
// *server.Engine, a remote engine via NewTCPShard, or any other
// server.Handler.
type Shard struct {
	Name    string
	Handler server.Handler
}

// Options tunes router construction.
type Options struct {
	// VirtualNodes per shard on the consistent-hash ring; <= 0 means
	// DefaultVirtualNodes.
	VirtualNodes int
}

// Router routes protocol requests to the engine shard owning each stream
// and fans out cross-shard operations. It implements server.Handler (serve
// it with server.NewServer) and the client Transport contract (drive it
// with an unmodified Owner/Consumer). Safe for concurrent use.
type Router struct {
	ring   *Ring
	shards map[string]*shardState
	order  []string
}

type shardState struct {
	name     string
	handler  server.Handler
	requests atomic.Uint64 // directly routed requests
	fanouts  atomic.Uint64 // sub-requests from cross-shard fan-outs
	errors   atomic.Uint64 // *wire.Error responses observed
}

// ShardStats is one shard's observability snapshot.
type ShardStats struct {
	Name     string
	Requests uint64 // directly routed requests
	Fanouts  uint64 // sub-requests issued by cross-shard fan-outs
	Errors   uint64 // error responses returned by the shard
}

// NewRouter builds a router over the given shards.
func NewRouter(shards []Shard, opts Options) (*Router, error) {
	names := make([]string, 0, len(shards))
	states := make(map[string]*shardState, len(shards))
	for _, sh := range shards {
		if sh.Handler == nil {
			return nil, fmt.Errorf("cluster: shard %q has nil handler", sh.Name)
		}
		if _, dup := states[sh.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard %q", sh.Name)
		}
		names = append(names, sh.Name)
		states[sh.Name] = &shardState{name: sh.Name, handler: sh.Handler}
	}
	ring, err := NewRing(names, opts.VirtualNodes)
	if err != nil {
		return nil, err
	}
	return &Router{ring: ring, shards: states, order: names}, nil
}

// Owner returns the name of the shard owning a stream UUID.
func (r *Router) Owner(uuid string) string { return r.ring.Owner(uuid) }

// Shards returns the shard names in construction order.
func (r *Router) Shards() []string { return append([]string(nil), r.order...) }

// Stats snapshots per-shard request counters.
func (r *Router) Stats() []ShardStats {
	out := make([]ShardStats, 0, len(r.order))
	for _, name := range r.order {
		s := r.shards[name]
		out = append(out, ShardStats{
			Name:     s.name,
			Requests: s.requests.Load(),
			Fanouts:  s.fanouts.Load(),
			Errors:   s.errors.Load(),
		})
	}
	return out
}

// RoundTrip implements the client Transport contract in-process.
func (r *Router) RoundTrip(req wire.Message) (wire.Message, error) {
	return r.Handle(req), nil
}

// Close implements the client Transport contract: it closes every shard
// handler that holds resources (remote shards).
func (r *Router) Close() error {
	var first error
	for _, name := range r.order {
		if c, ok := r.shards[name].handler.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Handle implements server.Handler: single-stream requests go to the
// owning shard; StatRange and ListStreams may fan out.
func (r *Router) Handle(req wire.Message) wire.Message {
	switch m := req.(type) {
	case *wire.StatRange:
		return r.statRange(m)
	case *wire.ListStreams:
		return r.listStreams()
	default:
		uuid, ok := requestUUID(req)
		if !ok {
			return &wire.Error{Code: wire.CodeBadRequest, Msg: "unsupported request type"}
		}
		return r.route(uuid, req)
	}
}

// requestUUID extracts the routing key of a single-stream request.
func requestUUID(req wire.Message) (string, bool) {
	switch m := req.(type) {
	case *wire.CreateStream:
		return m.UUID, true
	case *wire.DeleteStream:
		return m.UUID, true
	case *wire.InsertChunk:
		return m.UUID, true
	case *wire.GetRange:
		return m.UUID, true
	case *wire.DeleteRange:
		return m.UUID, true
	case *wire.Rollup:
		return m.UUID, true
	case *wire.PutGrant:
		return m.UUID, true
	case *wire.GetGrants:
		return m.UUID, true
	case *wire.DeleteGrant:
		return m.UUID, true
	case *wire.PutEnvelopes:
		return m.UUID, true
	case *wire.GetEnvelopes:
		return m.UUID, true
	case *wire.StreamInfo:
		return m.UUID, true
	case *wire.StageRecord:
		return m.UUID, true
	case *wire.GetStaged:
		return m.UUID, true
	default:
		return "", false
	}
}

func (r *Router) route(uuid string, req wire.Message) wire.Message {
	s := r.shards[r.ring.Owner(uuid)]
	s.requests.Add(1)
	resp := s.handler.Handle(req)
	if _, isErr := resp.(*wire.Error); isErr {
		s.errors.Add(1)
	}
	return resp
}

// fanout sends one sub-request to a shard, counting it against the shard's
// fan-out and error totals.
func (r *Router) fanout(s *shardState, req wire.Message) wire.Message {
	s.fanouts.Add(1)
	resp := s.handler.Handle(req)
	if _, isErr := resp.(*wire.Error); isErr {
		s.errors.Add(1)
	}
	return resp
}

// listStreams merges the stream listings of every shard.
func (r *Router) listStreams() wire.Message {
	type result struct{ resp wire.Message }
	results := make([]result, len(r.order))
	var wg sync.WaitGroup
	for i, name := range r.order {
		wg.Add(1)
		go func(i int, s *shardState) {
			defer wg.Done()
			results[i].resp = r.fanout(s, &wire.ListStreams{})
		}(i, r.shards[name])
	}
	wg.Wait()
	var uuids []string
	for _, res := range results {
		switch m := res.resp.(type) {
		case *wire.ListStreamsResp:
			uuids = append(uuids, m.UUIDs...)
		case *wire.Error:
			return m
		default:
			return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("cluster: unexpected listing response %T", res.resp)}
		}
	}
	sort.Strings(uuids)
	return &wire.ListStreamsResp{UUIDs: uuids}
}

// statRange routes a statistical query. Queries whose streams all live on
// one shard pass straight through; cross-shard queries are clamped to the
// common ingested range, fanned out per shard, and homomorphically summed.
func (r *Router) statRange(m *wire.StatRange) wire.Message {
	if len(m.UUIDs) == 0 {
		return &wire.Error{Code: wire.CodeBadRequest, Msg: "server: no streams given"}
	}
	groups := make(map[string][]string)
	var groupOrder []string
	for _, uuid := range m.UUIDs {
		owner := r.ring.Owner(uuid)
		if _, seen := groups[owner]; !seen {
			groupOrder = append(groupOrder, owner)
		}
		groups[owner] = append(groups[owner], uuid)
	}
	if len(groupOrder) == 1 {
		return r.route(m.UUIDs[0], m)
	}

	// Pre-pass: fetch geometry and ingest progress for every stream so
	// each shard can be handed a range clamped identically — the engine
	// clamps multi-stream queries to the shortest stream, and the router
	// must preserve that across shards. The lookups are independent, so
	// fetch them concurrently (deduplicated: a UUID may repeat).
	unique := make([]string, 0, len(m.UUIDs))
	seen := make(map[string]bool, len(m.UUIDs))
	for _, uuid := range m.UUIDs {
		if !seen[uuid] {
			seen[uuid] = true
			unique = append(unique, uuid)
		}
	}
	infos := make([]wire.Message, len(unique))
	var infoWG sync.WaitGroup
	for i, uuid := range unique {
		infoWG.Add(1)
		go func(i int, uuid string) {
			defer infoWG.Done()
			// Counted as fan-out traffic: these are internal
			// sub-requests of the cross-shard query, not directly
			// routed client requests.
			infos[i] = r.fanout(r.shards[r.ring.Owner(uuid)], &wire.StreamInfo{UUID: uuid})
		}(i, uuid)
	}
	infoWG.Wait()
	var (
		epoch, interval int64
		vectorLen       uint32
		minCount        uint64
	)
	first := unique[0]
	for i, resp := range infos {
		info, ok := resp.(*wire.StreamInfoResp)
		if !ok {
			if e, isErr := resp.(*wire.Error); isErr {
				return e
			}
			return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("cluster: unexpected info response %T", resp)}
		}
		if i == 0 {
			epoch, interval, vectorLen = info.Cfg.Epoch, info.Cfg.Interval, info.Cfg.VectorLen
			minCount = info.Count
			continue
		}
		if info.Cfg.Epoch != epoch || info.Cfg.Interval != interval || info.Cfg.VectorLen != vectorLen {
			return &wire.Error{Code: wire.CodeBadRequest, Msg: fmt.Sprintf(
				"server: stream %q geometry differs from %q (inter-stream queries need matching epoch/interval/digest)", unique[i], first)}
		}
		if info.Count < minCount {
			minCount = info.Count
		}
	}
	if minCount == 0 {
		return &wire.Error{Code: wire.CodeBadRequest, Msg: "server: no common ingested range across streams"}
	}
	te := m.Te
	if maxTe := epoch + int64(minCount)*interval; te > maxTe {
		te = maxTe
	}
	if te <= m.Ts {
		return &wire.Error{Code: wire.CodeBadRequest, Msg: fmt.Sprintf("server: no ingested chunks in range [%d,%d)", m.Ts, m.Te)}
	}

	// Fan out one sub-query per shard; every shard sees the same clamped
	// range and therefore computes the same chunk window.
	results := make([]wire.Message, len(groupOrder))
	var wg sync.WaitGroup
	for i, owner := range groupOrder {
		wg.Add(1)
		go func(i int, s *shardState, uuids []string) {
			defer wg.Done()
			results[i] = r.fanout(s, &wire.StatRange{UUIDs: uuids, Ts: m.Ts, Te: te, WindowChunks: m.WindowChunks})
		}(i, r.shards[owner], groups[owner])
	}
	wg.Wait()

	var merged *wire.StatRangeResp
	for _, resp := range results {
		part, ok := resp.(*wire.StatRangeResp)
		if !ok {
			if e, isErr := resp.(*wire.Error); isErr {
				return e
			}
			return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("cluster: unexpected stat response %T", resp)}
		}
		if merged == nil {
			merged = &wire.StatRangeResp{FromChunk: part.FromChunk, ToChunk: part.ToChunk, Windows: part.Windows}
			continue
		}
		if part.FromChunk != merged.FromChunk || part.ToChunk != merged.ToChunk || len(part.Windows) != len(merged.Windows) {
			return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf(
				"cluster: shard windows disagree ([%d,%d)x%d vs [%d,%d)x%d)",
				part.FromChunk, part.ToChunk, len(part.Windows),
				merged.FromChunk, merged.ToChunk, len(merged.Windows))}
		}
		for w := range merged.Windows {
			if len(part.Windows[w]) != len(merged.Windows[w]) {
				return &wire.Error{Code: wire.CodeInternal, Msg: "cluster: shard window vectors disagree"}
			}
			for x := range merged.Windows[w] {
				merged.Windows[w][x] += part.Windows[w][x]
			}
		}
	}
	return merged
}
