package cluster

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/server"
	"repro/internal/wire"
)

// Shard names one engine shard and its request handler: an in-process
// *server.Engine, a remote engine via NewTCPShard, or any other
// server.Handler.
type Shard struct {
	Name    string
	Handler server.Handler
}

// Options tunes router construction.
type Options struct {
	// VirtualNodes per shard on the consistent-hash ring; <= 0 means
	// DefaultVirtualNodes.
	VirtualNodes int
}

// Router routes protocol requests to the engine shard owning each stream
// and fans out cross-shard operations. It implements server.Handler (serve
// it with server.NewServer) and the client Transport contract (drive it
// with an unmodified Owner/Consumer). Safe for concurrent use.
type Router struct {
	ring   *Ring
	shards map[string]*shardState
	order  []string
}

type shardState struct {
	name     string
	handler  server.Handler
	requests atomic.Uint64 // directly routed requests
	fanouts  atomic.Uint64 // sub-requests from cross-shard fan-outs
	errors   atomic.Uint64 // *wire.Error responses observed
}

// ShardStats is one shard's observability snapshot.
type ShardStats struct {
	Name     string
	Requests uint64 // directly routed requests
	Fanouts  uint64 // sub-requests issued by cross-shard fan-outs
	Errors   uint64 // error responses returned by the shard
}

// NewRouter builds a router over the given shards.
func NewRouter(shards []Shard, opts Options) (*Router, error) {
	names := make([]string, 0, len(shards))
	states := make(map[string]*shardState, len(shards))
	for _, sh := range shards {
		if sh.Handler == nil {
			return nil, fmt.Errorf("cluster: shard %q has nil handler", sh.Name)
		}
		if _, dup := states[sh.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard %q", sh.Name)
		}
		names = append(names, sh.Name)
		states[sh.Name] = &shardState{name: sh.Name, handler: sh.Handler}
	}
	ring, err := NewRing(names, opts.VirtualNodes)
	if err != nil {
		return nil, err
	}
	return &Router{ring: ring, shards: states, order: names}, nil
}

// Owner returns the name of the shard owning a stream UUID.
func (r *Router) Owner(uuid string) string { return r.ring.Owner(uuid) }

// Shards returns the shard names in construction order.
func (r *Router) Shards() []string { return append([]string(nil), r.order...) }

// Stats snapshots per-shard request counters.
func (r *Router) Stats() []ShardStats {
	out := make([]ShardStats, 0, len(r.order))
	for _, name := range r.order {
		s := r.shards[name]
		out = append(out, ShardStats{
			Name:     s.name,
			Requests: s.requests.Load(),
			Fanouts:  s.fanouts.Load(),
			Errors:   s.errors.Load(),
		})
	}
	return out
}

// RoundTrip implements the client Transport contract in-process.
func (r *Router) RoundTrip(ctx context.Context, req wire.Message) (wire.Message, error) {
	return r.Handle(ctx, req), nil
}

// Close implements the client Transport contract: it closes every shard
// handler that holds resources (remote shards).
func (r *Router) Close() error {
	var first error
	for _, name := range r.order {
		if c, ok := r.shards[name].handler.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Handle implements server.Handler: single-stream requests go to the
// owning shard; StatRange, ListStreams, and Batch may fan out. A canceled
// context aborts in-flight fan-outs promptly: the router stops waiting and
// answers wire.CodeCanceled even while slow shards are still working.
func (r *Router) Handle(ctx context.Context, req wire.Message) wire.Message {
	if err := ctx.Err(); err != nil {
		return canceled(err)
	}
	switch m := req.(type) {
	case *wire.StatRange:
		return r.statRange(ctx, m)
	case *wire.AggRange:
		return r.aggRange(ctx, m)
	case *wire.ListStreams:
		return r.listStreams(ctx)
	case *wire.Batch:
		return r.batch(ctx, m)
	default:
		uuid, ok := wire.RoutingUUID(req)
		if !ok {
			return &wire.Error{Code: wire.CodeBadRequest, Msg: "unsupported request type"}
		}
		return r.route(ctx, uuid, req)
	}
}

func canceled(err error) *wire.Error {
	return &wire.Error{Code: wire.CodeCanceled, Msg: "cluster: " + err.Error()}
}

// awaitFanout waits for a fan-out wave to finish or the caller to give up,
// whichever comes first. It returns nil once all goroutines have completed,
// or the cancellation response to send while stragglers (which received the
// same ctx and will abort on their own) are abandoned.
func awaitFanout(ctx context.Context, wg *sync.WaitGroup) *wire.Error {
	if ctx.Done() == nil {
		// Not cancelable (the in-process hot path): skip the waiter
		// goroutine and channel.
		wg.Wait()
		return nil
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return canceled(ctx.Err())
	}
}

func (r *Router) route(ctx context.Context, uuid string, req wire.Message) wire.Message {
	s := r.shards[r.ring.Owner(uuid)]
	s.requests.Add(1)
	resp := s.handler.Handle(ctx, req)
	if _, isErr := resp.(*wire.Error); isErr {
		s.errors.Add(1)
	}
	return resp
}

// fanout sends one sub-request to a shard, counting it against the shard's
// fan-out and error totals.
func (r *Router) fanout(ctx context.Context, s *shardState, req wire.Message) wire.Message {
	s.fanouts.Add(1)
	resp := s.handler.Handle(ctx, req)
	if _, isErr := resp.(*wire.Error); isErr {
		s.errors.Add(1)
	}
	return resp
}

// listStreams merges the stream listings of every shard.
func (r *Router) listStreams(ctx context.Context) wire.Message {
	type result struct{ resp wire.Message }
	results := make([]result, len(r.order))
	var wg sync.WaitGroup
	for i, name := range r.order {
		wg.Add(1)
		go func(i int, s *shardState) {
			defer wg.Done()
			results[i].resp = r.fanout(ctx, s, &wire.ListStreams{})
		}(i, r.shards[name])
	}
	if e := awaitFanout(ctx, &wg); e != nil {
		return e
	}
	var uuids []string
	for _, res := range results {
		switch m := res.resp.(type) {
		case *wire.ListStreamsResp:
			uuids = append(uuids, m.UUIDs...)
		case *wire.Error:
			return m
		default:
			return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("cluster: unexpected listing response %T", res.resp)}
		}
	}
	sort.Strings(uuids)
	return &wire.ListStreamsResp{UUIDs: uuids}
}

// batch splits a pipelined batch by owning shard, forwards one sub-batch
// per shard concurrently (per-stream request order is preserved inside each
// sub-batch), and reassembles the responses in request order. Sub-requests
// that themselves fan out (multi-stream StatRange, ListStreams) are
// dispatched individually.
func (r *Router) batch(ctx context.Context, b *wire.Batch) wire.Message {
	resps := make([]wire.Message, len(b.Reqs))
	p := wire.PartitionBatch(b.Reqs, func(m wire.Message) (string, bool) {
		uuid, ok := wire.RoutingUUID(m)
		if !ok {
			return "", false
		}
		return r.ring.Owner(uuid), true
	})
	for _, i := range p.Nested {
		resps[i] = &wire.Error{Code: wire.CodeBadRequest, Msg: "nested batch envelope"}
	}
	var wg sync.WaitGroup
	for _, owner := range p.Order {
		idxs := p.Groups[owner]
		s := r.shards[owner]
		wg.Add(1)
		go func(s *shardState, idxs []int) {
			defer wg.Done()
			sub := &wire.Batch{Reqs: make([]wire.Message, len(idxs))}
			for k, i := range idxs {
				sub.Reqs[k] = b.Reqs[i]
			}
			s.requests.Add(uint64(len(idxs)))
			resp := s.handler.Handle(ctx, sub)
			switch m := resp.(type) {
			case *wire.BatchResp:
				if len(m.Resps) != len(idxs) {
					e := &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf(
						"cluster: shard %s answered %d of %d batch elements", s.name, len(m.Resps), len(idxs))}
					for _, i := range idxs {
						resps[i] = e
					}
					s.errors.Add(1)
					return
				}
				for k, i := range idxs {
					resps[i] = m.Resps[k]
					if _, isErr := m.Resps[k].(*wire.Error); isErr {
						s.errors.Add(1)
					}
				}
			case *wire.Error:
				s.errors.Add(1)
				for _, i := range idxs {
					resps[i] = m
				}
			default:
				s.errors.Add(1)
				e := &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("cluster: unexpected batch response %T", resp)}
				for _, i := range idxs {
					resps[i] = e
				}
			}
		}(s, idxs)
	}
	for _, i := range p.Singles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i] = r.Handle(ctx, b.Reqs[i])
		}(i)
	}
	if e := awaitFanout(ctx, &wg); e != nil {
		return e
	}
	return &wire.BatchResp{Resps: resps}
}

// shardGroups partitions a query's stream set by owning shard, preserving
// first-seen order.
func (r *Router) shardGroups(uuids []string) (order []string, groups map[string][]string) {
	groups = make(map[string][]string)
	for _, uuid := range uuids {
		owner := r.ring.Owner(uuid)
		if _, seen := groups[owner]; !seen {
			order = append(order, owner)
		}
		groups[owner] = append(groups[owner], uuid)
	}
	return order, groups
}

// clampMulti is the cross-shard pre-pass of a multi-stream query: it
// fetches geometry and ingest progress for every stream so each shard can
// be handed a range clamped identically — the engine clamps multi-stream
// queries to the shortest stream, and the router must preserve that across
// shards. The lookups are independent, so they are fetched concurrently
// (deduplicated: a UUID may repeat). It returns the clamped te; a non-nil
// message is the error response.
func (r *Router) clampMulti(ctx context.Context, uuids []string, ts, te int64) (int64, wire.Message) {
	unique := make([]string, 0, len(uuids))
	seen := make(map[string]bool, len(uuids))
	for _, uuid := range uuids {
		if !seen[uuid] {
			seen[uuid] = true
			unique = append(unique, uuid)
		}
	}
	infos := make([]wire.Message, len(unique))
	var infoWG sync.WaitGroup
	for i, uuid := range unique {
		infoWG.Add(1)
		go func(i int, uuid string) {
			defer infoWG.Done()
			// Counted as fan-out traffic: these are internal
			// sub-requests of the cross-shard query, not directly
			// routed client requests.
			infos[i] = r.fanout(ctx, r.shards[r.ring.Owner(uuid)], &wire.StreamInfo{UUID: uuid})
		}(i, uuid)
	}
	if e := awaitFanout(ctx, &infoWG); e != nil {
		return 0, e
	}
	var (
		epoch, interval int64
		vectorLen       uint32
		minCount        uint64
	)
	first := unique[0]
	for i, resp := range infos {
		info, ok := resp.(*wire.StreamInfoResp)
		if !ok {
			if e, isErr := resp.(*wire.Error); isErr {
				return 0, e
			}
			return 0, &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("cluster: unexpected info response %T", resp)}
		}
		if i == 0 {
			epoch, interval, vectorLen = info.Cfg.Epoch, info.Cfg.Interval, info.Cfg.VectorLen
			minCount = info.Count
			continue
		}
		if info.Cfg.Epoch != epoch || info.Cfg.Interval != interval || info.Cfg.VectorLen != vectorLen {
			return 0, &wire.Error{Code: wire.CodeBadRequest, Msg: fmt.Sprintf(
				"server: stream %q geometry differs from %q (inter-stream queries need matching epoch/interval/digest)", unique[i], first)}
		}
		if info.Count < minCount {
			minCount = info.Count
		}
	}
	if minCount == 0 {
		return 0, &wire.Error{Code: wire.CodeBadRequest, Msg: "server: no common ingested range across streams"}
	}
	reqTe := te
	if maxTe := epoch + int64(minCount)*interval; te > maxTe {
		te = maxTe
	}
	if te <= ts {
		// Report the range the caller actually asked for, not the
		// clamped (possibly inverted) one.
		return 0, &wire.Error{Code: wire.CodeBadRequest, Msg: fmt.Sprintf("server: no ingested chunks in range [%d,%d)", ts, reqTe)}
	}
	return te, nil
}

// sumWindows folds one shard's partial window vectors into the merged
// aggregate (element-wise modular addition); the shards computed over the
// same clamped range, so any shape disagreement is an internal error.
func sumWindows(merged, part [][]uint64) *wire.Error {
	for w := range merged {
		if len(part[w]) != len(merged[w]) {
			return &wire.Error{Code: wire.CodeInternal, Msg: "cluster: shard window vectors disagree"}
		}
		for x := range merged[w] {
			merged[w][x] += part[w][x]
		}
	}
	return nil
}

// statRange routes a statistical query. Queries whose streams all live on
// one shard pass straight through; cross-shard queries are clamped to the
// common ingested range, fanned out per shard, and homomorphically summed.
func (r *Router) statRange(ctx context.Context, m *wire.StatRange) wire.Message {
	if len(m.UUIDs) == 0 {
		return &wire.Error{Code: wire.CodeBadRequest, Msg: "server: no streams given"}
	}
	groupOrder, groups := r.shardGroups(m.UUIDs)
	if len(groupOrder) == 1 {
		return r.route(ctx, m.UUIDs[0], m)
	}
	te, errResp := r.clampMulti(ctx, m.UUIDs, m.Ts, m.Te)
	if errResp != nil {
		return errResp
	}

	// Fan out one sub-query per shard; every shard sees the same clamped
	// range and therefore computes the same chunk window.
	results := make([]wire.Message, len(groupOrder))
	var wg sync.WaitGroup
	for i, owner := range groupOrder {
		wg.Add(1)
		go func(i int, s *shardState, uuids []string) {
			defer wg.Done()
			results[i] = r.fanout(ctx, s, &wire.StatRange{UUIDs: uuids, Ts: m.Ts, Te: te, WindowChunks: m.WindowChunks})
		}(i, r.shards[owner], groups[owner])
	}
	if e := awaitFanout(ctx, &wg); e != nil {
		return e
	}

	var merged *wire.StatRangeResp
	for _, resp := range results {
		part, ok := resp.(*wire.StatRangeResp)
		if !ok {
			if e, isErr := resp.(*wire.Error); isErr {
				return e
			}
			return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("cluster: unexpected stat response %T", resp)}
		}
		if merged == nil {
			merged = &wire.StatRangeResp{FromChunk: part.FromChunk, ToChunk: part.ToChunk, Windows: part.Windows}
			continue
		}
		if part.FromChunk != merged.FromChunk || part.ToChunk != merged.ToChunk || len(part.Windows) != len(merged.Windows) {
			return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf(
				"cluster: shard windows disagree ([%d,%d)x%d vs [%d,%d)x%d)",
				part.FromChunk, part.ToChunk, len(part.Windows),
				merged.FromChunk, merged.ToChunk, len(merged.Windows))}
		}
		if e := sumWindows(merged.Windows, part.Windows); e != nil {
			return e
		}
	}
	return merged
}

// aggRange routes a typed query plan: the stream set is split by owning
// shard, each shard homomorphically sums (and projects) its own members'
// digests, and the router combines the partial ciphertext aggregates
// shard-side — the combine tree mirrors the cluster topology, so a
// 16-stream plan over 4 shards costs 4 sub-aggregations plus 3 vector
// additions here, not 16 round trips at the client.
//
// The fan-out is optimistic: the first wave ships the caller's raw range
// and every shard clamps to its own streams; when all shards report the
// same chunk range — the common case, populations ingesting in step — the
// partials combine directly and the query cost one wave. Only on
// disagreement (or a shard-local clamp error) does the router fall back
// to the StreamInfo pre-pass that computes the globally clamped range and
// re-fan out pinned to it.
func (r *Router) aggRange(ctx context.Context, m *wire.AggRange) wire.Message {
	if len(m.UUIDs) == 0 {
		return &wire.Error{Code: wire.CodeBadRequest, Msg: "server: no streams given"}
	}
	groupOrder, groups := r.shardGroups(m.UUIDs)
	if len(groupOrder) == 1 {
		return r.route(ctx, m.UUIDs[0], m)
	}
	if resp, ok := r.aggWave(ctx, groupOrder, groups, m, m.Te); ok {
		return resp
	}
	// Shards disagreed (uneven ingest) or one failed its local clamp:
	// compute the common range and retry with every shard pinned to it.
	te, errResp := r.clampMulti(ctx, m.UUIDs, m.Ts, m.Te)
	if errResp != nil {
		return errResp
	}
	resp, _ := r.aggWave(ctx, groupOrder, groups, m, te)
	return resp
}

// aggWave runs one fan-out wave of an AggRange with the given end bound
// and merges the shard partials. ok = false reports a recoverable
// disagreement — the shards clamped to different ranges (or one failed
// its local clamp) and the caller should retry with a pinned common
// range. Cancellation and non-range errors return ok = true; retrying
// cannot help those.
func (r *Router) aggWave(ctx context.Context, groupOrder []string, groups map[string][]string, m *wire.AggRange, te int64) (wire.Message, bool) {
	results := make([]wire.Message, len(groupOrder))
	var wg sync.WaitGroup
	for i, owner := range groupOrder {
		wg.Add(1)
		go func(i int, s *shardState, uuids []string) {
			defer wg.Done()
			results[i] = r.fanout(ctx, s, &wire.AggRange{
				UUIDs: uuids, Ts: m.Ts, Te: te, WindowChunks: m.WindowChunks, Elems: m.Elems})
		}(i, r.shards[owner], groups[owner])
	}
	if e := awaitFanout(ctx, &wg); e != nil {
		return e, true
	}

	var merged *wire.AggRangeResp
	for _, resp := range results {
		part, ok := resp.(*wire.AggRangeResp)
		if !ok {
			if e, isErr := resp.(*wire.Error); isErr {
				// A bad-request from one shard may just be its local
				// clamp finding no data in the optimistic range; the
				// pinned retry resolves whether the query is really
				// empty.
				return e, e.Code != wire.CodeBadRequest
			}
			return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("cluster: unexpected aggregate response %T", resp)}, true
		}
		if merged == nil {
			merged = &wire.AggRangeResp{FromChunk: part.FromChunk, ToChunk: part.ToChunk,
				Epoch: part.Epoch, Interval: part.Interval,
				StreamCount: part.StreamCount, Windows: part.Windows}
			continue
		}
		if part.Epoch != merged.Epoch || part.Interval != merged.Interval {
			// Two shards clamped possibly-identical chunk ranges over
			// DIFFERENT time geometries: the member streams do not form a
			// combinable set. Never sum these; the geometry pre-pass
			// produces the canonical bad-request naming the offenders.
			return &wire.Error{Code: wire.CodeBadRequest,
				Msg: "cluster: member stream geometries differ"}, false
		}
		if part.FromChunk != merged.FromChunk || part.ToChunk != merged.ToChunk || len(part.Windows) != len(merged.Windows) {
			// Shards clamped differently: uneven ingest across the
			// population, recoverable by pinning the common range.
			return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf(
				"cluster: shard windows disagree ([%d,%d)x%d vs [%d,%d)x%d)",
				part.FromChunk, part.ToChunk, len(part.Windows),
				merged.FromChunk, merged.ToChunk, len(merged.Windows))}, false
		}
		merged.StreamCount += part.StreamCount
		if e := sumWindows(merged.Windows, part.Windows); e != nil {
			return e, true
		}
	}
	return merged, true
}
