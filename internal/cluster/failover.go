package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/wire"
)

// A ReplicatedShard routes one ring position's traffic to the current
// leader of a replication group and fails over when that leader dies:
//
//  1. Detection: a transport failure against the leader (dial refused or
//     session broken, after the facade's own redial) starts a failover.
//  2. Grace: the group is probed with LeaseInfo; if any member already
//     answers as leader at a fresh epoch, it is adopted. Otherwise the
//     old leader's lease is waited out — its followers may still be
//     inside a lease granted to a leader that is alive but unreachable
//     from here.
//  3. Promotion: the most-advanced reachable member (highest epoch, then
//     highest replication watermark) is promoted with a strictly higher
//     epoch. Losing an election race (another router promoted first)
//     surfaces as CodeWrongShard carrying the winning epoch; the loser
//     adopts it.
//
// Reads are retried transparently against the new leader. Writes are
// not: a write in flight when the leader died has an unknown outcome
// (same contract as tcpShard), so it surfaces as an error and the caller
// decides whether re-executing is safe. Writes refused with
// CodeNotLeader were NOT applied and are always safe to replay against
// the referred leader.
type ReplicatedShard struct {
	name string
	opts client.SessionOptions
	logf func(string, ...any)
	// callTimeout bounds each attempt of one request (0 = only the
	// caller's context). With it, a leader that is alive but blackholed —
	// a partition, not a crash, so the connection never breaks — turns
	// into a per-attempt deadline while the caller's context is still
	// live, which routes into the failover path instead of hanging the
	// client until its own deadline.
	callTimeout time.Duration

	// failoverMu serializes probe/promote cycles so a burst of broken
	// calls elects one leader, not one per request.
	failoverMu sync.Mutex

	mu      sync.Mutex
	closed  bool
	members []string // replication group member addresses
	leader  string   // address conn currently points at
	epoch   uint64   // highest replication epoch observed
	lease   time.Duration
	conn    *client.TCP
	gen     uint64 // bumped on every leader change; stale-gen failovers no-op
	// quorum marks the group as quorum-acknowledged (configured, or
	// observed from any member's LeaseInfo mode). Promotion then requires
	// a reachable majority and fences the non-candidates first, so a
	// minority-side ex-leader can neither keep acknowledging nor be
	// re-adopted with a stale history.
	quorum bool
	// requiredWM is the lowest watermark a leader must prove before this
	// router adopts it in quorum mode: raised when a promotion's fence
	// acks reveal records the promoted candidate does not hold.
	requiredWM uint64
}

// defaultGroupLease mirrors the replica package's default lease, used
// until the group reports its configured one.
const defaultGroupLease = 3 * time.Second

// maxFailoverAttempts bounds one request's referral-following loop.
const maxFailoverAttempts = 4

// probeTimeout bounds one member's LeaseInfo round trip during failover.
const probeTimeout = 2 * time.Second

// GroupOptions parameterizes a replicated shard beyond the common case.
type GroupOptions struct {
	// InFlight bounds in-flight requests per connection as in NewTCPShard.
	InFlight int
	// Logf receives failover logs (nil discards them).
	Logf func(string, ...any)
	// NetDial overrides how group members are dialed (probes, promotions,
	// and the shard's leader connection alike); test harnesses inject
	// fault-injecting dialers (internal/netchaos) here. Nil means TCP.
	NetDial func(addr string) (net.Conn, error)
	// Quorum declares the group quorum-acknowledged up front. The router
	// also learns this from any member's LeaseInfo, so the flag only
	// matters before the first successful probe.
	Quorum bool
	// CallTimeout bounds each attempt of one request; see
	// ReplicatedShard.callTimeout. 0 disables the per-attempt bound.
	CallTimeout time.Duration
}

// NewReplicatedShard dials a replication group and returns it as a
// routable shard bound to the group's current leader. members lists the
// group's addresses (leader position unknown — it is discovered);
// inflight bounds in-flight requests per connection as in NewTCPShard.
// A nil logf discards failover logs.
func NewReplicatedShard(name string, members []string, inflight int, logf func(string, ...any)) (Shard, error) {
	return NewReplicatedShardOptions(name, members, GroupOptions{InFlight: inflight, Logf: logf})
}

// NewReplicatedShardOptions is NewReplicatedShard with full options.
func NewReplicatedShardOptions(name string, members []string, o GroupOptions) (Shard, error) {
	if len(members) == 0 {
		return Shard{}, fmt.Errorf("cluster: replicated shard %q has no members", name)
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rs := &ReplicatedShard{
		name:        name,
		opts:        client.SessionOptions{Window: o.InFlight, NetDial: o.NetDial},
		logf:        logf,
		callTimeout: o.CallTimeout,
		members:     append([]string(nil), members...),
		lease:       defaultGroupLease,
		quorum:      o.Quorum,
	}
	if err := rs.failover(context.Background(), 0); err != nil {
		return Shard{}, fmt.Errorf("cluster: replicated shard %q: %w", name, err)
	}
	return Shard{Name: name, Handler: rs}, nil
}

// memberView is one group member's answer to a LeaseInfo probe.
type memberView struct {
	addr      string
	role      uint8
	epoch     uint64
	watermark uint64
	leaseMS   int64
	leader    string
	members   []string
	mode      uint8
}

// probeMember asks one member for its lease view over a throwaway
// connection (the member may be mid-crash; the shard's main connection
// must not be disturbed).
func probeMember(ctx context.Context, addr string, opts client.SessionOptions) (memberView, error) {
	tr, err := client.DialTCPOptions(addr, opts)
	if err != nil {
		return memberView{}, err
	}
	defer tr.Close()
	pctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	resp, err := tr.RoundTrip(pctx, &wire.LeaseInfo{})
	if err != nil {
		return memberView{}, err
	}
	li, ok := resp.(*wire.LeaseInfoResp)
	if !ok {
		return memberView{}, fmt.Errorf("unexpected lease response %T", resp)
	}
	return memberView{
		addr: addr, role: li.Role, epoch: li.Epoch, watermark: li.Watermark,
		leaseMS: li.LeaseMS, leader: li.Leader, members: li.Members, mode: li.Mode,
	}, nil
}

// probe surveys the group and returns every reachable member's view plus
// the address of a live leader at the highest epoch seen, "" when no
// member answers as leader. A lone standalone member counts as its own
// leader (an unreplicated shard wrapped for uniformity).
func (rs *ReplicatedShard) probe(ctx context.Context, members []string) (views []memberView, leaderAddr string, leaderEpoch uint64) {
	for _, addr := range members {
		v, err := probeMember(ctx, addr, rs.opts)
		if err != nil {
			continue
		}
		views = append(views, v)
		isLeader := v.role == wire.ReplLeader ||
			(v.role == wire.ReplStandalone && len(members) == 1)
		if isLeader && (leaderAddr == "" || v.epoch > leaderEpoch) {
			leaderAddr, leaderEpoch = v.addr, v.epoch
		}
	}
	return views, leaderAddr, leaderEpoch
}

// adopt switches the shard's connection to a new leader and absorbs what
// it reports about the group (lease length, membership).
func (rs *ReplicatedShard) adopt(addr string, epoch uint64, view *memberView) error {
	conn, err := client.DialTCPOptions(addr, rs.opts)
	if err != nil {
		return fmt.Errorf("dialing leader %s: %w", addr, err)
	}
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		conn.Close()
		return errors.New("transport closed")
	}
	old := rs.conn
	rs.conn = conn
	rs.leader = addr
	if epoch > rs.epoch {
		rs.epoch = epoch
	}
	if view != nil {
		if view.leaseMS > 0 {
			rs.lease = time.Duration(view.leaseMS) * time.Millisecond
		}
		if len(view.members) > 0 {
			rs.members = mergeMembers(rs.members, view.members)
		}
	}
	rs.gen++
	rs.mu.Unlock()
	if old != nil {
		old.Close()
	}
	rs.logf("cluster: shard %s: leader is %s (epoch %d)", rs.name, addr, epoch)
	return nil
}

// mergeMembers unions the known member set with a leader-reported one,
// keeping first-seen order (addresses are stable identifiers here).
func mergeMembers(known, reported []string) []string {
	seen := make(map[string]bool, len(known)+len(reported))
	out := make([]string, 0, len(known)+len(reported))
	for _, lists := range [][]string{known, reported} {
		for _, addr := range lists {
			if addr != "" && !seen[addr] {
				seen[addr] = true
				out = append(out, addr)
			}
		}
	}
	return out
}

// failover finds or elects a leader. gen names the leader generation the
// caller observed failing; if the shard has already moved past it, the
// failover is a no-op (another request repaired the group first).
func (rs *ReplicatedShard) failover(ctx context.Context, gen uint64) error {
	rs.failoverMu.Lock()
	defer rs.failoverMu.Unlock()
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return errors.New("transport closed")
	}
	if gen != rs.gen {
		rs.mu.Unlock()
		return nil
	}
	members := append([]string(nil), rs.members...)
	lease := rs.lease
	known := rs.epoch
	quorum := rs.quorum
	requiredWM := rs.requiredWM
	rs.mu.Unlock()

	// The old leader's lease must expire before anyone is promoted over
	// it: until then the group may just be partitioned from this router.
	graceOver := time.Now().Add(lease)
	for round := 0; ; round++ {
		views, leaderAddr, leaderEpoch := rs.probe(ctx, members)
		for _, v := range views {
			if v.mode == wire.ReplModeQuorum && !quorum {
				quorum = true
				rs.mu.Lock()
				rs.quorum = true
				rs.mu.Unlock()
			}
		}
		if leaderAddr != "" && leaderEpoch >= known {
			var lv *memberView
			for i := range views {
				if views[i].addr == leaderAddr {
					lv = &views[i]
				}
			}
			// Quorum adoption guard: a leader whose watermark is below
			// what a previous promotion's fence acks proved durable is a
			// stale survivor (a minority-side ex-leader, or a candidate
			// promoted before its missing tail surfaced). Re-elect over it
			// rather than adopt it.
			if !quorum || lv == nil || lv.watermark >= requiredWM {
				return rs.adopt(leaderAddr, leaderEpoch, lv)
			}
			rs.logf("cluster: shard %s: refusing leader %s at watermark %d (< required %d); re-electing",
				rs.name, leaderAddr, lv.watermark, requiredWM)
		}
		for _, v := range views {
			if v.epoch > known {
				known = v.epoch
			}
			members = mergeMembers(members, v.members)
		}
		if wait := time.Until(graceOver); wait > 0 {
			if wait > lease/4+time.Millisecond {
				wait = lease/4 + time.Millisecond
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		if len(views) == 0 {
			return fmt.Errorf("no member of replication group %v reachable", members)
		}
		majority := len(members)/2 + 1
		if quorum && len(views) < majority {
			// A minority cannot elect: any write quorum of the other side
			// would miss the new leader entirely, losing acked writes.
			return fmt.Errorf("only %d of %d members of quorum group %v reachable; promotion needs %d",
				len(views), len(members), members, majority)
		}
		// Lease expired and nobody claims leadership: promote the
		// most-advanced member — highest epoch first (it may hold acks
		// the others never saw), then highest watermark. In quorum mode a
		// candidate below the required watermark is never chosen.
		var best *memberView
		for i := range views {
			v := &views[i]
			if quorum && v.watermark < requiredWM {
				continue
			}
			if best == nil || v.epoch > best.epoch || (v.epoch == best.epoch && v.watermark > best.watermark) {
				best = v
			}
		}
		if best == nil {
			return fmt.Errorf("no reachable member of group %v holds the required watermark %d", members, requiredWM)
		}
		newEpoch := known + 1
		if quorum {
			// Fence-then-promote: move every other reachable member to
			// newEpoch as a follower FIRST. A fenced member refuses the old
			// leader's appends from that instant, and its fence ack reports
			// the watermark it was fenced at — so any write the old leader
			// acked via a quorum is visible in some fence ack (write quorum
			// and promotion majority always intersect), and a candidate
			// missing one of those records is caught before adoption.
			fenced := 1 // the candidate itself, fenced by its own Promote below
			var fenceMax uint64
			raced := false
			for i := range views {
				v := &views[i]
				if v.addr == best.addr {
					continue
				}
				resp, err := rs.sendPromote(ctx, v.addr, &wire.Promote{
					Epoch: newEpoch, Leader: best.addr, Members: members,
				})
				if err != nil {
					continue
				}
				switch r := resp.(type) {
				case *wire.ReplAck:
					fenced++
					if r.Watermark > fenceMax {
						fenceMax = r.Watermark
					}
				case *wire.Error:
					if r.Code == wire.CodeWrongShard && r.Aux > known {
						known = r.Aux
						raced = true
					}
				}
			}
			if raced {
				continue // another router is ahead; re-probe at its epoch
			}
			if fenced < majority {
				known = newEpoch // the fenced members moved; don't reuse the epoch
				if round >= maxFailoverAttempts {
					return fmt.Errorf("quorum promotion fenced only %d of %d needed members", fenced, majority)
				}
				continue
			}
			if fenceMax > requiredWM {
				requiredWM = fenceMax
				rs.mu.Lock()
				rs.requiredWM = fenceMax
				rs.mu.Unlock()
			}
		}
		rs.logf("cluster: shard %s: promoting %s to leader (epoch %d, watermark %d)", rs.name, best.addr, newEpoch, best.watermark)
		resp, err := rs.sendPromote(ctx, best.addr, &wire.Promote{
			Epoch: newEpoch, Leader: best.addr, Members: members,
		})
		if err == nil {
			switch r := resp.(type) {
			case *wire.ReplAck:
				if quorum && r.Watermark < requiredWM {
					// The fence acks proved a record this candidate does not
					// hold: a write quorum that excluded it acknowledged
					// something it never saw. Re-elect at a higher epoch; the
					// watermark guard above now steers the election to the
					// member that reported requiredWM.
					rs.logf("cluster: shard %s: promoted %s holds watermark %d < required %d; re-electing",
						rs.name, best.addr, r.Watermark, requiredWM)
					known = newEpoch
					if round >= maxFailoverAttempts {
						return fmt.Errorf("promoted %s lacks required watermark %d", best.addr, requiredWM)
					}
					continue
				}
				best.epoch = newEpoch
				return rs.adopt(best.addr, newEpoch, best)
			case *wire.Error:
				if r.Code == wire.CodeWrongShard && r.Aux > known {
					// Lost an election race: learn the winner's epoch and
					// re-probe — the winner answers as leader next round.
					known = r.Aux
				} else {
					return fmt.Errorf("promoting %s: %s", best.addr, r.Msg)
				}
			default:
				return fmt.Errorf("promoting %s: unexpected response %T", best.addr, resp)
			}
		}
		if round >= maxFailoverAttempts {
			return fmt.Errorf("failover of group %v did not converge", members)
		}
	}
}

// sendPromote delivers a promotion over a throwaway connection.
func (rs *ReplicatedShard) sendPromote(ctx context.Context, addr string, p *wire.Promote) (wire.Message, error) {
	tr, err := client.DialTCPOptions(addr, rs.opts)
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	pctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	return tr.RoundTrip(pctx, p)
}

// current snapshots the live connection and its generation.
func (rs *ReplicatedShard) current() (*client.TCP, uint64, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.closed {
		return nil, 0, errors.New("transport closed")
	}
	if rs.conn == nil {
		return nil, 0, errors.New("no leader connection")
	}
	return rs.conn, rs.gen, nil
}

// refer follows a CodeNotLeader referral: the answering member refused
// the request without applying it and (usually) named its leader.
// Returns whether a retry is worthwhile.
func (rs *ReplicatedShard) refer(ctx context.Context, gen uint64, addr string, epoch uint64) bool {
	rs.mu.Lock()
	if epoch > rs.epoch {
		rs.epoch = epoch
	}
	stale := gen != rs.gen
	cur := rs.leader
	rs.mu.Unlock()
	if stale {
		return true // another request already moved the connection
	}
	if addr != "" && addr != cur {
		if err := rs.adopt(addr, epoch, nil); err == nil {
			return true
		}
	}
	// The referral names nobody (or the named leader is unreachable, or
	// is the very connection that just refused us): elect.
	return rs.failover(ctx, gen) == nil
}

// Handle implements server.Handler against the group's leader. Failed
// reads retry on the post-failover leader; failed writes surface (their
// outcome on the dead leader is unknown); CodeNotLeader refusals —
// which applied nothing — replay against the referred leader. CodeBusy
// refusals also applied nothing (that is the quorum gate's and the
// install fence's contract), so they retry after a short wait — checking
// first whether leadership moved while the busy leader blocks on a
// quorum it lost.
func (rs *ReplicatedShard) Handle(ctx context.Context, req wire.Message) wire.Message {
	var lastErr error
	for attempt := 0; attempt <= maxFailoverAttempts; attempt++ {
		conn, gen, err := rs.current()
		if err != nil {
			return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("cluster: shard %s: %v", rs.name, err)}
		}
		actx := ctx
		var cancel context.CancelFunc
		if rs.callTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, rs.callTimeout)
		}
		resp, rtErr := conn.RoundTrip(actx, req)
		if cancel != nil {
			cancel()
		}
		if rtErr == nil {
			if e, ok := resp.(*wire.Error); ok && attempt < maxFailoverAttempts {
				switch e.Code {
				case wire.CodeNotLeader:
					if rs.refer(ctx, gen, e.Msg, e.Aux) {
						continue
					}
				case wire.CodeBusy:
					if rs.busyWait(ctx, gen) {
						continue
					}
				}
			}
			return resp
		}
		if ctx.Err() != nil {
			return canceled(ctx.Err())
		}
		// The attempt failed while the caller's context is still live:
		// either the connection broke, or the per-attempt deadline caught
		// a leader that is alive but unreachable (a partition eats frames
		// without closing sockets). Both route into failover.
		lastErr = rtErr
		if fe := rs.failover(ctx, gen); fe != nil {
			return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("cluster: shard %s: %v (failover: %v)", rs.name, rtErr, fe)}
		}
		if !retriable(req) {
			return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("cluster: shard %s: %v (failed over; write outcome unknown)", rs.name, rtErr)}
		}
	}
	return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("cluster: shard %s: %v", rs.name, lastErr)}
}

// busyWait handles a CodeBusy refusal, which by contract applied
// nothing: probe for a leader that moved (a quorum-blocked ex-leader's
// group may have elected a new one that is accepting writes), adopt it
// if so, otherwise wait a fraction of the lease for the group to heal.
// Returns whether retrying is worthwhile.
func (rs *ReplicatedShard) busyWait(ctx context.Context, gen uint64) bool {
	rs.mu.Lock()
	stale := gen != rs.gen
	members := append([]string(nil), rs.members...)
	cur := rs.leader
	known := rs.epoch
	lease := rs.lease
	quorum := rs.quorum
	requiredWM := rs.requiredWM
	rs.mu.Unlock()
	if stale {
		return true // another request already moved the connection
	}
	views, leaderAddr, leaderEpoch := rs.probe(ctx, members)
	if leaderAddr != "" && leaderAddr != cur && leaderEpoch >= known {
		var lv *memberView
		for i := range views {
			if views[i].addr == leaderAddr {
				lv = &views[i]
			}
		}
		if !quorum || lv == nil || lv.watermark >= requiredWM {
			if rs.adopt(leaderAddr, leaderEpoch, lv) == nil {
				return true
			}
		}
	}
	select {
	case <-time.After(lease/4 + time.Millisecond):
		return true
	case <-ctx.Done():
		return false
	}
}

// SnapshotPages implements snapshotSource against the current leader
// (reshards keep working over replicated groups). No failover retry: a
// failed export fails the migration, which the coordinator re-runs.
func (rs *ReplicatedShard) SnapshotPages(ctx context.Context, req *wire.StreamSnapshot, emit func(*wire.SnapshotChunk) error) error {
	conn, _, err := rs.current()
	if err != nil {
		return fmt.Errorf("cluster: shard %s: %w", rs.name, err)
	}
	push := *req
	push.Push = true
	st, err := conn.Stream(ctx, &push)
	if err != nil {
		return fmt.Errorf("cluster: shard %s: %w", rs.name, err)
	}
	defer st.Close()
	for {
		msg, err := st.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("cluster: shard %s: %w", rs.name, err)
		}
		page, ok := msg.(*wire.SnapshotChunk)
		if !ok {
			return fmt.Errorf("cluster: shard %s: unexpected snapshot frame %T", rs.name, msg)
		}
		if err := emit(page); err != nil {
			return err
		}
	}
}

// Leader reports the address the shard currently treats as the group's
// leader and the epoch it holds.
func (rs *ReplicatedShard) Leader() (string, uint64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.leader, rs.epoch
}

// Close implements io.Closer; in-flight calls fail and failovers stop.
func (rs *ReplicatedShard) Close() error {
	rs.mu.Lock()
	rs.closed = true
	conn := rs.conn
	rs.conn = nil
	rs.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}
