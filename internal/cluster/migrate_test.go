package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/chunk"
	"repro/internal/kv"
	"repro/internal/server"
	"repro/internal/wire"
)

// newEngine builds one engine shard over its own store.
func newEngine(t *testing.T) *server.Engine {
	t.Helper()
	engine, err := server.New(kv.NewMemStore(), server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

// growShards returns the current membership plus one new in-process
// engine shard named name.
func (tc *testCluster) growShards(t *testing.T, name string) ([]Shard, *server.Engine) {
	t.Helper()
	var shards []Shard
	for _, n := range tc.router.Shards() {
		shards = append(shards, Shard{Name: n}) // nil handler: keep current
	}
	engine := newEngine(t)
	return append(shards, Shard{Name: name, Handler: engine}), engine
}

// residenceOf maps every stream to the engine that lists it, failing on
// streams listed by zero or two engines.
func residenceOf(t *testing.T, engines map[string]*server.Engine) map[string]string {
	t.Helper()
	res := make(map[string]string)
	for name, e := range engines {
		for _, uuid := range e.ListStreams() {
			if prev, dup := res[uuid]; dup {
				t.Fatalf("stream %q served by both %s and %s", uuid, prev, name)
			}
			res[uuid] = name
		}
	}
	return res
}

func (tc *testCluster) statSum(t *testing.T, uuid string, te int64) uint64 {
	t.Helper()
	resp := tc.router.Handle(context.Background(), &wire.StatRange{UUIDs: []string{uuid}, Ts: 0, Te: te})
	sr, ok := resp.(*wire.StatRangeResp)
	if !ok {
		t.Fatalf("StatRange(%q) -> %#v", uuid, resp)
	}
	return sr.Windows[0][0]
}

func TestRebalanceGrowMigratesOwnershipAndData(t *testing.T) {
	tc := newTestCluster(t, 4)
	const streams = 24
	const chunks = 12
	sums := make(map[string]uint64)
	for i := 0; i < streams; i++ {
		uuid := fmt.Sprintf("grow-%d", i)
		tc.createStream(t, uuid)
		tc.ingest(t, uuid, chunks)
		sums[uuid] = tc.statSum(t, uuid, chunks*100)
	}
	preOwner := make(map[string]string)
	for uuid := range sums {
		preOwner[uuid] = tc.router.Owner(uuid)
	}

	shards, newEngine := tc.growShards(t, "shard-4")
	report, err := tc.router.Rebalance(context.Background(), shards)
	if err != nil {
		t.Fatal(err)
	}
	if got := tc.router.Topology(); got.Epoch != 2 || len(got.Members) != 5 {
		t.Fatalf("topology after grow = %+v", got)
	}
	if len(report.Moved) == 0 {
		t.Fatal("growing 4->5 moved zero streams; expected ~1/5 of them")
	}

	engines := map[string]*server.Engine{"shard-4": newEngine}
	for i, e := range tc.engines {
		engines[tc.names[i]] = e
	}
	res := residenceOf(t, engines)
	if len(res) != streams {
		t.Fatalf("%d streams resident, want %d", len(res), streams)
	}
	movedToNew := 0
	for uuid := range sums {
		want := tc.router.Owner(uuid)
		if res[uuid] != want {
			t.Errorf("stream %q resides on %s, ring owner is %s", uuid, res[uuid], want)
		}
		if res[uuid] != preOwner[uuid] && res[uuid] == "shard-4" {
			movedToNew++
		}
		// Queries answer identically after the move.
		if got := tc.statSum(t, uuid, chunks*100); got != sums[uuid] {
			t.Errorf("stream %q aggregate changed: %d -> %d", uuid, sums[uuid], got)
		}
		// Ingest continues at the next index wherever the stream lives.
		sealed, _ := chunk.SealPlain(tc.spec, chunk.CompressionNone, chunks, chunks*100, (chunks+1)*100,
			[]chunk.Point{{TS: chunks * 100, Val: 1}})
		if resp := tc.router.Handle(context.Background(), &wire.InsertChunk{UUID: uuid, Chunk: chunk.MarshalSealed(sealed)}); !isOK(resp) {
			t.Errorf("post-reshard ingest on %q -> %#v", uuid, resp)
		}
	}
	if movedToNew == 0 {
		t.Error("no stream moved to the new shard")
	}
	// The new membership was published to every shard, including the new
	// one, so stale routers can refresh from any of them.
	for name, e := range engines {
		epoch, members := e.Topology()
		if epoch != 2 || len(members) != 5 {
			t.Errorf("shard %s holds topology %d/%v, want 2/5 members", name, epoch, members)
		}
	}
	// Cross-shard queries span old and new members.
	var uuids []string
	for uuid := range sums {
		uuids = append(uuids, uuid)
	}
	resp := tc.router.Handle(context.Background(), &wire.StatRange{UUIDs: uuids, Ts: 0, Te: chunks * 100})
	if _, ok := resp.(*wire.StatRangeResp); !ok {
		t.Fatalf("cross-shard StatRange after grow -> %#v", resp)
	}
}

func TestRebalanceShrinkDrainsRemovedShard(t *testing.T) {
	tc := newTestCluster(t, 4)
	const streams = 16
	for i := 0; i < streams; i++ {
		uuid := fmt.Sprintf("shrink-%d", i)
		tc.createStream(t, uuid)
		tc.ingest(t, uuid, 5)
	}
	var keep []Shard
	for _, n := range tc.router.Shards()[:3] {
		keep = append(keep, Shard{Name: n})
	}
	if _, err := tc.router.Rebalance(context.Background(), keep); err != nil {
		t.Fatal(err)
	}
	if got := tc.router.Topology(); got.Epoch != 2 || len(got.Members) != 3 {
		t.Fatalf("topology after shrink = %+v", got)
	}
	// The removed shard serves nothing; every stream still answers.
	if left := tc.engines[3].ListStreams(); len(left) != 0 {
		t.Fatalf("removed shard still serves %v", left)
	}
	for i := 0; i < streams; i++ {
		uuid := fmt.Sprintf("shrink-%d", i)
		if got := tc.statSum(t, uuid, 500); got != 1+2+3+4+5 {
			t.Errorf("stream %q aggregate = %d after shrink", uuid, got)
		}
	}
}

func TestRebalanceCatchUpDrainsMidSnapshotWrites(t *testing.T) {
	tc := newTestCluster(t, 2)
	tc.createStream(t, "cu")
	tc.ingest(t, "cu", 10)
	written := atomic.Uint64{}
	written.Store(10)

	// Inject writes between copy rounds: round 1 and 2 each add chunks
	// AFTER that round's export pinned its bound, so only the catch-up
	// rounds (and the frozen drain) can carry them.
	tc.router.testHookAfterCopyRound = func(uuid string, round int) {
		if uuid != "cu" || round > 2 {
			return
		}
		base := written.Load()
		n := uint64(6) // above the live-round delta threshold once, then below
		if round == 2 {
			n = 2
		}
		for i := base; i < base+n; i++ {
			start := int64(i) * 100
			sealed, err := chunk.SealPlain(tc.spec, chunk.CompressionNone, i, start, start+100,
				[]chunk.Point{{TS: start, Val: int64(i + 1)}})
			if err != nil {
				t.Error(err)
				return
			}
			if resp := tc.router.Handle(context.Background(), &wire.InsertChunk{UUID: "cu", Chunk: chunk.MarshalSealed(sealed)}); !isOK(resp) {
				t.Errorf("mid-migration insert %d -> %#v", i, resp)
				return
			}
		}
		written.Add(n)
	}

	// Force the stream to move regardless of ring luck: rebalance onto a
	// membership where "cu" changes owner. Try growing; if the ring keeps
	// the owner, grow with differently named shards until it moves.
	moved := false
	for attempt := 0; attempt < 8 && !moved; attempt++ {
		name := fmt.Sprintf("cu-new-%d", attempt)
		shards, dst := tc.growShards(t, name)
		report, err := tc.router.Rebalance(context.Background(), shards)
		if err != nil {
			t.Fatal(err)
		}
		for _, mr := range report.Moved {
			if mr.UUID == "cu" {
				moved = true
				if mr.To != name {
					break // moved between old shards: still a valid move
				}
				_ = dst
			}
		}
	}
	if !moved {
		t.Fatal("stream never moved across 8 grow attempts")
	}
	want := written.Load()
	resp := tc.router.Handle(context.Background(), &wire.StreamInfo{UUID: "cu"})
	info, ok := resp.(*wire.StreamInfoResp)
	if !ok || info.Count != want {
		t.Fatalf("after migration: %#v, want count %d — mid-snapshot writes lost", resp, want)
	}
	var sum uint64
	for i := uint64(1); i <= want; i++ {
		sum += i
	}
	if got := tc.statSum(t, "cu", int64(want)*100); got != sum {
		t.Errorf("aggregate = %d, want %d", got, sum)
	}
}

// crashingShard wraps an engine and fails stream exports once armed,
// simulating a source crash mid-migration.
type crashingShard struct {
	engine *server.Engine
	// exports left before the shard "crashes"; negative = healthy.
	exportsLeft atomic.Int64
}

func (c *crashingShard) Handle(ctx context.Context, req wire.Message) wire.Message {
	if _, isSnap := req.(*wire.StreamSnapshot); isSnap {
		if c.exportsLeft.Add(-1) < 0 {
			return &wire.Error{Code: wire.CodeInternal, Msg: "shard down"}
		}
	}
	return c.engine.Handle(ctx, req)
}

func TestMigrationSourceCrashLeavesOneServingSide(t *testing.T) {
	crash := &crashingShard{engine: newEngine(t)}
	crash.exportsLeft.Store(1 << 30)
	engines := map[string]*server.Engine{"shard-0": crash.engine, "shard-1": newEngine(t)}
	router, err := NewRouter([]Shard{
		{Name: "shard-0", Handler: crash},
		{Name: "shard-1", Handler: engines["shard-1"]},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{router: router, spec: chunk.DigestSpec{Sum: true, Count: true}}
	specBytes, _ := tc.spec.MarshalBinary()
	tc.cfg = wire.StreamConfig{Epoch: 0, Interval: 100, VectorLen: uint32(tc.spec.VectorLen()), Fanout: 8, DigestSpec: specBytes}

	const streams = 12
	for i := 0; i < streams; i++ {
		uuid := fmt.Sprintf("crash-%d", i)
		tc.createStream(t, uuid)
		tc.ingest(t, uuid, 30) // several export pages per stream
	}

	// Let the source serve two export pages, then "crash" it.
	crash.exportsLeft.Store(2)
	dst := newEngine(t)
	engines["shard-2"] = dst
	_, err = router.Rebalance(context.Background(), []Shard{
		{Name: "shard-0"}, {Name: "shard-1"}, {Name: "shard-2", Handler: dst},
	})
	if err == nil {
		t.Fatal("rebalance succeeded through a crashed source")
	}
	// Membership did not change.
	if got := router.Topology(); got.Epoch != 1 || len(got.Members) != 2 {
		t.Fatalf("topology changed on failure: %+v", got)
	}
	// Every stream is served by exactly one engine, and every query still
	// answers through the router.
	res := residenceOf(t, engines)
	if len(res) != streams {
		t.Fatalf("%d streams resident, want %d", len(res), streams)
	}
	for i := 0; i < streams; i++ {
		uuid := fmt.Sprintf("crash-%d", i)
		if _, ok := router.Handle(context.Background(), &wire.StreamInfo{UUID: uuid}).(*wire.StreamInfoResp); !ok {
			t.Errorf("stream %q unreachable after aborted reshard", uuid)
		}
	}

	// The source recovers: the same rebalance now completes.
	crash.exportsLeft.Store(1 << 30)
	if _, err := router.Rebalance(context.Background(), []Shard{
		{Name: "shard-0"}, {Name: "shard-1"}, {Name: "shard-2", Handler: dst},
	}); err != nil {
		t.Fatalf("retried rebalance: %v", err)
	}
	if got := router.Topology(); got.Epoch != 2 || len(got.Members) != 3 {
		t.Fatalf("topology after retry = %+v", got)
	}
	res = residenceOf(t, engines)
	for uuid, at := range res {
		if want := router.Owner(uuid); at != want {
			t.Errorf("stream %q on %s, ring owner %s", uuid, at, want)
		}
	}
}

func TestStaleRouterRecoversViaWrongShard(t *testing.T) {
	// Two routers over the same four engines; router A coordinates a grow
	// to five, router B keeps the old ring and must heal through
	// CodeWrongShard + TopologyInfo + its dialer.
	engines := make(map[string]*server.Engine)
	var shardsA, shardsB []Shard
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("shard-%d", i)
		e := newEngine(t)
		engines[name] = e
		shardsA = append(shardsA, Shard{Name: name, Handler: e})
		shardsB = append(shardsB, Shard{Name: name, Handler: e})
	}
	fifth := newEngine(t)
	engines["shard-4"] = fifth
	routerA, err := NewRouter(shardsA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dialed := atomic.Int64{}
	routerB, err := NewRouter(shardsB, Options{Dial: func(member string) (Shard, error) {
		e, ok := engines[member]
		if !ok {
			return Shard{}, fmt.Errorf("unknown member %q", member)
		}
		dialed.Add(1)
		return Shard{Name: member, Handler: e}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}

	tc := &testCluster{router: routerA, spec: chunk.DigestSpec{Sum: true, Count: true}}
	specBytes, _ := tc.spec.MarshalBinary()
	tc.cfg = wire.StreamConfig{Epoch: 0, Interval: 100, VectorLen: uint32(tc.spec.VectorLen()), Fanout: 8, DigestSpec: specBytes}
	const streams = 20
	for i := 0; i < streams; i++ {
		uuid := fmt.Sprintf("stale-%d", i)
		tc.createStream(t, uuid)
		tc.ingest(t, uuid, 4)
	}

	if _, err := routerA.Rebalance(context.Background(), []Shard{
		{Name: "shard-0"}, {Name: "shard-1"}, {Name: "shard-2"}, {Name: "shard-3"},
		{Name: "shard-4", Handler: fifth},
	}); err != nil {
		t.Fatal(err)
	}
	if len(fifth.ListStreams()) == 0 {
		t.Fatal("no stream moved to the new shard; widen the test")
	}

	// Router B still holds the 4-shard ring. Queries for moved streams
	// hit tombstones, refresh B's topology, and succeed on retry —
	// transparently to the caller.
	for i := 0; i < streams; i++ {
		uuid := fmt.Sprintf("stale-%d", i)
		resp := routerB.Handle(context.Background(), &wire.StreamInfo{UUID: uuid})
		if _, ok := resp.(*wire.StreamInfoResp); !ok {
			t.Fatalf("stale router failed on %q: %#v", uuid, resp)
		}
	}
	if got := routerB.Topology(); got.Epoch != 2 || len(got.Members) != 5 {
		t.Fatalf("stale router topology after heal = %+v", got)
	}
	if dialed.Load() != 1 {
		t.Errorf("dialer used %d times, want once (shard-4)", dialed.Load())
	}
}

func TestReshardOverWire(t *testing.T) {
	// The wire-level admin path: a Reshard message names members as
	// strings; unknown ones resolve through the dialer.
	engines := map[string]*server.Engine{}
	var shards []Shard
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("shard-%d", i)
		engines[name] = newEngine(t)
		shards = append(shards, Shard{Name: name, Handler: engines[name]})
	}
	engines["shard-2"] = newEngine(t)
	router, err := NewRouter(shards, Options{Dial: func(member string) (Shard, error) {
		e, ok := engines[member]
		if !ok {
			return Shard{}, fmt.Errorf("unknown member %q", member)
		}
		return Shard{Name: member, Handler: e}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{router: router, spec: chunk.DigestSpec{Sum: true, Count: true}}
	specBytes, _ := tc.spec.MarshalBinary()
	tc.cfg = wire.StreamConfig{Epoch: 0, Interval: 100, VectorLen: uint32(tc.spec.VectorLen()), Fanout: 8, DigestSpec: specBytes}
	for i := 0; i < 8; i++ {
		uuid := fmt.Sprintf("wire-%d", i)
		tc.createStream(t, uuid)
		tc.ingest(t, uuid, 3)
	}

	resp := router.Handle(context.Background(), &wire.Reshard{Members: []string{"shard-0", "shard-1", "shard-2"}})
	ti, ok := resp.(*wire.TopologyInfoResp)
	if !ok || ti.Epoch != 2 || len(ti.Members) != 3 {
		t.Fatalf("Reshard -> %#v", resp)
	}
	// TopologyInfo reports the new membership.
	resp = router.Handle(context.Background(), &wire.TopologyInfo{})
	if ti, ok := resp.(*wire.TopologyInfoResp); !ok || ti.Epoch != 2 || len(ti.Members) != 3 {
		t.Fatalf("TopologyInfo -> %#v", resp)
	}
	// An empty membership is refused.
	if _, ok := router.Handle(context.Background(), &wire.Reshard{}).(*wire.Error); !ok {
		t.Error("empty reshard accepted")
	}
	// The epoch CAS: a conditional reshard against a stale epoch is
	// refused with CodeBusy (two concurrent joiners cannot silently evict
	// each other), and succeeds against the current one.
	stale := &wire.Reshard{Members: []string{"shard-0", "shard-1"}, ExpectEpoch: 1}
	if e, ok := router.Handle(context.Background(), stale).(*wire.Error); !ok || e.Code != wire.CodeBusy {
		t.Errorf("stale-epoch reshard -> %#v, want CodeBusy", router.Handle(context.Background(), stale))
	}
	if got := router.Topology(); got.Epoch != 2 {
		t.Fatalf("stale CAS changed the topology: %+v", got)
	}
	current := &wire.Reshard{Members: []string{"shard-0", "shard-1"}, ExpectEpoch: 2}
	if ti, ok := router.Handle(context.Background(), current).(*wire.TopologyInfoResp); !ok || ti.Epoch != 3 {
		t.Errorf("current-epoch reshard -> %#v", router.Handle(context.Background(), &wire.TopologyInfo{}))
	}
}

func TestTombstoneReclaimOnRecreate(t *testing.T) {
	// A stream moves away, is deleted on its new owner, and ring
	// ownership later returns to the tombstoned shard: re-creating the
	// UUID must work (the router clears the stale tombstone), not fail
	// CodeWrongShard forever.
	tc := newTestCluster(t, 4)
	const streams = 16
	for i := 0; i < streams; i++ {
		uuid := fmt.Sprintf("rc-%d", i)
		tc.createStream(t, uuid)
		tc.ingest(t, uuid, 3)
	}
	shards, fifth := tc.growShards(t, "shard-4")
	report, err := tc.router.Rebalance(context.Background(), shards)
	if err != nil {
		t.Fatal(err)
	}
	var movedUUID string
	for _, mr := range report.Moved {
		if mr.To == "shard-4" {
			movedUUID = mr.UUID
		}
	}
	if movedUUID == "" {
		t.Fatal("nothing moved to the new shard")
	}
	// Delete the moved stream (it lives on shard-4), then shrink back:
	// the original ring returns, so the deleted UUID's owner is again the
	// shard holding its tombstone.
	if resp := tc.router.Handle(context.Background(), &wire.DeleteStream{UUID: movedUUID}); !isOK(resp) {
		t.Fatalf("delete moved stream -> %#v", resp)
	}
	var shrink []Shard
	for _, n := range tc.names {
		shrink = append(shrink, Shard{Name: n})
	}
	if _, err := tc.router.Rebalance(context.Background(), shrink); err != nil {
		t.Fatal(err)
	}
	_ = fifth
	// Re-create: the first attempt hits the tombstone; the router
	// reclaims it and the retry succeeds — transparently to the caller.
	if resp := tc.router.Handle(context.Background(), &wire.CreateStream{UUID: movedUUID, Cfg: tc.cfg}); !isOK(resp) {
		t.Fatalf("re-creating a deleted+moved-back UUID -> %#v", resp)
	}
	tc.ingest(t, movedUUID, 2)
	if got := tc.statSum(t, movedUUID, 200); got != 1+2 {
		t.Errorf("recreated stream aggregate = %d, want 3", got)
	}
}

func TestRebalanceCatchesStreamsCreatedMidReshard(t *testing.T) {
	// Streams created while a rebalance runs route by the OLD ring and
	// may land on a shard the new ring does not assign them to; the
	// convergence passes must move them before (or right after) the
	// topology installs, so they stay reachable.
	tc := newTestCluster(t, 3)
	for i := 0; i < 8; i++ {
		uuid := fmt.Sprintf("mid-%d", i)
		tc.createStream(t, uuid)
		tc.ingest(t, uuid, 6)
	}
	created := 0
	tc.router.testHookAfterCopyRound = func(string, int) {
		// Fires during migrations, i.e. strictly mid-reshard and before
		// the new topology installs.
		if created >= 6 {
			return
		}
		uuid := fmt.Sprintf("late-%d", created)
		created++
		if resp := tc.router.Handle(context.Background(), &wire.CreateStream{UUID: uuid, Cfg: tc.cfg}); !isOK(resp) {
			t.Errorf("mid-reshard create %q -> %#v", uuid, resp)
		}
	}
	shards, newEng := tc.growShards(t, "shard-3")
	if _, err := tc.router.Rebalance(context.Background(), shards); err != nil {
		t.Fatal(err)
	}
	if created == 0 {
		t.Skip("no migration rounds ran; hook never fired")
	}
	engines := map[string]*server.Engine{"shard-3": newEng}
	for i, e := range tc.engines {
		engines[tc.names[i]] = e
	}
	res := residenceOf(t, engines)
	for i := 0; i < created; i++ {
		uuid := fmt.Sprintf("late-%d", i)
		at, found := res[uuid]
		if !found {
			t.Fatalf("mid-reshard stream %q vanished", uuid)
		}
		if want := tc.router.Owner(uuid); at != want {
			t.Errorf("mid-reshard stream %q stranded on %s, ring owner %s", uuid, at, want)
		}
		// And it is reachable through the router.
		if _, ok := tc.router.Handle(context.Background(), &wire.StreamInfo{UUID: uuid}).(*wire.StreamInfoResp); !ok {
			t.Errorf("mid-reshard stream %q unreachable", uuid)
		}
	}
}

// TestRebalanceUnderConcurrentIngest hammers a grow with live writers and
// readers on every stream: no write may be lost (counts and sums match
// what the writers recorded) and no operation may fail. Run under -race
// in CI.
func TestRebalanceUnderConcurrentIngest(t *testing.T) {
	tc := newTestCluster(t, 4)
	const streams = 10
	const baseChunks = 8
	uuids := make([]string, streams)
	for i := range uuids {
		uuids[i] = fmt.Sprintf("hammer-%d", i)
		tc.createStream(t, uuids[i])
		tc.ingest(t, uuids[i], baseChunks)
	}

	stop := make(chan struct{})
	written := make([]uint64, streams)
	var wg sync.WaitGroup
	for si, uuid := range uuids {
		wg.Add(1)
		go func(si int, uuid string) {
			defer wg.Done()
			i := uint64(baseChunks)
			for {
				select {
				case <-stop:
					written[si] = i
					return
				default:
				}
				start := int64(i) * 100
				sealed, err := chunk.SealPlain(tc.spec, chunk.CompressionNone, i, start, start+100,
					[]chunk.Point{{TS: start, Val: int64(i + 1)}})
				if err != nil {
					t.Error(err)
					return
				}
				resp := tc.router.Handle(context.Background(), &wire.InsertChunk{UUID: uuid, Chunk: chunk.MarshalSealed(sealed)})
				if !isOK(resp) {
					t.Errorf("concurrent insert %q/%d failed: %#v", uuid, i, resp)
					written[si] = i
					return
				}
				i++
			}
		}(si, uuid)
	}
	// Concurrent single- and multi-stream readers; CodeWrongShard may
	// surface at most transiently and the router retries it internally,
	// so every query must succeed.
	qstop := make(chan struct{})
	var qwg sync.WaitGroup
	for w := 0; w < 2; w++ {
		qwg.Add(1)
		go func(w int) {
			defer qwg.Done()
			k := 0
			for {
				select {
				case <-qstop:
					return
				default:
				}
				k++
				var req wire.Message
				if w == 0 {
					req = &wire.StatRange{UUIDs: []string{uuids[k%streams]}, Ts: 0, Te: baseChunks * 100}
				} else {
					req = &wire.StatRange{UUIDs: []string{uuids[0], uuids[1], uuids[2]}, Ts: 0, Te: baseChunks * 100}
				}
				resp := tc.router.Handle(context.Background(), req)
				if _, ok := resp.(*wire.StatRangeResp); !ok {
					t.Errorf("concurrent query failed: %#v", resp)
					return
				}
			}
		}(w)
	}

	shards, newEng := tc.growShards(t, "shard-4")
	if _, err := tc.router.Rebalance(context.Background(), shards); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	close(qstop)
	qwg.Wait()

	engines := map[string]*server.Engine{"shard-4": newEng}
	for i, e := range tc.engines {
		engines[tc.names[i]] = e
	}
	res := residenceOf(t, engines)
	for si, uuid := range uuids {
		if want := tc.router.Owner(uuid); res[uuid] != want {
			t.Errorf("stream %q on %s, ring owner %s", uuid, res[uuid], want)
		}
		resp := tc.router.Handle(context.Background(), &wire.StreamInfo{UUID: uuid})
		info, ok := resp.(*wire.StreamInfoResp)
		if !ok {
			t.Fatalf("StreamInfo(%q) -> %#v", uuid, resp)
		}
		if info.Count != written[si] {
			t.Errorf("stream %q has %d chunks, writers recorded %d — writes lost in migration", uuid, info.Count, written[si])
		}
		var sum uint64
		for i := uint64(1); i <= written[si]; i++ {
			sum += i
		}
		if got := tc.statSum(t, uuid, int64(written[si])*100); got != sum {
			t.Errorf("stream %q aggregate = %d, want %d", uuid, got, sum)
		}
	}
}
