package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/client"
	"repro/internal/wire"
)

// tcpShard forwards requests to a remote TimeCrypt engine over the wire
// protocol. One multiplexed connection (client.TCP over a v3 Session)
// carries all of the router's traffic to the peer: concurrent fan-out
// sub-requests overlap on the socket with their own correlation IDs
// instead of queueing on a pool of serialized exchanges. If the peer
// restarts, every in-flight call observes the broken-connection error at
// once; each is retried exactly once on the transparently redialed
// session, so a restart heals without restarting the router.
type tcpShard struct {
	addr   string
	closed atomic.Bool
	conn   *client.TCP
}

// NewTCPShard dials a remote engine at addr and returns it as a routable
// shard. inflight bounds the shard's concurrently in-flight requests on
// the multiplexed connection (<= 0 means the session default; it replaces
// the connection-pool size of the pre-v3 serialized transport). The
// connection is closed by Router.Close.
func NewTCPShard(name, addr string, inflight int) (Shard, error) {
	conn, err := client.DialTCPOptions(addr, client.SessionOptions{Window: inflight})
	if err != nil {
		return Shard{}, fmt.Errorf("cluster: shard %q: %w", name, err)
	}
	return Shard{Name: name, Handler: &tcpShard{addr: addr, conn: conn}}, nil
}

// retriable reports whether a request is safe to re-execute after an
// ambiguous transport failure: reads have no effect on the peer, so a
// first attempt that actually executed costs nothing to repeat. Writes are
// NOT retried — a broken connection leaves their outcome unknown (an
// InsertChunk may have been applied before the response was lost, and
// replaying it would surface a spurious out-of-order error) — so they
// keep the old surface-the-failure behavior.
func retriable(req wire.Message) bool {
	switch r := req.(type) {
	case *wire.StreamInfo, *wire.StatRange, *wire.GetRange, *wire.ListStreams,
		*wire.GetGrants, *wire.GetEnvelopes, *wire.GetStaged,
		*wire.AggRange, *wire.QueryStream,
		*wire.TopologyInfo, *wire.StreamSnapshot, *wire.LeaseInfo:
		return true
	case *wire.Batch:
		// A batch is as safe as its least safe member.
		for _, sub := range r.Reqs {
			if !retriable(sub) {
				return false
			}
		}
		return len(r.Reqs) > 0
	}
	return false
}

// Handle implements server.Handler by forwarding over TCP: the caller's
// deadline rides the request envelope to the remote engine, and a canceled
// context abandons the call (the connection survives). A broken connection
// fails every in-flight call at once; read-only calls are retried exactly
// once against the redialed session — concurrent in-flight reads to a
// restarted peer all heal independently — while writes (ambiguous outcome)
// surface as internal protocol errors like any other shard failure.
func (t *tcpShard) Handle(ctx context.Context, req wire.Message) wire.Message {
	if t.closed.Load() {
		return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("cluster: shard %s: closed", t.addr)}
	}
	resp, err := t.conn.RoundTrip(ctx, req)
	if err != nil && errors.Is(err, client.ErrSessionBroken) && retriable(req) && ctx.Err() == nil && !t.closed.Load() {
		resp, err = t.conn.RoundTrip(ctx, req)
	}
	if err != nil {
		if ctx.Err() != nil {
			return canceled(ctx.Err())
		}
		return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("cluster: shard %s: %v", t.addr, err)}
	}
	return resp
}

// SnapshotPages implements snapshotSource: the stream export rides the
// multiplexed connection as a server-push stream (Push mode), so pages
// flow without per-page request latency and the client session's credit
// accounting paces the server to the importer's speed.
func (t *tcpShard) SnapshotPages(ctx context.Context, req *wire.StreamSnapshot, emit func(*wire.SnapshotChunk) error) error {
	if t.closed.Load() {
		return fmt.Errorf("cluster: shard %s: closed", t.addr)
	}
	push := *req
	push.Push = true
	st, err := t.conn.Stream(ctx, &push)
	if err != nil {
		return fmt.Errorf("cluster: shard %s: %w", t.addr, err)
	}
	defer st.Close()
	for {
		msg, err := st.Recv()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("cluster: shard %s: %w", t.addr, err)
		}
		page, ok := msg.(*wire.SnapshotChunk)
		if !ok {
			return fmt.Errorf("cluster: shard %s: unexpected snapshot frame %T", t.addr, msg)
		}
		if err := emit(page); err != nil {
			return err
		}
	}
}

// Close closes the shard's connection; in-flight calls fail and the shard
// stops redialing.
func (t *tcpShard) Close() error {
	t.closed.Store(true)
	return t.conn.Close()
}
