package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/client"
	"repro/internal/wire"
)

// tcpShard forwards requests to a remote TimeCrypt engine over the wire
// protocol. A fixed pool of connection slots carries concurrent requests
// (requests on one slot serialize, matching the server's
// one-goroutine-per-connection front end). A slot whose connection fails
// is discarded — never reused, since a mid-round-trip failure can desync
// request/response framing — and redialed on the slot's next use, so a
// peer restart heals without restarting the router.
type tcpShard struct {
	addr   string
	next   atomic.Uint64
	closed atomic.Bool
	slots  []*tcpSlot
}

type tcpSlot struct {
	mu   sync.Mutex
	conn *client.TCP // nil when awaiting (re)dial
}

// NewTCPShard dials a remote engine at addr with a pool of conns
// connections (minimum 1) and returns it as a routable shard. The shard's
// connections are closed by Router.Close.
func NewTCPShard(name, addr string, conns int) (Shard, error) {
	if conns < 1 {
		conns = 1
	}
	t := &tcpShard{addr: addr, slots: make([]*tcpSlot, conns)}
	for i := range t.slots {
		c, err := client.DialTCP(addr)
		if err != nil {
			t.Close()
			return Shard{}, fmt.Errorf("cluster: shard %q: %w", name, err)
		}
		t.slots[i] = &tcpSlot{conn: c}
	}
	return Shard{Name: name, Handler: t}, nil
}

// Handle implements server.Handler by forwarding over TCP: the caller's
// deadline rides the request envelope to the remote engine, and a canceled
// context abandons the round trip. Transport failures surface as internal
// protocol errors, like any other shard failure.
func (t *tcpShard) Handle(ctx context.Context, req wire.Message) wire.Message {
	if t.closed.Load() {
		return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("cluster: shard %s: closed", t.addr)}
	}
	slot := t.slots[t.next.Add(1)%uint64(len(t.slots))]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if slot.conn == nil {
		c, err := client.DialTCP(t.addr)
		if err != nil {
			return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("cluster: shard %s: %v", t.addr, err)}
		}
		slot.conn = c
	}
	resp, err := slot.conn.RoundTrip(ctx, req)
	if err != nil {
		slot.conn.Close()
		slot.conn = nil // redial on next use
		if ctx.Err() != nil {
			return canceled(ctx.Err())
		}
		return &wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("cluster: shard %s: %v", t.addr, err)}
	}
	return resp
}

// Close closes the connection pool; the shard stops redialing.
func (t *tcpShard) Close() error {
	t.closed.Store(true)
	var first error
	for _, slot := range t.slots {
		if slot == nil {
			continue
		}
		slot.mu.Lock()
		if slot.conn != nil {
			if err := slot.conn.Close(); err != nil && first == nil {
				first = err
			}
			slot.conn = nil
		}
		slot.mu.Unlock()
	}
	return first
}
