package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/chunk"
	"repro/internal/kv"
	"repro/internal/server"
	"repro/internal/wire"
)

// benchIngest drives concurrent multi-stream ingest (with the paper's 4:1
// query ratio) against any handler: the head-to-head for one single-lock
// engine vs a sharded router. Run with:
//
//	go test ./internal/cluster -bench BenchmarkIngest -benchtime 2x
func benchIngest(b *testing.B, handler server.Handler) {
	const streams = 16
	const chunksPerStream = 150
	spec := chunk.DigestSpec{Sum: true, Count: true}
	specBytes, _ := spec.MarshalBinary()
	cfg := wire.StreamConfig{Epoch: 0, Interval: 100, VectorLen: uint32(spec.VectorLen()), Fanout: 8, DigestSpec: specBytes}

	for n := 0; n < b.N; n++ {
		uuidOf := func(s int) string { return fmt.Sprintf("bench-%d-%d", n, s) }
		for s := 0; s < streams; s++ {
			if resp := handler.Handle(context.Background(), &wire.CreateStream{UUID: uuidOf(s), Cfg: cfg}); resp == nil {
				b.Fatal("create failed")
			} else if e, bad := resp.(*wire.Error); bad {
				b.Fatal(e)
			}
		}
		var wg sync.WaitGroup
		for s := 0; s < streams; s++ {
			wg.Add(1)
			go func(uuid string) {
				defer wg.Done()
				for i := uint64(0); i < chunksPerStream; i++ {
					start := int64(i) * 100
					sealed, err := chunk.SealPlain(spec, chunk.CompressionNone, i, start, start+100,
						[]chunk.Point{{TS: start, Val: int64(i)}})
					if err != nil {
						b.Error(err)
						return
					}
					if e, bad := handler.Handle(context.Background(), &wire.InsertChunk{UUID: uuid, Chunk: chunk.MarshalSealed(sealed)}).(*wire.Error); bad {
						b.Error(e)
						return
					}
					for q := 0; q < 4; q++ {
						handler.Handle(context.Background(), &wire.StatRange{UUIDs: []string{uuid}, Ts: 0, Te: start + 100})
					}
				}
			}(uuidOf(s))
		}
		wg.Wait()
	}
	b.ReportMetric(float64(b.N*streams*chunksPerStream), "chunks")
}

func BenchmarkIngestSingleLockEngine(b *testing.B) {
	engine, err := server.New(kv.NewMemStore(), server.Config{Stripes: 1})
	if err != nil {
		b.Fatal(err)
	}
	benchIngest(b, engine)
}

func BenchmarkIngestStripedEngine(b *testing.B) {
	engine, err := server.New(kv.NewMemStore(), server.Config{})
	if err != nil {
		b.Fatal(err)
	}
	benchIngest(b, engine)
}

func BenchmarkIngestSharded4(b *testing.B) {
	var shards []Shard
	for i := 0; i < 4; i++ {
		engine, err := server.New(kv.NewMemStore(), server.Config{})
		if err != nil {
			b.Fatal(err)
		}
		shards = append(shards, Shard{Name: fmt.Sprintf("shard-%d", i), Handler: engine})
	}
	router, err := NewRouter(shards, Options{})
	if err != nil {
		b.Fatal(err)
	}
	benchIngest(b, router)
}

// BenchmarkRebalanceGrow measures one full live membership change: a
// 4-shard router with pre-ingested streams grows to 5, migrating the
// streams whose ownership changed (export, import, freeze, handoff). Run
// with:
//
//	go test ./internal/cluster -bench BenchmarkRebalanceGrow -benchtime 2x
func BenchmarkRebalanceGrow(b *testing.B) {
	spec := chunk.DigestSpec{Sum: true, Count: true}
	specBytes, _ := spec.MarshalBinary()
	cfg := wire.StreamConfig{Epoch: 0, Interval: 100, VectorLen: uint32(spec.VectorLen()), Fanout: 8, DigestSpec: specBytes}
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		var shards []Shard
		for i := 0; i < 4; i++ {
			engine, err := server.New(kv.NewMemStore(), server.Config{})
			if err != nil {
				b.Fatal(err)
			}
			shards = append(shards, Shard{Name: fmt.Sprintf("shard-%d", i), Handler: engine})
		}
		router, err := NewRouter(shards, Options{})
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < 16; s++ {
			uuid := fmt.Sprintf("grow-%d", s)
			if resp := router.Handle(context.Background(), &wire.CreateStream{UUID: uuid, Cfg: cfg}); !isOK(resp) {
				b.Fatalf("create: %v", resp)
			}
			for c := uint64(0); c < 60; c++ {
				start := int64(c) * 100
				sealed, err := chunk.SealPlain(spec, chunk.CompressionNone, c, start, start+100,
					[]chunk.Point{{TS: start, Val: int64(c + 1)}})
				if err != nil {
					b.Fatal(err)
				}
				if resp := router.Handle(context.Background(), &wire.InsertChunk{UUID: uuid, Chunk: chunk.MarshalSealed(sealed)}); !isOK(resp) {
					b.Fatalf("ingest: %v", resp)
				}
			}
		}
		fifth, err := server.New(kv.NewMemStore(), server.Config{})
		if err != nil {
			b.Fatal(err)
		}
		grown := []Shard{{Name: "shard-0"}, {Name: "shard-1"}, {Name: "shard-2"}, {Name: "shard-3"},
			{Name: "shard-4", Handler: fifth}}
		b.StartTimer()
		report, err := router.Rebalance(context.Background(), grown)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if len(report.Moved) == 0 {
			b.Fatal("grow moved no streams")
		}
	}
}
