// Package cluster shards one logical TimeCrypt service across several
// server engines. The paper positions TimeCrypt instances as stateless and
// horizontally scalable (§3.2) over "any scalable key-value store" (§4.6);
// this package supplies the routing tier that makes that concrete.
//
// # Design
//
// Placement is per stream: a consistent-hash ring with virtual nodes maps
// each stream UUID to exactly one engine shard, so every stream's chunks,
// index nodes, grants, and envelopes live together and all single-stream
// operations are single-shard. The Router implements the server.Handler
// contract (so it can sit behind the TCP front end in place of an engine)
// and the client Transport contract (so unmodified Owner/Consumer clients
// can drive it in-process). Shards are server.Handler values themselves:
// in-process *server.Engine instances, remote engines reached over the
// wire protocol (NewTCPShard), or even nested routers.
//
// Two operations cross shards. Inter-stream StatRange queries whose UUIDs
// land on different shards are fanned out per shard and the encrypted
// aggregates are homomorphically summed by the router — valid because HEAC
// ciphertext addition is plain uint64 vector addition, exactly what a
// single engine does across streams. A pre-pass over StreamInfo clamps the
// query range to the shortest stream so every shard aggregates the same
// chunk window. ListStreams is fanned out to all shards and merged.
//
// Ring hashing is deterministic (FNV-1a), so any router over the same
// shard names computes the same placement. Membership is versioned
// (Topology epochs): Router.Rebalance changes the ring while serving,
// migrating the streams whose ownership changed (live copy rounds, a
// brief per-stream freeze, then handoff — see migrate.go), and routers
// holding a stale ring recover from CodeWrongShard answers by refreshing
// the topology from the shards. docs/ARCHITECTURE.md diagrams the
// migration path.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-shard virtual node count. 128 points per
// shard keeps the expected load imbalance across shards within a few
// percent.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring mapping keys (stream UUIDs) onto named
// nodes via virtual nodes. It is immutable after construction and safe for
// concurrent use.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node string
}

func hash64(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	h := f.Sum64()
	// FNV-1a alone clusters similar keys: two strings differing only in
	// the final byte hash within 256·prime (< 2^48) of each other, closer
	// than the ~2^55 gap between ring points, so sequential stream UUIDs
	// would all land on one shard. A 64-bit avalanche finalizer
	// (murmur3's fmix64) spreads them over the whole ring.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// NewRing places vnodes virtual nodes per node on the ring; vnodes <= 0
// means DefaultVirtualNodes. Node names must be unique and non-empty.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, errors.New("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{points: make([]ringPoint, 0, len(nodes)*vnodes), nodes: append([]string(nil), nodes...)}
	for _, node := range nodes {
		if node == "" {
			return nil, errors.New("cluster: empty node name")
		}
		if seen[node] {
			return nil, fmt.Errorf("cluster: duplicate node %q", node)
		}
		seen[node] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", node, v)), node: node})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Owner returns the node owning key: the first virtual node at or after
// the key's hash, wrapping around the ring.
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Nodes returns the ring membership in construction order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }
