package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
)

// This file is the coordinator half of live resharding: Rebalance diffs
// the current ring against a new membership into per-stream move tasks
// and migrates each stream while both sides keep serving.
//
// Per stream:
//
//  1. Live copy rounds: the sealed chunks (the bulk of a stream) are
//     exported from the source and imported into the destination while
//     reads and writes keep flowing to the source; each round copies only
//     the chunks appended since the previous one, until the delta is
//     small.
//  2. Freeze: the stream's move gate write-locks, briefly holding its
//     requests at the router (every other stream is untouched).
//  3. Drain: a final export round runs against the now-quiescent stream —
//     the remaining chunk delta plus meta, index nodes, staged records,
//     grants, and envelopes, a consistent copy by construction. This is
//     the catch-up phase: writes accepted during the live rounds are in
//     the delta, writes after the freeze are waiting at the gate.
//  4. Handoff: the destination commits (starts serving), the source
//     releases (deletes its copy, leaving a CodeWrongShard tombstone),
//     forwarding flips, and the gate reopens — held writes land on the
//     destination in order.
//
// After every stream moved, the new topology installs atomically
// (epoch+1), the move table clears, dropped members close, and the new
// membership is published to every member shard (TopologyUpdate) so
// routers holding the old ring can refresh from any shard.

// snapshotPageItems is the per-page item bound migration export uses.
const snapshotPageItems = 256

// liveCopyDeltaChunks: a live round that copied at most this many new
// chunks means the copy has caught up enough to freeze.
const liveCopyDeltaChunks = 4

// maxLiveCopyRounds bounds the live rounds per stream: under sustained
// ingest faster than the copy, the freeze happens anyway and the drain
// picks up the rest.
const maxLiveCopyRounds = 5

// snapshotSource is implemented by shard handlers that can serve a stream
// export as a credit-flow-controlled push stream (remote shards over the
// multiplexed transport); everything else falls back to unary cursor
// paging through Handle.
type snapshotSource interface {
	SnapshotPages(ctx context.Context, req *wire.StreamSnapshot, emit func(*wire.SnapshotChunk) error) error
}

// MoveReport is one migrated stream's outcome.
type MoveReport struct {
	UUID       string
	From, To   string
	Chunks     uint64 // chunk count at handoff
	Items      int    // key/value pairs copied (all rounds)
	CopyRounds int    // live rounds before the freeze
}

// RebalanceReport summarizes a completed membership change.
type RebalanceReport struct {
	Topology Topology
	Moved    []MoveReport
}

// ErrReshardInProgress reports a membership change refused because
// another one is still running.
var ErrReshardInProgress = errors.New("cluster: reshard already in progress")

// ErrEpochConflict reports a conditional membership change refused
// because the topology epoch moved since the caller read it (another
// coordinator changed the membership in between). Refetch and retry.
var ErrEpochConflict = errors.New("cluster: topology epoch changed since it was read")

// Rebalance changes the ring membership to exactly newShards, migrating
// every stream whose ownership changed while the cluster keeps serving:
// reads and writes to migrating streams follow the authoritative copy
// throughout (a write is held only for its stream's brief final drain).
// Shards naming existing members may leave Handler nil to keep the
// current handler; new members need a Handler or Options.Dial. On an
// error before the topology installs, the membership does not change:
// completed moves keep forwarding through the move table (re-run
// Rebalance to finish), the failed move is rolled back to its source,
// and not-yet-started moves never begin. The one post-install error (the
// straggler sweep for streams created mid-reshard) keeps the new
// membership and says so in the error; re-run Rebalance to finish.
func (r *Router) Rebalance(ctx context.Context, newShards []Shard) (*RebalanceReport, error) {
	return r.rebalance(ctx, newShards, 0)
}

// rebalance implements Rebalance; expectEpoch != 0 makes the change
// conditional on the current topology epoch (the wire-level CAS that
// keeps two concurrent joiners from silently evicting each other).
func (r *Router) rebalance(ctx context.Context, newShards []Shard, expectEpoch uint64) (report *RebalanceReport, err error) {
	if !r.reshardMu.TryLock() {
		return nil, ErrReshardInProgress
	}
	defer r.reshardMu.Unlock()

	rt := r.rt.Load()
	if expectEpoch != 0 && rt.epoch != expectEpoch {
		return nil, fmt.Errorf("%w: expected %d, now %d", ErrEpochConflict, expectEpoch, rt.epoch)
	}
	newEpoch := rt.epoch + 1
	states := make(map[string]*shardState, len(newShards))
	order := make([]string, 0, len(newShards))
	// Members dialed for this change are closed again if it fails before
	// the topology installs — repeated failed attempts must not leak
	// connections. Once installed they are live members and stay open
	// even if the post-install sweep errors.
	var dialed []io.Closer
	installed := false
	defer func() {
		if err == nil || installed {
			return
		}
		// A retained forwarding entry (release failed after the
		// destination committed) may reference a handler dialed this
		// attempt; keep those alive.
		inUse := map[io.Closer]bool{}
		r.movesMu.RLock()
		for _, ms := range r.moves {
			if c, ok := ms.dst.handler.(io.Closer); ok {
				inUse[c] = true
			}
		}
		r.movesMu.RUnlock()
		for _, c := range dialed {
			if !inUse[c] {
				c.Close()
			}
		}
	}()
	for _, sh := range newShards {
		if _, dup := states[sh.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard %q", sh.Name)
		}
		switch cur, known := rt.shards[sh.Name]; {
		case known:
			// Keep the live state (handler and counters) of an existing
			// member; a provided handler is ignored.
			states[sh.Name] = cur
		case sh.Handler != nil:
			states[sh.Name] = &shardState{name: sh.Name, handler: sh.Handler}
		case r.dial != nil:
			remote, dialErr := r.dial(sh.Name)
			if dialErr != nil {
				return nil, fmt.Errorf("cluster: dialing new member %q: %w", sh.Name, dialErr)
			}
			if remote.Handler == nil {
				return nil, fmt.Errorf("cluster: dialer returned nil handler for %q", sh.Name)
			}
			if c, ok := remote.Handler.(io.Closer); ok {
				dialed = append(dialed, c)
			}
			states[sh.Name] = &shardState{name: sh.Name, handler: remote.Handler}
		default:
			return nil, fmt.Errorf("cluster: new member %q needs a handler (no dialer configured)", sh.Name)
		}
		order = append(order, sh.Name)
	}
	newRing, err := NewRing(order, r.vnodes)
	if err != nil {
		return nil, err
	}

	// The union of old and new membership: where streams may currently
	// reside (a retried rebalance may find streams already on new
	// members, and stragglers may sit on members being dropped).
	union := make(map[string]*shardState, len(states)+len(rt.shards))
	for name, s := range rt.shards {
		union[name] = s
	}
	for name, s := range states {
		union[name] = s
	}

	// Migrate until residence converges on the new ring: the first pass
	// moves the bulk; further passes catch streams created while it ran
	// (they still routed by the old ring and may have landed on an
	// old owner).
	report = &RebalanceReport{Topology: Topology{Epoch: newEpoch, Members: append([]string(nil), order...)}}
	for pass := 0; pass < maxReshardPasses; pass++ {
		moved, passErr := r.migratePass(ctx, union, newRing, states, newEpoch)
		report.Moved = append(report.Moved, moved...)
		if passErr != nil {
			return nil, passErr
		}
		if len(moved) == 0 {
			break
		}
	}

	// Install the new topology: the ring flips atomically and the move
	// table's forwarding entries become redundant (the ring now names the
	// destinations).
	r.rt.Store(&routing{epoch: newEpoch, ring: newRing, shards: states, order: order})
	installed = true
	r.movesMu.Lock()
	r.moves = make(map[string]*moveState)
	r.movesActive.Store(0)
	r.movesMu.Unlock()

	// Post-install sweep: a create that raced the final pre-install pass
	// landed on an old owner; now that requests route by the new ring, no
	// NEW strays can appear, so one more pass settles them. A failure
	// here is surfaced but the membership stays installed (the error says
	// so) — re-run Rebalance to finish the stragglers.
	if moved, sweepErr := r.migratePass(ctx, union, newRing, states, newEpoch); sweepErr != nil {
		report.Moved = append(report.Moved, moved...)
		return report, fmt.Errorf("cluster: post-install straggler sweep failed (membership %d installed; re-run to finish): %w", newEpoch, sweepErr)
	} else {
		report.Moved = append(report.Moved, moved...)
	}

	// Publish the new membership to every shard of the union — including
	// members being dropped, whose tombstones would otherwise send stale
	// routers to shards that cannot name the new topology — then close
	// the dropped members. Best effort: a shard that misses the update
	// just cannot serve the refresh, the others can.
	update := &wire.TopologyUpdate{Epoch: newEpoch, Members: report.Topology.Members}
	for _, s := range union {
		s.handler.Handle(ctx, update)
	}
	for name, s := range rt.shards {
		if _, kept := states[name]; !kept {
			if c, ok := s.handler.(io.Closer); ok {
				_ = c.Close()
			}
		}
	}
	return report, nil
}

// maxReshardPasses bounds the pre-install convergence passes of a
// rebalance; a workload creating streams faster than a pass migrates
// them converges in the post-install sweep instead (new creates route by
// the new ring once it installs).
const maxReshardPasses = 3

// migratePass lists where every stream currently resides (across the
// union of old and new members), diffs that against the new ring, and
// migrates each mismatch. It returns the completed moves, stopping at
// the first failure.
func (r *Router) migratePass(ctx context.Context, union map[string]*shardState, newRing *Ring, states map[string]*shardState, newEpoch uint64) ([]MoveReport, error) {
	residence := make(map[string]string)
	for name, s := range union {
		resp := s.handler.Handle(ctx, &wire.ListStreams{})
		listing, ok := resp.(*wire.ListStreamsResp)
		if !ok {
			return nil, fmt.Errorf("cluster: listing streams of %q: %v", name, resp)
		}
		for _, uuid := range listing.UUIDs {
			if prev, dup := residence[uuid]; dup {
				return nil, fmt.Errorf("cluster: stream %q is served by both %q and %q; refusing to reshard", uuid, prev, name)
			}
			residence[uuid] = name
		}
	}

	type task struct {
		uuid     string
		src, dst *shardState
	}
	var tasks []task
	for uuid, srcName := range residence {
		dstName := newRing.Owner(uuid)
		if dstName != srcName {
			tasks = append(tasks, task{uuid: uuid, src: union[srcName], dst: states[dstName]})
		}
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].uuid < tasks[j].uuid })

	var moved []MoveReport
	for _, tk := range tasks {
		mr, moveErr := r.migrateStream(ctx, tk.uuid, tk.src, tk.dst, newEpoch)
		if moveErr != nil {
			return moved, fmt.Errorf("cluster: migrating stream %q from %s to %s: %w", tk.uuid, tk.src.name, tk.dst.name, moveErr)
		}
		moved = append(moved, mr)
	}
	return moved, nil
}

// migrateStream runs the per-stream migration protocol described at the
// top of this file. On error the destination's partial import is
// discarded and the stream keeps being served by the source.
func (r *Router) migrateStream(ctx context.Context, uuid string, src, dst *shardState, newEpoch uint64) (MoveReport, error) {
	ms := &moveState{src: src, dst: dst}
	r.movesMu.Lock()
	r.moves[uuid] = ms
	r.movesActive.Store(int64(len(r.moves)))
	r.movesMu.Unlock()
	// Dispatch barrier: requests that read the moves table before the
	// entry appeared may still be dispatching ungated; wait them out so
	// every request in flight from here on passes the move gate — the
	// freeze below relies on that to quiesce the source.
	r.routeMu.Lock()
	//lint:ignore SA2001 empty critical section is the barrier
	r.routeMu.Unlock()

	frozen := false
	fail := func(err error) (MoveReport, error) {
		if frozen {
			ms.gate.Unlock()
		}
		r.movesMu.Lock()
		delete(r.moves, uuid)
		r.movesActive.Store(int64(len(r.moves)))
		r.movesMu.Unlock()
		// Best effort: wipe the partial import so the destination's store
		// does not accumulate half-copied streams. The migration may have
		// failed BECAUSE ctx died, so the cleanup gets its own detached
		// deadline rather than inheriting the dead context.
		abortCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 30*time.Second)
		defer cancel()
		if frozen {
			// The stream keeps being served by the source: lift the drain
			// fence (epoch 0) so its writes flow again.
			src.handler.Handle(abortCtx, &wire.HandoffComplete{UUID: uuid, Epoch: 0, Action: wire.HandoffFence})
		}
		dst.handler.Handle(abortCtx, &wire.HandoffComplete{UUID: uuid, Action: wire.HandoffAbort})
		return MoveReport{}, err
	}

	report := MoveReport{UUID: uuid, From: src.name, To: dst.name}
	from := uint64(0)
	for round := 1; ; round++ {
		count, items, err := r.copyRound(ctx, uuid, src, dst, from, false)
		if err != nil {
			return fail(err)
		}
		report.CopyRounds, report.Items = round, report.Items+items
		delta := count - from
		from = count
		if r.testHookAfterCopyRound != nil {
			r.testHookAfterCopyRound(uuid, round)
		}
		if delta <= liveCopyDeltaChunks || round >= maxLiveCopyRounds {
			break
		}
	}

	// Freeze: hold this stream's requests; in-flight ones drain out of
	// the gate's read side first, so the source is quiescent below.
	ms.gate.Lock()
	frozen = true
	// Fence: the gate only holds THIS router's requests — a second router
	// holding the old ring would still route writes straight to the
	// source, where they would land after the drain read below and be
	// deleted by release. Arming the source's write fence at the new
	// epoch closes that gap: stale-epoch mutations answer CodeWrongShard
	// (the fencing engine barriers against in-flight ones before
	// acknowledging), and the rejected router refreshes and retries once
	// the new topology publishes.
	if resp := src.handler.Handle(ctx, &wire.HandoffComplete{UUID: uuid, Epoch: newEpoch, Action: wire.HandoffFence}); !isOK(resp) {
		return fail(fmt.Errorf("arming source write fence failed: %v", resp))
	}
	if r.testHookDuringFreeze != nil {
		r.testHookDuringFreeze(uuid)
	}
	count, items, err := r.copyRound(ctx, uuid, src, dst, from, true)
	if err != nil {
		return fail(err)
	}
	report.Items += items
	report.Chunks = count

	// Handoff: destination starts serving before the source lets go, and
	// forwarding flips before the gate reopens — at no point is the
	// stream served by zero or two sides.
	if resp := dst.handler.Handle(ctx, &wire.HandoffComplete{UUID: uuid, Epoch: newEpoch, Action: wire.HandoffCommit}); !isOK(resp) {
		return fail(fmt.Errorf("destination commit failed: %v", resp))
	}
	if resp := src.handler.Handle(ctx, &wire.HandoffComplete{UUID: uuid, Epoch: newEpoch, Action: wire.HandoffRelease}); !isOK(resp) {
		// The destination is committed and authoritative; the source
		// refused to let go (e.g. it crashed after the drain). The move
		// entry is RETAINED with forwarding on, so this router keeps
		// routing the stream to the destination and never back to the
		// stale source copy — but the reshard stops and surfaces the
		// failure: the source must be repaired (released or wiped)
		// before a future reshard can relist residence cleanly.
		ms.forwarded.Store(true)
		ms.gate.Unlock()
		frozen = false
		return MoveReport{}, fmt.Errorf("source release failed (destination committed; forwarding retained): %v", resp)
	}
	ms.forwarded.Store(true)
	ms.gate.Unlock()
	return report, nil
}

// copyRound exports chunks [fromChunk, count) — plus the stream's meta,
// index, staged records, grants, and envelopes when withMeta — from src
// and imports every page into dst. It returns the chunk count pinned at
// the start of the round.
func (r *Router) copyRound(ctx context.Context, uuid string, src, dst *shardState, fromChunk uint64, withMeta bool) (count uint64, items int, err error) {
	req := &wire.StreamSnapshot{UUID: uuid, FromChunk: fromChunk, WithMeta: withMeta, MaxItems: snapshotPageItems}
	sink := func(page *wire.SnapshotChunk) error {
		if page.HasCfg {
			count = page.Count
		}
		if len(page.Items) == 0 {
			return nil
		}
		resp := dst.handler.Handle(ctx, &wire.IngestSnapshot{UUID: uuid, Items: page.Items})
		if !isOK(resp) {
			return fmt.Errorf("import refused: %v", resp)
		}
		items += len(page.Items)
		return nil
	}
	if ss, ok := src.handler.(snapshotSource); ok {
		// The sink closure mutates count/items, so the call must complete
		// before they are read — sequence it explicitly rather than
		// relying on operand evaluation order inside a return statement.
		err = ss.SnapshotPages(ctx, req, sink)
		return count, items, err
	}
	cursor := ""
	for {
		page := *req
		page.Cursor = cursor
		resp := src.handler.Handle(ctx, &page)
		chunkPage, ok := resp.(*wire.SnapshotChunk)
		if !ok {
			return count, items, fmt.Errorf("export failed: %v", resp)
		}
		if err := sink(chunkPage); err != nil {
			return count, items, err
		}
		if chunkPage.Done {
			return count, items, nil
		}
		cursor = chunkPage.Cursor
	}
}

func isOK(resp wire.Message) bool {
	_, ok := resp.(*wire.OK)
	return ok
}

// handleReshard serves the wire-level membership change: each member name
// resolves to an existing shard or is dialed.
func (r *Router) handleReshard(ctx context.Context, m *wire.Reshard) wire.Message {
	if len(m.Members) == 0 {
		return &wire.Error{Code: wire.CodeBadRequest, Msg: "cluster: reshard needs at least one member"}
	}
	shards := make([]Shard, len(m.Members))
	for i, name := range m.Members {
		shards[i] = Shard{Name: name}
	}
	report, err := r.rebalance(ctx, shards, m.ExpectEpoch)
	if err != nil {
		if errors.Is(err, ErrReshardInProgress) || errors.Is(err, ErrEpochConflict) {
			return &wire.Error{Code: wire.CodeBusy, Msg: err.Error()}
		}
		return server.WireError(err)
	}
	return &wire.TopologyInfoResp{Epoch: report.Topology.Epoch, Members: report.Topology.Members}
}

// refreshTopology recovers from a CodeWrongShard answer: some shard
// reported a membership change (at least minEpoch) this router has not
// seen. It asks the current shards for the published topology, and
// installs the newest one found — reusing known members' handlers and
// dialing the rest. Returns whether the router's ring now covers
// minEpoch.
func (r *Router) refreshTopology(ctx context.Context, minEpoch uint64) bool {
	r.refreshMu.Lock()
	defer r.refreshMu.Unlock()
	rt := r.rt.Load()
	if rt.epoch >= minEpoch {
		return true // another request already refreshed
	}
	var best *wire.TopologyInfoResp
	for _, name := range rt.order {
		resp := rt.shards[name].handler.Handle(ctx, &wire.TopologyInfo{})
		if ti, ok := resp.(*wire.TopologyInfoResp); ok && len(ti.Members) > 0 {
			if best == nil || ti.Epoch > best.Epoch {
				best = ti
			}
		}
	}
	if best == nil || best.Epoch <= rt.epoch {
		return false
	}
	if err := r.installMembers(best.Epoch, best.Members); err != nil {
		return false
	}
	return best.Epoch >= minEpoch
}

// installMembers swaps in a topology learned from the cluster (not
// coordinated by this router): known members keep their handlers, new
// ones are dialed, dropped ones close.
func (r *Router) installMembers(epoch uint64, members []string) (err error) {
	if !r.reshardMu.TryLock() {
		return ErrReshardInProgress
	}
	defer r.reshardMu.Unlock()
	rt := r.rt.Load()
	if epoch <= rt.epoch {
		return nil
	}
	states := make(map[string]*shardState, len(members))
	order := make([]string, 0, len(members))
	var newDials []io.Closer
	defer func() {
		if err == nil {
			return
		}
		for _, c := range newDials {
			c.Close()
		}
	}()
	for _, name := range members {
		if _, dup := states[name]; dup {
			return fmt.Errorf("cluster: duplicate member %q in published topology", name)
		}
		if cur, known := rt.shards[name]; known {
			states[name] = cur
		} else {
			if r.dial == nil {
				return fmt.Errorf("cluster: published topology names unknown member %q and no dialer is configured", name)
			}
			remote, dialErr := r.dial(name)
			if dialErr != nil || remote.Handler == nil {
				return fmt.Errorf("cluster: dialing member %q: %v", name, dialErr)
			}
			if c, ok := remote.Handler.(io.Closer); ok {
				newDials = append(newDials, c)
			}
			states[name] = &shardState{name: name, handler: remote.Handler}
		}
		order = append(order, name)
	}
	ring, err := NewRing(order, r.vnodes)
	if err != nil {
		return err
	}
	r.rt.Store(&routing{epoch: epoch, ring: ring, shards: states, order: order})
	for name, s := range rt.shards {
		if _, kept := states[name]; !kept {
			if c, ok := s.handler.(io.Closer); ok {
				_ = c.Close()
			}
		}
	}
	return nil
}
