package cluster

import (
	"fmt"
	"testing"
)

func TestRingPlacementDeterministic(t *testing.T) {
	a, err := NewRing([]string{"a", "b", "c"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Same membership in a different construction order must place every
	// key identically: placement is pure hashing, not list position.
	b, err := NewRing([]string{"c", "a", "b"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("stream-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: %q vs %q", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingBalance(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	r, err := NewRing(nodes, 0) // default vnodes
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("stream-%d", i))]++
	}
	for _, node := range nodes {
		if share := float64(counts[node]) / keys; share < 0.10 {
			t.Errorf("node %s owns only %.1f%% of keys (%v)", node, share*100, counts)
		}
	}
}

func TestRingConsistency(t *testing.T) {
	before, err := NewRing([]string{"a", "b", "c"}, 128)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing([]string{"a", "b", "c", "d"}, 128)
	if err != nil {
		t.Fatal(err)
	}
	// Adding a node may claim keys, but no key may move between two
	// surviving nodes — the defining property of consistent hashing.
	moved := 0
	const keys = 5000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("stream-%d", i)
		was, is := before.Owner(key), after.Owner(key)
		if was != is {
			if is != "d" {
				t.Fatalf("key %q moved %q -> %q, not to the new node", key, was, is)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Error("new node claimed no keys")
	}
	if moved > keys/2 {
		t.Errorf("new node claimed %d/%d keys, expected ~1/4", moved, keys)
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 8); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, err := NewRing([]string{""}, 8); err == nil {
		t.Error("empty node name accepted")
	}
}
