package cluster

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/chunk"
	"repro/internal/server"
	"repro/internal/wire"
)

// TestDrainGapFencedAgainstSecondRouter is the regression test for the
// reshard drain gap: the coordinating router's move gate only holds ITS
// OWN requests during a stream's frozen drain — a second router holding
// the old ring routes writes straight to the source engine, where (before
// the write fence existed) they landed after the drain's final read and
// were deleted by release: an acknowledged write, silently gone.
//
// With the fence, the source engine rejects stale-epoch mutations for
// the duration of the drain: the second router's write is refused with
// CodeWrongShard — never acknowledged, never lost — and succeeds once it
// refreshes to the published topology.
func TestDrainGapFencedAgainstSecondRouter(t *testing.T) {
	engines := make(map[string]*server.Engine)
	var shardsA, shardsB []Shard
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("shard-%d", i)
		e := newEngine(t)
		engines[name] = e
		shardsA = append(shardsA, Shard{Name: name, Handler: e})
		shardsB = append(shardsB, Shard{Name: name, Handler: e})
	}
	routerA, err := NewRouter(shardsA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	routerB, err := NewRouter(shardsB, Options{Dial: func(member string) (Shard, error) {
		e, ok := engines[member]
		if !ok {
			return Shard{}, fmt.Errorf("unknown member %q", member)
		}
		return Shard{Name: member, Handler: e}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}

	tc := &testCluster{router: routerA, spec: chunk.DigestSpec{Sum: true, Count: true}}
	specBytes, _ := tc.spec.MarshalBinary()
	tc.cfg = wire.StreamConfig{Epoch: 0, Interval: 100, VectorLen: uint32(tc.spec.VectorLen()), Fanout: 8, DigestSpec: specBytes}
	const acked = 8
	tc.createStream(t, "gap")
	tc.ingest(t, "gap", acked)
	ackedSum := tc.statSum(t, "gap", acked*100)

	// During the frozen drain, write through the STALE router B: it still
	// routes to the source, whose fence must refuse the mutation. Reads
	// are not fenced and keep answering.
	staleChunk := func(idx uint64) *wire.InsertChunk {
		start := int64(idx) * 100
		sealed, err := chunk.SealPlain(tc.spec, chunk.CompressionNone, idx, start, start+100,
			[]chunk.Point{{TS: start, Val: int64(idx + 1)}})
		if err != nil {
			t.Fatal(err)
		}
		return &wire.InsertChunk{UUID: "gap", Chunk: chunk.MarshalSealed(sealed)}
	}
	var fenced, injected atomic.Int64
	routerA.testHookDuringFreeze = func(uuid string) {
		if uuid != "gap" {
			return
		}
		injected.Add(1)
		resp := routerB.Handle(context.Background(), staleChunk(acked))
		e, isErr := resp.(*wire.Error)
		if !isErr {
			t.Errorf("stale router's write during frozen drain was accepted: %#v (drain gap open)", resp)
			return
		}
		if e.Code != wire.CodeWrongShard {
			t.Errorf("stale write refused with code %d (%s), want CodeWrongShard from the fence", e.Code, e.Msg)
		}
		fenced.Add(1)
		if resp := routerB.Handle(context.Background(), &wire.StreamInfo{UUID: "gap"}); resp != nil {
			if _, ok := resp.(*wire.StreamInfoResp); !ok {
				t.Errorf("read through stale router during drain -> %#v", resp)
			}
		}
	}

	// Shrink the owner away: the stream is guaranteed to migrate.
	owner := routerA.Owner("gap")
	var shards []Shard
	for _, n := range routerA.Shards() {
		if n != owner {
			shards = append(shards, Shard{Name: n})
		}
	}
	report, err := routerA.Rebalance(context.Background(), shards)
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	for _, mr := range report.Moved {
		if mr.UUID == "gap" {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("stream did not move when its owner %s left the membership", owner)
	}
	if injected.Load() == 0 {
		t.Fatal("freeze hook never ran for the migrated stream")
	}
	if fenced.Load() != injected.Load() {
		t.Fatalf("%d of %d stale drain writes were fenced", fenced.Load(), injected.Load())
	}

	// Zero acked chunks lost, zero ghosts gained: exactly the pre-reshard
	// data answers, byte-for-byte the same aggregate.
	resp := routerA.Handle(context.Background(), &wire.StreamInfo{UUID: "gap"})
	info, ok := resp.(*wire.StreamInfoResp)
	if !ok {
		t.Fatalf("StreamInfo after reshard -> %#v", resp)
	}
	if info.Count != acked {
		t.Fatalf("chunk count after reshard = %d, want %d (acked writes lost or fenced write leaked)", info.Count, acked)
	}
	if got := tc.statSum(t, "gap", acked*100); got != ackedSum {
		t.Fatalf("aggregate after reshard = %d, want %d", got, ackedSum)
	}

	// The refused write was never acknowledged, so the producer retries:
	// through the stale router it now heals via CodeWrongShard + refresh
	// and lands on the stream's new owner.
	if resp := routerB.Handle(context.Background(), staleChunk(acked)); !isOK(resp) {
		t.Fatalf("retried write through healed router -> %#v", resp)
	}
	if got := tc.statSum(t, "gap", (acked+1)*100); got != ackedSum+acked+1 {
		t.Fatalf("aggregate after retried write = %d, want %d", got, ackedSum+acked+1)
	}
}
