package cluster

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/kv"
	"repro/internal/server"
	"repro/internal/wire"
)

// startEngineTCP serves a fresh engine on a loopback listener.
func startEngineTCP(t *testing.T) (addr string, engine *server.Engine) {
	t.Helper()
	engine, err := server.New(kv.NewMemStore(), server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewServer(engine, func(string, ...any) {})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ctx, lis)
	}()
	t.Cleanup(func() {
		cancel()
		srv.Close()
		<-done
	})
	return lis.Addr().String(), engine
}

// TestRouterOverTCPShards routes to engines reached over the real wire
// protocol, the -peers deployment shape of cmd/timecrypt-server.
func TestRouterOverTCPShards(t *testing.T) {
	var shards []Shard
	engines := make(map[string]*server.Engine)
	for i := 0; i < 3; i++ {
		addr, engine := startEngineTCP(t)
		name := fmt.Sprintf("peer-%d", i)
		sh, err := NewTCPShard(name, addr, 2)
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, sh)
		engines[name] = engine
	}
	router, err := NewRouter(shards, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	spec := wire.StreamConfig{Epoch: 0, Interval: 100, VectorLen: 2, Fanout: 8}
	const streams = 9
	for i := 0; i < streams; i++ {
		uuid := fmt.Sprintf("remote-%d", i)
		if resp := router.Handle(context.Background(), &wire.CreateStream{UUID: uuid, Cfg: spec}); !isOK(resp) {
			t.Fatalf("create %q over TCP -> %#v", uuid, resp)
		}
		// The stream must exist on the owning remote engine.
		if streams := engines[router.Owner(uuid)].ListStreams(); len(streams) == 0 {
			t.Fatalf("stream %q not on its owner", uuid)
		}
	}
	lr, ok := router.Handle(context.Background(), &wire.ListStreams{}).(*wire.ListStreamsResp)
	if !ok || len(lr.UUIDs) != streams {
		t.Fatalf("TCP fan-out listing -> %#v", lr)
	}
	victim := lr.UUIDs[0]
	if info, ok := router.Handle(context.Background(), &wire.StreamInfo{UUID: victim}).(*wire.StreamInfoResp); !ok {
		t.Fatalf("info over TCP failed: %#v", info)
	}
	// Transport failures surface as protocol errors, not panics.
	router.Close()
	if e, ok := router.Handle(context.Background(), &wire.StreamInfo{UUID: victim}).(*wire.Error); !ok || e.Code != wire.CodeInternal {
		t.Errorf("dead shard -> %#v, want internal error", e)
	}
}

// TestRebalanceOverTCPShards grows a cluster of remote engines reached
// over the real wire protocol: the stream exports ride the multiplexed
// connection as credit-flow-controlled push streams (tcpShard implements
// snapshotSource), and the handoff and topology publish travel as
// ordinary requests.
func TestRebalanceOverTCPShards(t *testing.T) {
	var shards []Shard
	engines := make(map[string]*server.Engine)
	for i := 0; i < 3; i++ {
		addr, engine := startEngineTCP(t)
		sh, err := NewTCPShard(addr, addr, 4)
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, sh)
		engines[addr] = engine
	}
	router, err := NewRouter(shards, Options{Dial: func(member string) (Shard, error) {
		return NewTCPShard(member, member, 4)
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	spec := wire.StreamConfig{Epoch: 0, Interval: 100, VectorLen: 2, Fanout: 8}
	const streams = 12
	for i := 0; i < streams; i++ {
		uuid := fmt.Sprintf("mv-%d", i)
		if resp := router.Handle(context.Background(), &wire.CreateStream{UUID: uuid, Cfg: spec}); !isOK(resp) {
			t.Fatalf("create %q -> %#v", uuid, resp)
		}
		// Enough chunks for several export pages per stream.
		for c := 0; c < 8; c++ {
			sealed := testSealedChunk(t, uint64(c))
			if resp := router.Handle(context.Background(), &wire.InsertChunk{UUID: uuid, Chunk: sealed}); !isOK(resp) {
				t.Fatalf("insert %q/%d -> %#v", uuid, c, resp)
			}
		}
	}

	// Grow onto a fourth remote engine via the wire-level admin path (the
	// new member resolves through the dialer, exactly like timecrypt-cli
	// reshard against a router front end).
	addr4, engine4 := startEngineTCP(t)
	engines[addr4] = engine4
	var members []string
	for _, sh := range shards {
		members = append(members, sh.Name)
	}
	resp := router.Handle(context.Background(), &wire.Reshard{Members: append(members, addr4)})
	ti, ok := resp.(*wire.TopologyInfoResp)
	if !ok || ti.Epoch != 2 || len(ti.Members) != 4 {
		t.Fatalf("Reshard over TCP -> %#v", resp)
	}
	if len(engine4.ListStreams()) == 0 {
		t.Fatal("no stream migrated to the new remote shard")
	}
	// Every stream serves from exactly one engine, matching the new ring.
	res := make(map[string]string)
	for name, e := range engines {
		for _, uuid := range e.ListStreams() {
			if prev, dup := res[uuid]; dup {
				t.Fatalf("stream %q on both %s and %s", uuid, prev, name)
			}
			res[uuid] = name
		}
	}
	for i := 0; i < streams; i++ {
		uuid := fmt.Sprintf("mv-%d", i)
		if want := router.Owner(uuid); res[uuid] != want {
			t.Errorf("stream %q on %s, ring owner %s", uuid, res[uuid], want)
		}
		info, ok := router.Handle(context.Background(), &wire.StreamInfo{UUID: uuid}).(*wire.StreamInfoResp)
		if !ok || info.Count != 8 {
			t.Errorf("stream %q after TCP reshard: %#v", uuid, info)
		}
	}
}

// testSealedChunk seals one plaintext chunk with a 2-element digest for
// the TCP tests' VectorLen-2 stream config.
func testSealedChunk(t *testing.T, idx uint64) []byte {
	t.Helper()
	spec := chunk.DigestSpec{Sum: true, Count: true} // 2 elements
	start := int64(idx) * 100
	sealed, err := chunk.SealPlain(spec, chunk.CompressionNone, idx, start, start+100,
		[]chunk.Point{{TS: start, Val: int64(idx + 1)}})
	if err != nil {
		t.Fatal(err)
	}
	return chunk.MarshalSealed(sealed)
}

// TestTCPShardReconnects: a shard heals after its peer restarts instead of
// poisoning the connection pool forever.
func TestTCPShardReconnects(t *testing.T) {
	engine, err := server.New(kv.NewMemStore(), server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	srv := server.NewServer(engine, func(string, ...any) {})
	ctx1, cancel1 := context.WithCancel(context.Background())
	done1 := make(chan struct{})
	go func() { defer close(done1); srv.Serve(ctx1, lis) }()

	sh, err := NewTCPShard("peer", addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Handler.(*tcpShard).Close()
	spec := wire.StreamConfig{Epoch: 0, Interval: 100, VectorLen: 2, Fanout: 8}
	if resp := sh.Handler.Handle(context.Background(), &wire.CreateStream{UUID: "s", Cfg: spec}); !isOK(resp) {
		t.Fatalf("create -> %#v", resp)
	}

	// Kill the peer: requests must fail cleanly (one per pooled slot).
	cancel1()
	srv.Close()
	<-done1
	for i := 0; i < 2; i++ {
		if _, ok := sh.Handler.Handle(context.Background(), &wire.StreamInfo{UUID: "s"}).(*wire.Error); !ok {
			t.Fatal("request to dead peer did not error")
		}
	}

	// Restart the peer on the same address (same engine state) — the
	// shard must redial and recover without a router restart.
	lis2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	srv2 := server.NewServer(engine, func(string, ...any) {})
	ctx2, cancel2 := context.WithCancel(context.Background())
	done2 := make(chan struct{})
	go func() { defer close(done2); srv2.Serve(ctx2, lis2) }()
	defer func() { cancel2(); srv2.Close(); <-done2 }()

	var recovered bool
	for i := 0; i < 4 && !recovered; i++ {
		_, recovered = sh.Handler.Handle(context.Background(), &wire.StreamInfo{UUID: "s"}).(*wire.StreamInfoResp)
	}
	if !recovered {
		t.Fatal("shard did not recover after peer restart")
	}
}

// parkUntilGone parks every request until its context fires (the server
// cancels per-connection contexts when the connection dies), so a peer
// restart catches calls genuinely in flight.
type parkUntilGone struct {
	inner  server.Handler
	parked atomic.Int64
}

func (p *parkUntilGone) Handle(ctx context.Context, req wire.Message) wire.Message {
	if _, ok := req.(*wire.StreamInfo); ok {
		p.parked.Add(1)
		<-ctx.Done()
		return &wire.Error{Code: wire.CodeCanceled, Msg: ctx.Err().Error()}
	}
	return p.inner.Handle(ctx, req)
}

// TestTCPShardConcurrentRedial is the multiplexed-transport regression for
// peer restarts: many calls in flight on the shard's one connection when
// the peer dies must all observe the broken-conn failure, retry once, and
// succeed against the restarted peer — no stragglers stuck on a stale
// exchange, no poisoned pool.
func TestTCPShardConcurrentRedial(t *testing.T) {
	engine, err := server.New(kv.NewMemStore(), server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Distinct streams so the server's per-stream ordering doesn't
	// serialize the parked calls — all of them must be mid-flight when
	// the peer dies.
	const inflight = 8
	spec := wire.StreamConfig{Epoch: 0, Interval: 100, VectorLen: 2, Fanout: 8}
	for i := 0; i < inflight; i++ {
		if err := engine.CreateStream(fmt.Sprintf("s-%d", i), spec); err != nil {
			t.Fatal(err)
		}
	}
	park := &parkUntilGone{inner: engine}

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	srv := server.NewServer(park, func(string, ...any) {})
	done1 := make(chan struct{})
	go func() { defer close(done1); srv.Serve(context.Background(), lis) }()

	sh, err := NewTCPShard("peer", addr, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Handler.(*tcpShard).Close()

	// Launch concurrent calls that all park server-side: genuinely in
	// flight together on the shard's single multiplexed connection.
	results := make(chan wire.Message, inflight)
	for i := 0; i < inflight; i++ {
		go func(i int) {
			results <- sh.Handler.Handle(context.Background(), &wire.StreamInfo{UUID: fmt.Sprintf("s-%d", i)})
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for park.parked.Load() < inflight {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d calls in flight", park.parked.Load(), inflight)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Restart the peer under them: free the address first (close just the
	// listener, leaving the parked requests in flight), rebind a healthy
	// server, then kill the old connections so every parked call breaks
	// at once and retries against the new listener.
	lis.Close()
	<-done1
	lis2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	srv2 := server.NewServer(engine, func(string, ...any) {})
	ctx2, cancel2 := context.WithCancel(context.Background())
	done2 := make(chan struct{})
	go func() { defer close(done2); srv2.Serve(ctx2, lis2) }()
	defer func() { cancel2(); srv2.Close(); <-done2 }()
	srv.Close()

	for i := 0; i < inflight; i++ {
		resp := <-results
		if _, ok := resp.(*wire.StreamInfoResp); !ok {
			t.Fatalf("in-flight call %d after peer restart -> %#v (retry-once failed)", i, resp)
		}
	}
}

// TestRetriableClassification pins the read-retry list: every read-only
// request heals transparently across a broken session (redial, leader
// failover), while anything mutating surfaces the ambiguity to the
// caller instead of being blindly replayed.
func TestRetriableClassification(t *testing.T) {
	reads := []wire.Message{
		&wire.StreamInfo{}, &wire.StatRange{}, &wire.GetRange{},
		&wire.ListStreams{}, &wire.GetGrants{}, &wire.GetEnvelopes{},
		&wire.GetStaged{}, &wire.AggRange{}, &wire.QueryStream{},
		&wire.TopologyInfo{}, &wire.StreamSnapshot{}, &wire.LeaseInfo{},
		&wire.Batch{Reqs: []wire.Message{&wire.StatRange{}, &wire.AggRange{}}},
	}
	for _, m := range reads {
		if !retriable(m) {
			t.Errorf("%T not retriable — reads must heal across redials", m)
		}
	}
	writes := []wire.Message{
		&wire.InsertChunk{}, &wire.CreateStream{}, &wire.DeleteStream{},
		&wire.DeleteRange{}, &wire.Rollup{}, &wire.PutGrant{},
		&wire.StageRecord{}, &wire.Promote{}, &wire.ReplAppend{},
		&wire.Batch{},
		&wire.Batch{Reqs: []wire.Message{&wire.StatRange{}, &wire.InsertChunk{}}},
	}
	for _, m := range writes {
		if retriable(m) {
			t.Errorf("%T retriable — a replay after an ambiguous outcome double-applies", m)
		}
	}
}
