package cluster

import (
	"context"
	"fmt"
	"net"
	"testing"

	"repro/internal/kv"
	"repro/internal/server"
	"repro/internal/wire"
)

// startEngineTCP serves a fresh engine on a loopback listener.
func startEngineTCP(t *testing.T) (addr string, engine *server.Engine) {
	t.Helper()
	engine, err := server.New(kv.NewMemStore(), server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewServer(engine, func(string, ...any) {})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ctx, lis)
	}()
	t.Cleanup(func() {
		cancel()
		srv.Close()
		<-done
	})
	return lis.Addr().String(), engine
}

// TestRouterOverTCPShards routes to engines reached over the real wire
// protocol, the -peers deployment shape of cmd/timecrypt-server.
func TestRouterOverTCPShards(t *testing.T) {
	var shards []Shard
	engines := make(map[string]*server.Engine)
	for i := 0; i < 3; i++ {
		addr, engine := startEngineTCP(t)
		name := fmt.Sprintf("peer-%d", i)
		sh, err := NewTCPShard(name, addr, 2)
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, sh)
		engines[name] = engine
	}
	router, err := NewRouter(shards, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	spec := wire.StreamConfig{Epoch: 0, Interval: 100, VectorLen: 2, Fanout: 8}
	const streams = 9
	for i := 0; i < streams; i++ {
		uuid := fmt.Sprintf("remote-%d", i)
		if resp := router.Handle(context.Background(), &wire.CreateStream{UUID: uuid, Cfg: spec}); !isOK(resp) {
			t.Fatalf("create %q over TCP -> %#v", uuid, resp)
		}
		// The stream must exist on the owning remote engine.
		if streams := engines[router.Owner(uuid)].ListStreams(); len(streams) == 0 {
			t.Fatalf("stream %q not on its owner", uuid)
		}
	}
	lr, ok := router.Handle(context.Background(), &wire.ListStreams{}).(*wire.ListStreamsResp)
	if !ok || len(lr.UUIDs) != streams {
		t.Fatalf("TCP fan-out listing -> %#v", lr)
	}
	victim := lr.UUIDs[0]
	if info, ok := router.Handle(context.Background(), &wire.StreamInfo{UUID: victim}).(*wire.StreamInfoResp); !ok {
		t.Fatalf("info over TCP failed: %#v", info)
	}
	// Transport failures surface as protocol errors, not panics.
	router.Close()
	if e, ok := router.Handle(context.Background(), &wire.StreamInfo{UUID: victim}).(*wire.Error); !ok || e.Code != wire.CodeInternal {
		t.Errorf("dead shard -> %#v, want internal error", e)
	}
}

// TestTCPShardReconnects: a shard heals after its peer restarts instead of
// poisoning the connection pool forever.
func TestTCPShardReconnects(t *testing.T) {
	engine, err := server.New(kv.NewMemStore(), server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	srv := server.NewServer(engine, func(string, ...any) {})
	ctx1, cancel1 := context.WithCancel(context.Background())
	done1 := make(chan struct{})
	go func() { defer close(done1); srv.Serve(ctx1, lis) }()

	sh, err := NewTCPShard("peer", addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Handler.(*tcpShard).Close()
	spec := wire.StreamConfig{Epoch: 0, Interval: 100, VectorLen: 2, Fanout: 8}
	if resp := sh.Handler.Handle(context.Background(), &wire.CreateStream{UUID: "s", Cfg: spec}); !isOK(resp) {
		t.Fatalf("create -> %#v", resp)
	}

	// Kill the peer: requests must fail cleanly (one per pooled slot).
	cancel1()
	srv.Close()
	<-done1
	for i := 0; i < 2; i++ {
		if _, ok := sh.Handler.Handle(context.Background(), &wire.StreamInfo{UUID: "s"}).(*wire.Error); !ok {
			t.Fatal("request to dead peer did not error")
		}
	}

	// Restart the peer on the same address (same engine state) — the
	// shard must redial and recover without a router restart.
	lis2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	srv2 := server.NewServer(engine, func(string, ...any) {})
	ctx2, cancel2 := context.WithCancel(context.Background())
	done2 := make(chan struct{})
	go func() { defer close(done2); srv2.Serve(ctx2, lis2) }()
	defer func() { cancel2(); srv2.Close(); <-done2 }()

	var recovered bool
	for i := 0; i < 4 && !recovered; i++ { // each slot redials on its next turn
		_, recovered = sh.Handler.Handle(context.Background(), &wire.StreamInfo{UUID: "s"}).(*wire.StreamInfoResp)
	}
	if !recovered {
		t.Fatal("shard did not recover after peer restart")
	}
}
