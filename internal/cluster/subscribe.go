package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/sub"
	"repro/internal/wire"
)

// maxSubRebuilds bounds consecutive no-progress heal attempts: a
// subscription that cannot re-establish its fan-out within this many
// rebuilds surfaces the underlying error instead of retrying forever. The
// counter resets on every delivered window, so a long-lived subscription
// can heal across any number of non-overlapping reshards.
const maxSubRebuilds = 5

// subRebuildBackoff paces heal attempts while a reshard is still settling
// (the new owner may not have imported the stream yet when the old owner
// starts answering CodeWrongShard).
const subRebuildBackoff = 25 * time.Millisecond

var errSubClosed = errors.New("cluster: subscription closed")

// Subscribe opens a live cross-shard subscription: the stream set is split
// by owning shard exactly as AggRange splits a query plan, each shard
// maintains its own materialized view and pushes per-window partial
// aggregates, and the returned handle merges them lock-step by window
// sequence — element-wise ciphertext addition, the same combine AggRange
// performs once per query, here performed once per window forever.
//
// The handle heals across reshards: when any shard leg fails (the stream
// moved, the connection broke, the topology changed), the router refreshes
// its ring on CodeWrongShard, tears down every leg, and rebuilds the whole
// fan-out starting at the next undelivered window. Committed windows are
// immutable and re-readable, so the rebuilt legs resync any windows the
// teardown lost and the merged sequence stays gap-free and duplicate-free;
// legs replaying windows already delivered are skipped by sequence number.
func (r *Router) Subscribe(ctx context.Context, req *wire.Subscribe) (sub.Handle, error) {
	if req.WindowChunks == 0 {
		return nil, errors.New("cluster: subscription needs a window size")
	}
	if len(req.UUIDs) == 0 {
		return nil, errors.New("cluster: no streams given")
	}
	start := req.FromSeq
	if req.FromLatest {
		// The live frontier of a cross-shard plan is governed by its
		// slowest member; each shard only knows its own members, so the
		// router resolves the global minimum and pins every leg to it.
		s, err := r.latestSeq(ctx, req.UUIDs, req.WindowChunks)
		if err != nil {
			return nil, err
		}
		start = s
	}
	rs := &routerSub{
		r:     r,
		uuids: append([]string(nil), req.UUIDs...),
		elems: append([]uint32(nil), req.Elems...),
		wc:    req.WindowChunks,
		next:  start,
	}
	if err := rs.establish(ctx, start); err != nil {
		// A single stale-ring retry, mirroring Handle's wrong-shard
		// recovery: refresh and re-resolve ownership once.
		if !r.healWrongShard(ctx, err) {
			return nil, err
		}
		if err := rs.establish(ctx, start); err != nil {
			return nil, err
		}
	}
	return rs, nil
}

// latestSeq resolves the subscribe-time frontier of a cross-shard plan:
// the window index of the slowest member stream (min chunk count / window
// size), fetched concurrently like clampMulti's pre-pass.
func (r *Router) latestSeq(ctx context.Context, uuids []string, wc uint64) (uint64, error) {
	rt := r.rt.Load()
	infos := make([]wire.Message, len(uuids))
	var wg sync.WaitGroup
	for i, uuid := range uuids {
		wg.Add(1)
		go func(i int, uuid string) {
			defer wg.Done()
			infos[i] = r.fanout(ctx, r.effectiveShard(rt, uuid), &wire.StreamInfo{UUID: uuid})
		}(i, uuid)
	}
	if e := awaitFanout(ctx, &wg); e != nil {
		return 0, e
	}
	min := ^uint64(0)
	for _, resp := range infos {
		info, ok := resp.(*wire.StreamInfoResp)
		if !ok {
			if e, isErr := resp.(*wire.Error); isErr {
				return 0, e
			}
			return 0, fmt.Errorf("cluster: unexpected info response %T", resp)
		}
		if info.Count < min {
			min = info.Count
		}
	}
	return min / wc, nil
}

// healWrongShard reports whether err is a wrong-shard answer and, when it
// is, refreshes the ring so the next ownership resolution sees the reshard
// that produced it. server.WireError maps both raw engine moved-errors
// (in-process shards) and decoded wire errors (remote shards) to the code.
func (r *Router) healWrongShard(ctx context.Context, err error) bool {
	we := server.WireError(err)
	if we.Code != wire.CodeWrongShard {
		return false
	}
	if r.dial != nil {
		r.refreshTopology(ctx, we.Aux)
	}
	return true
}

// unsalvageable reports errors no rebuild can fix: the plan itself is bad
// or a member stream is gone. Everything else (broken connections, moved
// streams, mid-reshard races) is worth re-establishing.
func unsalvageable(err error) bool {
	switch server.WireError(err).Code {
	case wire.CodeBadRequest, wire.CodeNotFound, wire.CodeExists:
		return true
	}
	return false
}

// routerSub is the router's sub.Handle: one leg per owning shard, merged
// lock-step. Recv is single-consumer (like every Handle); Close may race
// it from another goroutine.
type routerSub struct {
	r     *Router
	uuids []string
	elems []uint32
	wc    uint64
	resp  *wire.SubscribeResp

	mu      sync.Mutex
	closed  bool
	handles []sub.Handle // nil between teardown and the next establish

	next     uint64 // next window sequence to deliver (Recv-goroutine only)
	rebuilds int    // consecutive heal attempts without a delivery
}

func (rs *routerSub) Resp() *wire.SubscribeResp { return rs.resp }

// establish resolves current ownership and opens one subscription leg per
// shard group, every leg pinned to the explicit window sequence `from` —
// never FromLatest, which each shard would resolve against its own local
// frontier and desynchronize the merge.
func (rs *routerSub) establish(ctx context.Context, from uint64) error {
	rt := rs.r.rt.Load()
	order, groups, states := rs.r.shardGroups(rt, rs.uuids)
	handles := make([]sub.Handle, 0, len(order))
	fail := func(err error) error {
		for _, h := range handles {
			h.Close()
		}
		return err
	}
	var (
		epoch, interval int64
		total           uint32
	)
	for i, owner := range order {
		s := states[owner]
		sb, ok := s.handler.(server.Subscriber)
		if !ok {
			return fail(fmt.Errorf("cluster: shard %s cannot serve subscriptions", owner))
		}
		s.fanouts.Add(1)
		h, err := sb.Subscribe(ctx, &wire.Subscribe{
			UUIDs: groups[owner], WindowChunks: rs.wc, Elems: rs.elems, FromSeq: from,
		})
		if err != nil {
			s.errors.Add(1)
			return fail(err)
		}
		handles = append(handles, h)
		resp := h.Resp()
		if i == 0 {
			epoch, interval = resp.Epoch, resp.Interval
		} else if resp.Epoch != epoch || resp.Interval != interval {
			// Each shard validated geometry within its own group; the
			// cross-group check happens here, on the handshake echoes.
			return fail(&wire.Error{Code: wire.CodeBadRequest, Msg: "cluster: member stream geometries differ"})
		}
		total += resp.StreamCount
	}
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return fail(errSubClosed)
	}
	rs.handles = handles
	rs.mu.Unlock()
	if rs.resp == nil {
		rs.resp = &wire.SubscribeResp{
			FirstSeq: from, WindowChunks: rs.wc,
			Epoch: epoch, Interval: interval, StreamCount: total,
		}
	}
	return nil
}

// teardown closes every leg and leaves the handle leg-less until the next
// establish.
func (rs *routerSub) teardown() {
	rs.mu.Lock()
	handles := rs.handles
	rs.handles = nil
	rs.mu.Unlock()
	for _, h := range handles {
		h.Close()
	}
}

// Recv returns the next merged window, healing the fan-out when a leg
// fails. Progress resets the rebuild budget, so only consecutive fruitless
// rebuilds give up.
func (rs *routerSub) Recv(ctx context.Context) (*wire.SubEvent, error) {
	for {
		rs.mu.Lock()
		closed, handles := rs.closed, rs.handles
		rs.mu.Unlock()
		if closed {
			return nil, errSubClosed
		}
		var err error
		if handles == nil {
			err = rs.establish(ctx, rs.next)
			if err == nil {
				continue
			}
		} else {
			var ev *wire.SubEvent
			ev, err = rs.recvRound(ctx, handles)
			if err == nil {
				rs.rebuilds = 0
				return ev, nil
			}
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		healable := rs.r.healWrongShard(ctx, err)
		if !healable && unsalvageable(err) {
			rs.teardown()
			return nil, err
		}
		if rs.rebuilds++; rs.rebuilds > maxSubRebuilds {
			rs.teardown()
			return nil, fmt.Errorf("cluster: subscription could not re-establish after %d attempts: %w", maxSubRebuilds, err)
		}
		rs.teardown()
		select {
		case <-time.After(subRebuildBackoff):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// recvRound merges one window across all legs. Every leg is gap-free and
// ascending on its own, so each contributes exactly one partial per
// sequence; partials below rs.next are replays from a rebuilt leg
// backfilling behind an already-delivered window and are dropped. The
// Resync flag ORs across legs: the merged window is a resync if any part
// of it was re-read rather than pushed live.
func (rs *routerSub) recvRound(ctx context.Context, handles []sub.Handle) (*wire.SubEvent, error) {
	var merged *wire.SubEvent
	for _, h := range handles {
		for {
			ev, err := h.Recv(ctx)
			if err != nil {
				return nil, err
			}
			if ev.Seq < rs.next {
				continue
			}
			if ev.Seq != rs.next {
				return nil, fmt.Errorf("cluster: shard leg skipped from window %d to %d", rs.next, ev.Seq)
			}
			if merged == nil {
				merged = &wire.SubEvent{
					Seq: ev.Seq, FromChunk: ev.FromChunk, ToChunk: ev.ToChunk,
					Resync: ev.Resync, Window: append([]uint64(nil), ev.Window...),
				}
			} else {
				if len(ev.Window) != len(merged.Window) {
					return nil, errors.New("cluster: shard window vectors disagree")
				}
				for x := range merged.Window {
					merged.Window[x] += ev.Window[x]
				}
				merged.Resync = merged.Resync || ev.Resync
			}
			break
		}
	}
	rs.next = merged.Seq + 1
	return merged, nil
}

// Close tears down every leg. Idempotent; a Recv blocked in a leg either
// unblocks with the leg's close error (remote legs) or on its context
// (in-process legs), matching the engine handle's contract.
func (rs *routerSub) Close() error {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return nil
	}
	rs.closed = true
	handles := rs.handles
	rs.handles = nil
	rs.mu.Unlock()
	for _, h := range handles {
		h.Close()
	}
	return nil
}

// Subscribe implements server.Subscriber for a remote shard: the
// subscription rides the multiplexed connection as a server-push stream
// (like SnapshotPages), the handshake frame arrives before this returns,
// and every subsequent frame is one window event. The session's credit
// accounting paces the remote broker to this consumer's speed.
//
// Recv ignores its per-call context in favor of the stream's creation
// context — the two are the same in every caller (the subscription worker
// and the router pass one context through the handle's whole life) — and
// Close unblocks an in-flight Recv by abandoning the call.
func (t *tcpShard) Subscribe(ctx context.Context, req *wire.Subscribe) (sub.Handle, error) {
	if t.closed.Load() {
		return nil, fmt.Errorf("cluster: shard %s: closed", t.addr)
	}
	st, err := t.conn.Stream(ctx, req)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %s: %w", t.addr, err)
	}
	first, err := st.Recv()
	if err != nil {
		st.Close()
		if errors.Is(err, io.EOF) {
			err = fmt.Errorf("cluster: shard %s: subscription ended before handshake", t.addr)
		}
		return nil, err
	}
	resp, ok := first.(*wire.SubscribeResp)
	if !ok {
		st.Close()
		return nil, fmt.Errorf("cluster: shard %s: unexpected handshake frame %T", t.addr, first)
	}
	return &tcpSub{addr: t.addr, st: st, resp: resp}, nil
}

// tcpSub adapts one remote push stream to sub.Handle.
type tcpSub struct {
	addr string
	st   *client.Stream
	resp *wire.SubscribeResp

	closeMu sync.Mutex
	closed  bool
}

func (s *tcpSub) Resp() *wire.SubscribeResp { return s.resp }

func (s *tcpSub) Recv(ctx context.Context) (*wire.SubEvent, error) {
	msg, err := s.st.Recv()
	if err != nil {
		if errors.Is(err, io.EOF) {
			err = fmt.Errorf("cluster: shard %s: subscription stream ended", s.addr)
		}
		return nil, err
	}
	ev, ok := msg.(*wire.SubEvent)
	if !ok {
		return nil, fmt.Errorf("cluster: shard %s: unexpected subscription frame %T", s.addr, msg)
	}
	return ev, nil
}

// Close abandons the call: the client session sends the zero-credit
// cancel, the server side observes the abandonment and releases the
// broker view. Idempotent.
func (s *tcpSub) Close() error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.st.Close()
}
