package timecrypt_test

import (
	"context"
	"testing"

	timecrypt "repro"
)

// TestPublicAPIQuickstart walks the README's quickstart through the public
// facade: server, owner ingest, statistical queries, sharing, restriction.
func TestPublicAPIQuickstart(t *testing.T) {
	engine, err := timecrypt.NewEngine(timecrypt.NewMemStore(), timecrypt.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tr := timecrypt.NewInProcTransport(engine)
	owner := timecrypt.NewOwner(tr)
	epoch := int64(1_700_000_000_000)
	s, err := owner.CreateStream(context.Background(), timecrypt.StreamOptions{
		UUID:     "api-test",
		Epoch:    epoch,
		Interval: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		ts := epoch + int64(i)*5000 // 2 points per chunk
		if err := s.Append(context.Background(), timecrypt.Point{TS: ts, Val: int64(60 + i%10)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := s.StatRange(context.Background(), epoch, epoch+600_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 120 {
		t.Fatalf("count = %d, want 120", res.Count)
	}
	if res.Mean < 60 || res.Mean > 70 {
		t.Errorf("mean = %v", res.Mean)
	}

	// Share at 6-chunk (1 minute) resolution.
	if err := s.EnableResolution(context.Background(), 6); err != nil {
		t.Fatal(err)
	}
	kp, err := timecrypt.GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Grant(context.Background(), kp.PublicBytes(), epoch, epoch+600_000, 6); err != nil {
		t.Fatal(err)
	}
	consumer := timecrypt.NewConsumer(tr, kp)
	view, err := consumer.OpenStream(context.Background(), "api-test")
	if err != nil {
		t.Fatal(err)
	}
	series, err := view.StatSeries(context.Background(), epoch, epoch+600_000, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 10 {
		t.Fatalf("got %d windows, want 10", len(series))
	}
	if _, err := view.Points(context.Background(), epoch, epoch+10_000); err == nil {
		t.Error("resolution-restricted consumer read raw points")
	}
	if timecrypt.PrincipalID(kp.PublicBytes()) == "" {
		t.Error("empty principal id")
	}
}

// TestPublicAPIInsecureBaseline covers the plaintext mode used by the
// benchmark comparisons.
func TestPublicAPIInsecureBaseline(t *testing.T) {
	engine, err := timecrypt.NewEngine(timecrypt.NewMemStore(), timecrypt.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	owner := timecrypt.NewOwner(timecrypt.NewInProcTransport(engine))
	epoch := int64(1_700_000_000_000)
	s, err := owner.CreateStream(context.Background(), timecrypt.StreamOptions{
		UUID: "plain", Epoch: epoch, Interval: 10_000, Insecure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		start := epoch + int64(i)*10_000
		if err := s.AppendChunk(context.Background(), []timecrypt.Point{{TS: start, Val: int64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.StatRange(context.Background(), epoch, epoch+100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 10 || res.Sum != 45 {
		t.Errorf("count=%d sum=%d", res.Count, res.Sum)
	}
	pts, err := s.Points(context.Background(), epoch, epoch+100_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Errorf("points=%d", len(pts))
	}
}

// TestSpecHelpers covers the exported digest-spec constructors.
func TestSpecHelpers(t *testing.T) {
	if timecrypt.DefaultSpec().VectorLen() != 19 {
		t.Errorf("default spec width %d", timecrypt.DefaultSpec().VectorLen())
	}
	if timecrypt.SumOnlySpec().VectorLen() != 1 {
		t.Error("sum-only spec width")
	}
}
