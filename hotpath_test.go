// Hot-path perf harness: per-layer micro-benchmarks plus tier-1
// allocations-per-op assertions. The assertions are the CI teeth of the
// allocation purge — a change that reintroduces per-op garbage on the
// seal/ingest path fails `go test`, not just drifts a number in a JSON
// file. BenchmarkHotPath runs in the bench-smoke CI job.
package timecrypt_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/kv"
	"repro/internal/server"
	"repro/internal/wire"
)

const hotVecLen = 19 // digest vector length used across the hot-path harness

func hotSpec(tb testing.TB) chunk.DigestSpec {
	tb.Helper()
	spec := chunk.DefaultSpec() // sum + count + sumsq + 16 histogram bins
	if spec.VectorLen() != hotVecLen {
		tb.Fatalf("hot-path spec has %d elements, expected %d", spec.VectorLen(), hotVecLen)
	}
	return spec
}

func hotEncryptor(tb testing.TB) *core.Encryptor {
	tb.Helper()
	tree, err := core.NewTree(core.NewPRG(core.PRGAES), core.DefaultTreeHeight, core.Node{0x42, 1, 2, 3})
	if err != nil {
		tb.Fatal(err)
	}
	return core.NewEncryptor(tree.NewWalker())
}

func hotPoints(i uint64) []chunk.Point {
	pts := make([]chunk.Point, 10)
	for p := range pts {
		start := int64(i) * 100
		pts[p] = chunk.Point{TS: start + int64(p)*10, Val: int64(i%700) + int64(p)}
	}
	return pts
}

func hotEngine(tb testing.TB, spec chunk.DigestSpec) *server.Engine {
	tb.Helper()
	engine, err := server.New(kv.NewMemStore(), server.Config{})
	if err != nil {
		tb.Fatal(err)
	}
	specBytes, _ := spec.MarshalBinary()
	cfg := wire.StreamConfig{Epoch: 0, Interval: 100, VectorLen: uint32(spec.VectorLen()),
		Fanout: index.DefaultFanout, DigestSpec: specBytes}
	if err := engine.CreateStream("hot", cfg); err != nil {
		tb.Fatal(err)
	}
	return engine
}

// TestHotPathAllocBudgets pins per-layer allocations/op. The core keystream
// budget is the PR's acceptance criterion (zero after warm-up); the others
// are regression fences at the measured steady state.
func TestHotPathAllocBudgets(t *testing.T) {
	t.Run("core-keystream", func(t *testing.T) {
		enc := hotEncryptor(t)
		m := make([]uint64, hotVecLen)
		dst := make([]uint64, hotVecLen)
		if _, err := enc.EncryptDigest(0, m, dst); err != nil {
			t.Fatal(err)
		}
		if _, err := enc.ChunkKeyAt(0); err != nil {
			t.Fatal(err)
		}
		pos := uint64(1)
		allocs := testing.AllocsPerRun(500, func() {
			if _, err := enc.EncryptDigest(pos, m, dst); err != nil {
				t.Fatal(err)
			}
			if _, err := enc.ChunkKeyAt(pos); err != nil {
				t.Fatal(err)
			}
			pos++
		})
		if allocs != 0 {
			t.Errorf("core keystream derivation: %.1f allocs/chunk, want 0", allocs)
		}
	})
	t.Run("wire-write", func(t *testing.T) {
		var sink bytes.Buffer
		sink.Grow(1 << 16)
		msg := &wire.InsertChunk{UUID: "hot", Chunk: bytes.Repeat([]byte{7}, 600)}
		if err := wire.WriteRequest(&sink, 1, 0, msg); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(500, func() {
			sink.Reset()
			if err := wire.WriteRequest(&sink, 2, 0, msg); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("WriteRequest: %.1f allocs/frame, want 0", allocs)
		}
	})
	t.Run("wire-read-frame", func(t *testing.T) {
		var frame bytes.Buffer
		if err := wire.WriteFrame(&frame, bytes.Repeat([]byte{0x5A}, 700)); err != nil {
			t.Fatal(err)
		}
		raw := frame.Bytes()
		rd := bytes.NewReader(raw)
		fb, err := wire.ReadFrameBuf(rd)
		if err != nil {
			t.Fatal(err)
		}
		fb.Release()
		allocs := testing.AllocsPerRun(500, func() {
			rd.Reset(raw)
			fb, err := wire.ReadFrameBuf(rd)
			if err != nil {
				t.Fatal(err)
			}
			fb.Release()
		})
		if allocs != 0 {
			t.Errorf("pooled frame read: %.1f allocs/frame, want 0", allocs)
		}
	})
}

// BenchmarkHotPath is the per-layer micro-benchmark suite backing
// docs/PERFORMANCE.md's budget table; run with -benchmem.
func BenchmarkHotPath(b *testing.B) {
	b.Run("prg-aes", benchPRG(core.PRGAES))
	b.Run("prg-sha256", benchPRG(core.PRGSHA256))
	b.Run("prg-hmac", benchPRG(core.PRGHMAC))

	b.Run("keystream-derive", func(b *testing.B) {
		enc := hotEncryptor(b)
		m := make([]uint64, hotVecLen)
		dst := make([]uint64, hotVecLen)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := enc.EncryptDigest(uint64(i), m, dst); err != nil {
				b.Fatal(err)
			}
			if _, err := enc.ChunkKeyAt(uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("chunk-seal", func(b *testing.B) {
		enc := hotEncryptor(b)
		spec := hotSpec(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pos := uint64(i)
			start := int64(pos) * 100
			if _, err := chunk.Seal(enc, spec, chunk.CompressionNone, pos, start, start+100, hotPoints(pos)); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("wire-roundtrip", func(b *testing.B) {
		msg := &wire.InsertChunk{UUID: "hot", Chunk: bytes.Repeat([]byte{7}, 600)}
		var sink bytes.Buffer
		sink.Grow(1 << 16)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink.Reset()
			if err := wire.WriteRequest(&sink, uint64(i), 0, msg); err != nil {
				b.Fatal(err)
			}
			fb, err := wire.ReadFrameBuf(&sink)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, _, _, err := wire.DecodeRequest(fb.Bytes()); err != nil {
				b.Fatal(err)
			}
			fb.Release()
		}
	})

	b.Run("index-append", func(b *testing.B) {
		tree, err := index.Open(kv.NewMemStore(), "hot", index.Config{VectorLen: hotVecLen})
		if err != nil {
			b.Fatal(err)
		}
		digest := make([]uint64, hotVecLen)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tree.Append(uint64(i), digest); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("index-append-batch64", func(b *testing.B) {
		tree, err := index.Open(kv.NewMemStore(), "hot", index.Config{VectorLen: hotVecLen})
		if err != nil {
			b.Fatal(err)
		}
		const batch = 64
		digests := make([][]uint64, batch)
		for i := range digests {
			digests[i] = make([]uint64, hotVecLen)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += batch {
			if err := tree.AppendBatch(uint64(i), digests); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("engine-ingest", func(b *testing.B) {
		spec := hotSpec(b)
		engine := hotEngine(b, spec)
		enc := hotEncryptor(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pos := uint64(i)
			start := int64(pos) * 100
			sealed, err := chunk.Seal(enc, spec, chunk.CompressionNone, pos, start, start+100, hotPoints(pos))
			if err != nil {
				b.Fatal(err)
			}
			if err := engine.InsertChunk("hot", chunk.MarshalSealed(sealed)); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("engine-ingest-batch64", func(b *testing.B) {
		spec := hotSpec(b)
		engine := hotEngine(b, spec)
		enc := hotEncryptor(b)
		const batch = 64
		blobs := make([][]byte, batch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += batch {
			for j := range blobs {
				pos := uint64(i + j)
				start := int64(pos) * 100
				sealed, err := chunk.Seal(enc, spec, chunk.CompressionNone, pos, start, start+100, hotPoints(pos))
				if err != nil {
					b.Fatal(err)
				}
				blobs[j] = chunk.MarshalSealed(sealed)
			}
			for _, err := range engine.InsertChunkBatch("hot", blobs) {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func benchPRG(kind core.PRGKind) func(*testing.B) {
	return func(b *testing.B) {
		prg := core.NewPRG(kind)
		x := core.Node{0x11, 0x22}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l, r := prg.Expand(x)
			x[0] = l[0] ^ r[0]
		}
		_ = fmt.Sprintf("%x", x[0]) // keep the chain live
	}
}
