// Command timecrypt-kvd runs a standalone storage node (the Cassandra
// role in the paper's deployment): a key-value store serving TimeCrypt
// engines over TCP, with optional snapshot durability. Pair it with
// `timecrypt-server -kv-addr` to reproduce the paper's DevOps topology
// where storage and the TimeCrypt instance run on separate machines.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/kv"
)

func main() {
	addr := flag.String("addr", ":7734", "listen address")
	snapshot := flag.String("snapshot", "", "snapshot file to load at start and write periodically")
	snapshotEvery := flag.Duration("snapshot-every", time.Minute, "snapshot interval")
	flag.Parse()

	store := kv.NewMemStore()
	if *snapshot != "" {
		if f, err := os.Open(*snapshot); err == nil {
			if err := kv.ReadSnapshot(f, store); err != nil {
				log.Fatalf("loading snapshot: %v", err)
			}
			f.Close()
			log.Printf("loaded snapshot %s (%d keys)", *snapshot, store.Len())
		} else if !errors.Is(err, os.ErrNotExist) {
			log.Fatalf("opening snapshot: %v", err)
		}
	}

	srv := kv.NewNetServer(store, log.Printf)
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listening on %s: %v", *addr, err)
	}
	log.Printf("timecrypt-kvd listening on %s", lis.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *snapshot != "" {
		go func() {
			ticker := time.NewTicker(*snapshotEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if err := kv.WriteSnapshotFile(*snapshot, store); err != nil {
						log.Printf("snapshot failed: %v", err)
					}
				}
			}
		}()
	}
	if err := srv.Serve(ctx, lis); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("serve: %v", err)
	}
	if *snapshot != "" {
		if err := kv.WriteSnapshotFile(*snapshot, store); err != nil {
			log.Printf("final snapshot failed: %v", err)
		}
	}
	log.Printf("store stats: %s", store.Stats())
}
