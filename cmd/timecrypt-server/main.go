// Command timecrypt-server runs a standalone TimeCrypt server: one or more
// untrusted engine shards over the in-memory KV store (or a remote storage
// node), fronted by the TCP protocol.
//
// Durability: -data-dir runs the store through a write-ahead log with
// group commit and compacted snapshots — every acknowledged write
// survives kill -9 (see docs/OPERATIONS.md, "Durability"). -fsync picks
// the sync policy: always (default), never, or a duration for periodic
// syncs. The legacy -snapshot flag instead snapshots the in-memory store
// periodically (writes between snapshots are lost on crash).
//
// Usage:
//
//	timecrypt-server -addr :7733 -data-dir /var/lib/timecrypt -fsync always
//	timecrypt-server -addr :7733 -cache 0 -snapshot data.tcsnap -snapshot-every 60s
//
// Scale-out: -shards N hosts N engine shards in this process, each over
// its own partition of the store, with streams placed by consistent
// hashing; -peers routes to remote timecrypt-server shards over the wire
// protocol (peers-only unless -shards is given explicitly, in which case
// the process hosts local shards alongside the peers):
//
//	timecrypt-server -addr :7733 -shards 4
//	timecrypt-server -addr :7700 -peers host1:7733,host2:7733
//
// The ring is versioned: membership changes online ("timecrypt-cli
// reshard" against a router, or -join below) and the router migrates the
// streams whose ownership changed while serving. A single-engine server
// can ask a running cluster router to add it to the ring at startup:
//
//	timecrypt-server -addr :7734 -advertise host3:7734 -join host0:7700
//
// Replication: -replicas makes a single-engine server the leader of a
// replication group, synchronously shipping its mutation log to the
// named followers; followers start with an explicitly empty -replicas=
// and serve reads while refusing writes. The routing tier names a
// replicated group in -peers with "|" between its members and fails the
// shard over to a promoted follower when the leader dies:
//
//	timecrypt-server -addr :7733 -data-dir /srv/a -replicas host2:7733
//	timecrypt-server -addr :7733 -data-dir /srv/b -replicas=       # on host2
//	timecrypt-server -addr :7700 -peers 'host1:7733|host2:7733'
//
// -quorum (groups of 3+) switches a group from availability-first
// acknowledgement to majority acknowledgement: writes are refused while
// a majority is unreachable, and no acknowledged write can be lost to a
// partition.
//
// See docs/OPERATIONS.md for the full deployment and resharding runbook
// and docs/REPLICATION.md for lease/epoch rules and failover.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/kv"
	"repro/internal/kv/durable"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", ":7733", "listen address")
	cache := flag.Int64("cache", 0, "index cache budget in bytes per shard (0 = unbounded)")
	kvAddr := flag.String("kv-addr", "", "remote timecrypt-kvd storage node (default: local in-memory store)")
	kvPool := flag.Int("kv-pool", 8, "connections to the remote storage node")
	dataDir := flag.String("data-dir", "", "directory for the durable store (WAL + snapshots); empty = in-memory only")
	fsync := flag.String("fsync", "always", "WAL sync policy: always, never, or a duration like 500ms (acks may lose up to that much on power loss)")
	snapshot := flag.String("snapshot", "", "legacy: snapshot file to load at start and write periodically (local in-memory store only)")
	snapshotEvery := flag.Duration("snapshot-every", time.Minute, "snapshot interval")
	shards := flag.Int("shards", 1, "engine shards hosted in this process, each over its own store partition (stable across restarts)")
	peers := flag.String("peers", "", "comma-separated remote timecrypt-server shards to route to initially (reshard to change membership online)")
	peerWindow := flag.Int("peer-window", 0, "in-flight request window per remote peer shard's multiplexed connection (0 = client default)")
	connInFlight := flag.Int("conn-inflight", 0, "max concurrently executing requests per client connection; overflow answers CodeBusy (0 = default)")
	join := flag.String("join", "", "running cluster router to ask to add this server to its ring (single-engine servers only)")
	advertise := flag.String("advertise", "", "address other cluster members dial this server at (default: -addr, with localhost for a bare :port)")
	replicas := flag.String("replicas", "", "comma-separated follower addresses this server's shard replicates to (makes it the group leader); pass -replicas '' explicitly to start as a follower awaiting its leader")
	lease := flag.Duration("lease", replica.DefaultLease, "replication leader lease; a failover waits it out before promoting a follower")
	quorum := flag.Bool("quorum", false, "quorum-acknowledged replication: the leader acks a write only after a majority of the group (itself included) applied it, and refuses writes (CodeBusy) while a majority is unreachable; needs a group of at least 3. On a routing tier, applies to every replicated -peers group")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	flag.Parse()

	replicasSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "replicas" {
			replicasSet = true
		}
	})

	if *pprofAddr != "" {
		// Profiling endpoint for the docs/PERFORMANCE.md workflow:
		// `go tool pprof http://<addr>/debug/pprof/{profile,heap,allocs}`.
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	var store kv.Store
	var mem *kv.MemStore
	var dstore *durable.Store
	switch {
	case *dataDir != "":
		if *kvAddr != "" {
			log.Fatalf("-data-dir and -kv-addr are mutually exclusive (durability lives on the storage node when one is used)")
		}
		if *snapshot != "" {
			log.Fatalf("-data-dir replaces -snapshot: the durable store manages its own snapshots")
		}
		policy, every, err := durable.ParseSyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("bad -fsync: %v", err)
		}
		dstore, err = durable.Open(*dataDir, durable.Options{
			Sync:      policy,
			SyncEvery: every,
			Logf:      log.Printf,
		})
		if err != nil {
			log.Fatalf("opening durable store in %s: %v", *dataDir, err)
		}
		log.Printf("durable store in %s (fsync=%s): %s", *dataDir, policy, dstore.Stats())
		store = dstore
	case *kvAddr != "":
		remote, err := kv.DialRemoteStore(*kvAddr, *kvPool)
		if err != nil {
			log.Fatalf("connecting to storage node: %v", err)
		}
		log.Printf("using remote storage node %s", *kvAddr)
		store = remote
	default:
		mem = kv.NewMemStore()
		if *snapshot != "" {
			if f, err := os.Open(*snapshot); err == nil {
				if err := kv.ReadSnapshot(f, mem); err != nil {
					log.Fatalf("loading snapshot: %v", err)
				}
				f.Close()
				log.Printf("loaded snapshot %s (%d keys)", *snapshot, mem.Len())
			} else if !errors.Is(err, os.ErrNotExist) {
				log.Fatalf("opening snapshot: %v", err)
			}
		}
		store = mem
	}

	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	nLocal := *shards
	if len(peerList) > 0 {
		// -peers without an explicit -shards means a pure routing tier:
		// a silently added local in-memory shard would own a slice of
		// the ring with no durability.
		shardsSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "shards" {
				shardsSet = true
			}
		})
		if !shardsSet {
			nLocal = 0
		}
	}
	if nLocal < 0 || (nLocal == 0 && len(peerList) == 0) {
		log.Fatalf("need at least one local shard or peer")
	}

	// The address peers and failover coordinators dial this process at.
	self := *advertise
	if self == "" {
		self = *addr
		if strings.HasPrefix(self, ":") {
			self = "localhost" + self
		}
	}

	var handler server.Handler
	var router *cluster.Router
	var rnode *replica.Node
	if replicasSet {
		if len(peerList) > 0 || nLocal != 1 {
			log.Fatalf("-replicas wraps a single-engine server; on a routing tier, name replicated groups in -peers as leader|follower[|...]")
		}
		var followerList []string
		for _, f := range strings.Split(*replicas, ",") {
			if f = strings.TrimSpace(f); f != "" {
				followerList = append(followerList, f)
			}
		}
		opts := replica.Options{Self: self, Lease: *lease, Logf: log.Printf, Quorum: *quorum}
		if dstore != nil {
			opts.StoreSeq = dstore.CommittedSeq
		}
		var err error
		rnode, err = replica.New(store, server.Config{CacheBytes: *cache}, opts)
		if err != nil {
			log.Fatalf("starting replica: %v", err)
		}
		if len(followerList) > 0 {
			// A no-op over persisted replication state: a restarted
			// ex-leader comes back deposed and rejoins as a follower once
			// the current leader resyncs it. A quorum group too small to
			// ever form a meaningful majority is a misconfiguration and
			// refuses to start.
			if err := rnode.Lead(followerList); err != nil {
				log.Fatalf("replication: %v", err)
			}
		}
		role, epoch, _ := rnode.Status()
		log.Printf("replication: role=%d epoch=%d lease=%s quorum=%v followers=%v", role, epoch, *lease, *quorum, followerList)
		handler = rnode
	} else if len(peerList) == 0 && nLocal == 1 {
		engine, err := server.New(store, server.Config{CacheBytes: *cache})
		if err != nil {
			log.Fatalf("starting engine: %v", err)
		}
		handler = engine
	} else {
		var shardCfgs []cluster.Shard
		for i := 0; i < nLocal; i++ {
			part := kv.NewPrefixStore(store, fmt.Sprintf("s%d/", i))
			engine, err := server.New(part, server.Config{CacheBytes: *cache})
			if err != nil {
				log.Fatalf("starting shard %d: %v", i, err)
			}
			shardCfgs = append(shardCfgs, cluster.Shard{Name: fmt.Sprintf("local-%d", i), Handler: engine})
		}
		for _, p := range peerList {
			var sh cluster.Shard
			var err error
			if strings.Contains(p, "|") {
				// A replicated group: leader|follower[|...]. The shard
				// follows the group's current leader and fails over.
				var members []string
				for _, m := range strings.Split(p, "|") {
					if m = strings.TrimSpace(m); m != "" {
						members = append(members, m)
					}
				}
				sh, err = cluster.NewReplicatedShardOptions(members[0], members, cluster.GroupOptions{
					InFlight: *peerWindow, Logf: log.Printf, Quorum: *quorum,
				})
			} else {
				sh, err = cluster.NewTCPShard(p, p, *peerWindow)
			}
			if err != nil {
				log.Fatalf("dialing peer shard: %v", err)
			}
			shardCfgs = append(shardCfgs, sh)
		}
		var err error
		router, err = cluster.NewRouter(shardCfgs, cluster.Options{
			// Members joining later (timecrypt-cli reshard, -join) are
			// named by address; dial them over the wire protocol.
			Dial: func(member string) (cluster.Shard, error) {
				return cluster.NewTCPShard(member, member, *peerWindow)
			},
		})
		if err != nil {
			log.Fatalf("building router: %v", err)
		}
		log.Printf("routing across %d shards (%d local, %d peers)", len(shardCfgs), nLocal, len(peerList))
		handler = router
	}

	srv := server.NewServer(handler, log.Printf)
	srv.MaxConnInFlight = *connInFlight
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listening on %s: %v", *addr, err)
	}
	log.Printf("timecrypt-server listening on %s", lis.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *join != "" {
		if router != nil {
			log.Fatalf("-join is for single-engine servers; this process hosts a router")
		}
		// Serving has started (listener is bound), so the coordinator can
		// dial back and migrate streams onto this engine immediately.
		go func() {
			if err := joinCluster(ctx, *join, self); err != nil {
				log.Printf("joining cluster via %s: %v", *join, err)
			}
		}()
	}

	if mem != nil && *snapshot != "" {
		go func() {
			ticker := time.NewTicker(*snapshotEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if err := kv.WriteSnapshotFile(*snapshot, mem); err != nil {
						log.Printf("snapshot failed: %v", err)
					}
				}
			}
		}()
	}

	if err := srv.Serve(ctx, lis); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("serve: %v", err)
	}
	if rnode != nil {
		rnode.Close()
	}
	if mem != nil && *snapshot != "" {
		if err := kv.WriteSnapshotFile(*snapshot, mem); err != nil {
			log.Printf("final snapshot failed: %v", err)
		} else {
			log.Printf("wrote snapshot %s", *snapshot)
		}
	}
	if mem != nil {
		log.Printf("store stats: %s", mem.Stats())
	}
	if dstore != nil {
		// Flush and fsync the WAL tail so a clean shutdown is exactly as
		// durable as the policy promises under crash.
		if err := dstore.Close(); err != nil {
			log.Printf("closing durable store: %v", err)
		}
		log.Printf("durable store: %s", dstore.Stats())
	}
	if router != nil {
		for _, s := range router.Stats() {
			log.Printf("shard %s: requests=%d fanouts=%d errors=%d", s.Name, s.Requests, s.Fanouts, s.Errors)
		}
		router.Close()
	}
}

// joinCluster asks a running cluster router to add this server to its
// ring: fetch the current membership, and reshard to it plus self. The
// reshard is conditional on the fetched epoch (ExpectEpoch), so two
// servers joining concurrently cannot silently evict each other — the
// loser's compare-and-swap fails with CodeBusy and it refetches the
// (now larger) membership and retries. The router migrates every stream
// whose ownership moves here while both sides keep serving.
func joinCluster(ctx context.Context, routerAddr, self string) error {
	tr, err := client.DialTCP(routerAddr)
	if err != nil {
		return err
	}
	defer tr.Close()
	for attempt := 0; attempt < 6; attempt++ {
		resp, err := tr.RoundTrip(ctx, &wire.TopologyInfo{})
		if err != nil {
			return err
		}
		ti, ok := resp.(*wire.TopologyInfoResp)
		if !ok {
			return fmt.Errorf("unexpected topology response %v", resp)
		}
		for _, m := range ti.Members {
			if m == self {
				log.Printf("already a member of %s's ring (epoch %d)", routerAddr, ti.Epoch)
				return nil
			}
		}
		members := append(append([]string(nil), ti.Members...), self)
		resp, err = tr.RoundTrip(ctx, &wire.Reshard{Members: members, ExpectEpoch: ti.Epoch})
		if err != nil {
			return err
		}
		if e, isErr := resp.(*wire.Error); isErr {
			if e.Code == wire.CodeBusy {
				// Another reshard is running or won the epoch CAS:
				// refetch the membership and try again.
				select {
				case <-time.After(2 * time.Second):
					continue
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			return e
		}
		nt, ok := resp.(*wire.TopologyInfoResp)
		if !ok {
			return fmt.Errorf("unexpected reshard response %v", resp)
		}
		log.Printf("joined %s's ring as %s (epoch %d, %d members)", routerAddr, self, nt.Epoch, len(nt.Members))
		return nil
	}
	return fmt.Errorf("gave up joining after repeated busy answers")
}
