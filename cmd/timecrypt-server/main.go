// Command timecrypt-server runs a standalone TimeCrypt server: the
// untrusted engine over the in-memory KV store, fronted by the TCP
// protocol. Optional snapshots give restart durability.
//
// Usage:
//
//	timecrypt-server -addr :7733 -cache 0 -snapshot data.tcsnap -snapshot-every 60s
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/kv"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":7733", "listen address")
	cache := flag.Int64("cache", 0, "index cache budget in bytes (0 = unbounded)")
	kvAddr := flag.String("kv-addr", "", "remote timecrypt-kvd storage node (default: local in-memory store)")
	kvPool := flag.Int("kv-pool", 8, "connections to the remote storage node")
	snapshot := flag.String("snapshot", "", "snapshot file to load at start and write periodically (local store only)")
	snapshotEvery := flag.Duration("snapshot-every", time.Minute, "snapshot interval")
	flag.Parse()

	if *kvAddr != "" {
		remote, err := kv.DialRemoteStore(*kvAddr, *kvPool)
		if err != nil {
			log.Fatalf("connecting to storage node: %v", err)
		}
		log.Printf("using remote storage node %s", *kvAddr)
		engine, err := server.New(remote, server.Config{CacheBytes: *cache})
		if err != nil {
			log.Fatalf("starting engine: %v", err)
		}
		serveEngine(engine, *addr)
		return
	}

	store := kv.NewMemStore()
	if *snapshot != "" {
		if f, err := os.Open(*snapshot); err == nil {
			if err := kv.ReadSnapshot(f, store); err != nil {
				log.Fatalf("loading snapshot: %v", err)
			}
			f.Close()
			log.Printf("loaded snapshot %s (%d keys)", *snapshot, store.Len())
		} else if !errors.Is(err, os.ErrNotExist) {
			log.Fatalf("opening snapshot: %v", err)
		}
	}

	engine, err := server.New(store, server.Config{CacheBytes: *cache})
	if err != nil {
		log.Fatalf("starting engine: %v", err)
	}
	srv := server.NewServer(engine, log.Printf)

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listening on %s: %v", *addr, err)
	}
	log.Printf("timecrypt-server listening on %s", lis.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *snapshot != "" {
		go func() {
			ticker := time.NewTicker(*snapshotEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if err := writeSnapshot(*snapshot, store); err != nil {
						log.Printf("snapshot failed: %v", err)
					}
				}
			}
		}()
	}

	if err := srv.Serve(ctx, lis); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("serve: %v", err)
	}
	if *snapshot != "" {
		if err := writeSnapshot(*snapshot, store); err != nil {
			log.Printf("final snapshot failed: %v", err)
		} else {
			log.Printf("wrote snapshot %s", *snapshot)
		}
	}
	log.Printf("store stats: %s", store.Stats())
}

// serveEngine runs the TCP front end until interrupted (remote-store mode,
// where durability is the storage node's job).
func serveEngine(engine *server.Engine, addr string) {
	srv := server.NewServer(engine, log.Printf)
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("listening on %s: %v", addr, err)
	}
	log.Printf("timecrypt-server listening on %s", lis.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Serve(ctx, lis); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("serve: %v", err)
	}
}

// writeSnapshot writes atomically via a temp file rename.
func writeSnapshot(path string, store kv.Store) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := kv.WriteSnapshot(f, store); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
