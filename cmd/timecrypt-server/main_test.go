package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/client"
	"repro/internal/wire"
)

// TestMain doubles as the server entry point: the crash-recovery e2e
// re-execs this test binary with TIMECRYPT_SERVER_CHILD=1 and real server
// flags, so the process under kill -9 is the genuine timecrypt-server
// main(), not an in-process stand-in.
func TestMain(m *testing.M) {
	if os.Getenv("TIMECRYPT_SERVER_CHILD") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// serverProc is one child server process under test control.
type serverProc struct {
	cmd *exec.Cmd
	out *bytes.Buffer
}

func startServerProc(t *testing.T, args ...string) *serverProc {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "TIMECRYPT_SERVER_CHILD=1")
	out := &bytes.Buffer{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting server child: %v", err)
	}
	p := &serverProc{cmd: cmd, out: out}
	t.Cleanup(func() { p.cmd.Process.Kill(); p.cmd.Wait() })
	return p
}

// kill9 delivers SIGKILL — no shutdown hooks, no final fsync — and waits
// for the process to be fully gone so the port is reusable.
func (p *serverProc) kill9(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	p.cmd.Wait()
}

func (p *serverProc) logs() string { return p.out.String() }

// pickAddr reserves a localhost port. The listener is closed before the
// child binds it; the tiny race is acceptable in tests.
func pickAddr(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	return addr
}

func waitServing(t *testing.T, p *serverProc, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
			c.Close()
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("server on %s never came up; logs:\n%s", addr, p.logs())
}

// statRangeBytes round-trips a StatRange and returns the marshaled
// response frame, for byte-identity comparisons across restarts.
func statRangeBytes(t *testing.T, addr string, q *wire.StatRange) []byte {
	t.Helper()
	tr, err := client.DialTCP(addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer tr.Close()
	resp, err := tr.RoundTrip(context.Background(), q)
	if err != nil {
		t.Fatalf("stat range: %v", err)
	}
	if e, bad := resp.(*wire.Error); bad {
		t.Fatalf("stat range: server error %v", e)
	}
	return wire.Marshal(resp)
}

// TestCrashRecoveryE2E kill -9s a real timecrypt-server mid-Writer-ingest
// and proves the durable store's contract: every chunk acknowledged
// before the crash (the Writer.Flush barrier) survives, and query
// responses over the acknowledged range are byte-identical before the
// crash, after recovery, and after a second crash-restart cycle.
func TestCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real server processes")
	}
	dataDir := t.TempDir()
	addr := pickAddr(t)
	const (
		epoch    = int64(1_700_000_000_000)
		interval = int64(1000)
		acked    = 40 // chunks flushed (acked durable) before the kill
	)

	srv := startServerProc(t, "-addr", addr, "-data-dir", dataDir)
	waitServing(t, srv, addr)

	ctx := context.Background()
	tr, err := client.DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	spec := chunk.DigestSpec{Sum: true, Count: true}
	stream, err := client.NewOwner(tr).CreateStream(ctx, client.StreamOptions{
		UUID: "crash-e2e", Epoch: epoch, Interval: interval,
		Spec: spec, Compression: chunk.CompressionNone,
	})
	if err != nil {
		t.Fatalf("create stream: %v", err)
	}
	w, err := stream.Writer(ctx, client.WriterOptions{BatchChunks: 4, MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	points := func(c int64) []chunk.Point {
		return []chunk.Point{
			{TS: epoch + c*interval, Val: c + 1},
			{TS: epoch + c*interval + 1, Val: 2*c + 7},
		}
	}
	var wantSum int64
	for c := int64(0); c < acked; c++ {
		for _, p := range points(c) {
			wantSum += p.Val
		}
		if err := w.AppendChunk(points(c)); err != nil {
			t.Fatalf("append chunk %d: %v", c, err)
		}
	}
	// The barrier: everything appended so far is acknowledged, and the
	// server acknowledged it only after the WAL fsync (-fsync defaults to
	// always). These 40 chunks are the "must survive kill -9" set.
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	// Decrypted ground truth before the crash.
	res, err := stream.StatRange(ctx, epoch, epoch+acked*interval)
	if err != nil {
		t.Fatalf("pre-crash query: %v", err)
	}
	if res.Sum != wantSum || res.Count != 2*acked {
		t.Fatalf("pre-crash aggregate: sum=%d count=%d, want sum=%d count=%d",
			res.Sum, res.Count, wantSum, 2*acked)
	}
	q := &wire.StatRange{UUIDs: []string{"crash-e2e"}, Ts: epoch, Te: epoch + acked*interval}
	preCrash := statRangeBytes(t, addr, q)

	// Keep the Writer ingesting so the SIGKILL lands mid-stream, with
	// batches genuinely in flight. These chunks were never flushed, so
	// losing (some of) them is allowed; losing acked ones is not.
	ingestDead := make(chan struct{})
	go func() {
		defer close(ingestDead)
		for c := int64(acked); ; c++ {
			if err := w.AppendChunk(points(c)); err != nil {
				return // transport died with the server
			}
		}
	}()
	time.Sleep(150 * time.Millisecond)
	srv.kill9(t)
	<-ingestDead
	tr.Close()

	// Restart over the same data dir: WAL replay (possibly with a torn
	// final record from the kill) must restore every acked chunk.
	srv2 := startServerProc(t, "-addr", addr, "-data-dir", dataDir)
	waitServing(t, srv2, addr)
	afterCrash := statRangeBytes(t, addr, q)
	if !bytes.Equal(preCrash, afterCrash) {
		t.Fatalf("query response changed across kill -9 + recovery:\n pre  %x\n post %x\nserver logs:\n%s",
			preCrash, afterCrash, srv2.logs())
	}

	// Second cycle: kill the recovered server too (mid-nothing this time)
	// and restart; replay must be idempotent.
	srv2.kill9(t)
	srv3 := startServerProc(t, "-addr", addr, "-data-dir", dataDir)
	waitServing(t, srv3, addr)
	afterSecond := statRangeBytes(t, addr, q)
	if !bytes.Equal(afterCrash, afterSecond) {
		t.Fatalf("query response changed across second restart:\n 1st %x\n 2nd %x", afterCrash, afterSecond)
	}
}

// TestCrashRecoverySharded is the same story with -shards 2: one WAL
// under two engine shard partitions, streams placed by the ring.
func TestCrashRecoverySharded(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real server processes")
	}
	dataDir := t.TempDir()
	addr := pickAddr(t)
	const (
		epoch    = int64(1_700_000_000_000)
		interval = int64(1000)
		acked    = 12
		streams  = 3
	)
	srv := startServerProc(t, "-addr", addr, "-data-dir", dataDir, "-shards", "2")
	waitServing(t, srv, addr)

	ctx := context.Background()
	tr, err := client.DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	spec := chunk.DigestSpec{Sum: true, Count: true}
	uuids := make([]string, streams)
	for i := range uuids {
		uuids[i] = fmt.Sprintf("shard-crash-%d", i)
		stream, err := client.NewOwner(tr).CreateStream(ctx, client.StreamOptions{
			UUID: uuids[i], Epoch: epoch, Interval: interval,
			Spec: spec, Compression: chunk.CompressionNone,
		})
		if err != nil {
			t.Fatalf("create %s: %v", uuids[i], err)
		}
		for c := int64(0); c < acked; c++ {
			if err := stream.AppendChunk(ctx, []chunk.Point{{TS: epoch + c*interval, Val: c}}); err != nil {
				t.Fatalf("append %s/%d: %v", uuids[i], c, err)
			}
		}
	}
	pre := make([][]byte, streams)
	for i, u := range uuids {
		pre[i] = statRangeBytes(t, addr, &wire.StatRange{UUIDs: []string{u}, Ts: epoch, Te: epoch + acked*interval})
	}
	tr.Close()
	srv.kill9(t)

	srv2 := startServerProc(t, "-addr", addr, "-data-dir", dataDir, "-shards", "2")
	waitServing(t, srv2, addr)
	for i, u := range uuids {
		post := statRangeBytes(t, addr, &wire.StatRange{UUIDs: []string{u}, Ts: epoch, Te: epoch + acked*interval})
		if !bytes.Equal(pre[i], post) {
			t.Fatalf("stream %s changed across crash:\n pre  %x\n post %x\nlogs:\n%s", u, pre[i], post, srv2.logs())
		}
	}
}

// leaseInfo round-trips a LeaseInfo probe against one address.
func leaseInfo(t *testing.T, addr string) (*wire.LeaseInfoResp, error) {
	t.Helper()
	tr, err := client.DialTCP(addr)
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := tr.RoundTrip(ctx, &wire.LeaseInfo{})
	if err != nil {
		return nil, err
	}
	li, ok := resp.(*wire.LeaseInfoResp)
	if !ok {
		return nil, fmt.Errorf("unexpected lease response %#v", resp)
	}
	return li, nil
}

// TestFailoverE2E is the replication acceptance fence: a real leader
// process is kill -9ed mid-ingest, and through an unchanged router
// address (1) every Flush-acked chunk still answers byte-identically
// from the promoted follower, (2) writes flow again after promotion, and
// (3) the ex-leader restarted from its data dir rejoins as a follower
// and is resynced.
func TestFailoverE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real server processes")
	}
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	leaderAddr, followerAddr, routerAddr := pickAddr(t), pickAddr(t), pickAddr(t)
	const (
		epoch    = int64(1_700_000_000_000)
		interval = int64(1000)
		acked    = 30
		lease    = "500ms"
	)

	follower := startServerProc(t, "-addr", followerAddr, "-data-dir", followerDir, "-replicas", "", "-lease", lease)
	waitServing(t, follower, followerAddr)
	leader := startServerProc(t, "-addr", leaderAddr, "-data-dir", leaderDir,
		"-advertise", leaderAddr, "-replicas", followerAddr, "-lease", lease)
	waitServing(t, leader, leaderAddr)
	router := startServerProc(t, "-addr", routerAddr, "-peers", leaderAddr+"|"+followerAddr)
	waitServing(t, router, routerAddr)

	ctx := context.Background()
	tr, err := client.DialTCP(routerAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	spec := chunk.DigestSpec{Sum: true, Count: true}
	stream, err := client.NewOwner(tr).CreateStream(ctx, client.StreamOptions{
		UUID: "failover-e2e", Epoch: epoch, Interval: interval,
		Spec: spec, Compression: chunk.CompressionNone,
	})
	if err != nil {
		t.Fatalf("create stream: %v\nrouter logs:\n%s", err, router.logs())
	}
	w, err := stream.Writer(ctx, client.WriterOptions{BatchChunks: 4, MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	points := func(c int64) []chunk.Point {
		return []chunk.Point{{TS: epoch + c*interval, Val: c + 1}}
	}
	var wantSum int64
	for c := int64(0); c < acked; c++ {
		wantSum += c + 1
		if err := w.AppendChunk(points(c)); err != nil {
			t.Fatalf("append chunk %d: %v", c, err)
		}
	}
	// The barrier: these chunks are acknowledged, and the leader
	// acknowledged them only after the follower applied them. They are
	// the "must survive kill -9 of the leader" set.
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	res, err := stream.StatRange(ctx, epoch, epoch+acked*interval)
	if err != nil {
		t.Fatalf("pre-crash query: %v", err)
	}
	if res.Sum != wantSum || res.Count != acked {
		t.Fatalf("pre-crash aggregate: sum=%d count=%d, want sum=%d count=%d", res.Sum, res.Count, wantSum, acked)
	}
	q := &wire.StatRange{UUIDs: []string{"failover-e2e"}, Ts: epoch, Te: epoch + acked*interval}
	preCrash := statRangeBytes(t, routerAddr, q)

	// Keep ingesting so the SIGKILL lands with writes genuinely in
	// flight; they were never flushed, so losing them is allowed.
	ingestDead := make(chan struct{})
	go func() {
		defer close(ingestDead)
		for c := int64(acked); ; c++ {
			if err := w.AppendChunk(points(c)); err != nil {
				return
			}
		}
	}()
	time.Sleep(150 * time.Millisecond)
	leader.kill9(t)
	<-ingestDead

	// Reads through the unchanged router address ride the failover: the
	// dead leader is detected, the lease waited out, the follower
	// promoted — and the acked range answers byte-identically.
	afterCrash := statRangeBytes(t, routerAddr, q)
	if !bytes.Equal(preCrash, afterCrash) {
		t.Fatalf("acked range changed across leader kill -9:\n pre  %x\n post %x\nrouter logs:\n%s",
			preCrash, afterCrash, router.logs())
	}
	li, err := leaseInfo(t, followerAddr)
	if err != nil {
		t.Fatalf("lease probe of promoted follower: %v", err)
	}
	if li.Role != wire.ReplLeader || li.Epoch < 2 {
		t.Fatalf("follower after failover: role=%d epoch=%d, want promoted leader at epoch >= 2", li.Role, li.Epoch)
	}

	// Decrypted reads through the same client handle agree too.
	res, err = stream.StatRange(ctx, epoch, epoch+acked*interval)
	if err != nil {
		t.Fatalf("post-failover query: %v", err)
	}
	if res.Sum != wantSum || res.Count != acked {
		t.Fatalf("post-failover aggregate: sum=%d count=%d, want sum=%d count=%d", res.Sum, res.Count, wantSum, acked)
	}

	// Writes flow again through the router (retrying while the shard
	// finishes failing over). A fresh stream sidesteps the ambiguous
	// fate of the writes in flight at the kill.
	var stream2 *client.OwnerStream
	deadline := time.Now().Add(15 * time.Second)
	for {
		stream2, err = client.NewOwner(tr).CreateStream(ctx, client.StreamOptions{
			UUID: "post-failover", Epoch: epoch, Interval: interval,
			Spec: spec, Compression: chunk.CompressionNone,
		})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("create stream after failover: %v\nrouter logs:\n%s", err, router.logs())
		}
		time.Sleep(100 * time.Millisecond)
	}
	for c := int64(0); c < 5; c++ {
		if err := stream2.AppendChunk(ctx, points(c)); err != nil {
			t.Fatalf("post-failover append %d: %v", c, err)
		}
	}
	res2, err := stream2.StatRange(ctx, epoch, epoch+5*interval)
	if err != nil || res2.Count != 5 {
		t.Fatalf("post-failover stream query: %+v, %v", res2, err)
	}

	// The ex-leader restarts from its data dir, comes back deposed (its
	// persisted lease is stale), and the new leader resyncs it back into
	// the group as a follower.
	leader2 := startServerProc(t, "-addr", leaderAddr, "-data-dir", leaderDir,
		"-advertise", leaderAddr, "-replicas", followerAddr, "-lease", lease)
	waitServing(t, leader2, leaderAddr)
	deadline = time.Now().Add(20 * time.Second)
	for {
		li, err := leaseInfo(t, leaderAddr)
		if err == nil && li.Role == wire.ReplFollower && li.Epoch >= 2 && li.Watermark > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ex-leader never rejoined as follower: %+v, %v\nex-leader logs:\n%s", li, err, leader2.logs())
		}
		time.Sleep(100 * time.Millisecond)
	}
}
