// Command timecrypt-cli is a small operational tool against a running
// timecrypt-server: it creates streams, loads synthetic data, and runs
// statistical queries, holding its key material in a local key file.
//
// Usage:
//
//	timecrypt-cli -addr localhost:7733 create  -stream hr -interval 10s
//	timecrypt-cli -addr localhost:7733 ingest  -stream hr -chunks 100
//	timecrypt-cli -addr localhost:7733 stats   -stream hr
//	timecrypt-cli -addr localhost:7733 series  -stream hr -window 6
//	timecrypt-cli -addr localhost:7733 info    -stream hr
//
// The key file (default ./<stream>.tckeys) stores the stream's secret seed
// and geometry; protect it like any private key.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/chunk"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/wire"
	"repro/internal/workload"
)

// keyFile is the owner's persisted stream secret.
type keyFile struct {
	UUID     string `json:"uuid"`
	Seed     []byte `json:"seed"`
	Height   int    `json:"height"`
	Epoch    int64  `json:"epoch"`
	Interval int64  `json:"interval_ms"`
	Count    uint64 `json:"chunks_ingested"`
}

func main() {
	addr := flag.String("addr", "localhost:7733", "server address")
	stream := flag.String("stream", "demo", "stream UUID")
	interval := flag.Duration("interval", 10*time.Second, "chunk interval (create)")
	chunks := flag.Int("chunks", 60, "chunks to ingest (ingest)")
	window := flag.Uint64("window", 6, "window size in chunks (series)")
	keyPath := flag.String("keys", "", "key file path (default <stream>.tckeys)")
	timeout := flag.Duration("timeout", time.Minute, "per-command deadline, carried to the server over the wire (0 = none)")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: timecrypt-cli [flags] create|ingest|stats|series|info|delete")
	}
	if *keyPath == "" {
		*keyPath = *stream + ".tckeys"
	}

	tr, err := client.DialTCP(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	switch cmd := flag.Arg(0); cmd {
	case "create":
		doCreate(ctx, tr, *stream, interval.Milliseconds(), *keyPath)
	case "ingest":
		doIngest(ctx, tr, *keyPath, *chunks)
	case "stats":
		doStats(ctx, tr, *keyPath, 0)
	case "series":
		doStats(ctx, tr, *keyPath, *window)
	case "info":
		doInfo(ctx, tr, *stream)
	case "delete":
		if err := client.NewOwner(tr).DeleteStream(ctx, *stream); err != nil {
			log.Fatal(err)
		}
		fmt.Println("deleted", *stream)
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}

// fatalResp reports a non-success response and exits; it tolerates
// unexpected message types instead of panicking on a bad assertion.
func fatalResp(resp wire.Message) {
	if e, ok := resp.(*wire.Error); ok {
		log.Fatal(e)
	}
	log.Fatalf("unexpected server response %T", resp)
}

func loadKeys(path string) keyFile {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("reading key file (run create first): %v", err)
	}
	var kf keyFile
	if err := json.Unmarshal(data, &kf); err != nil {
		log.Fatalf("parsing key file: %v", err)
	}
	return kf
}

func saveKeys(path string, kf keyFile) {
	data, err := json.MarshalIndent(kf, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o600); err != nil {
		log.Fatal(err)
	}
}

// rebuildStream reconstructs the owner handle from the key file. The
// client library generates fresh seeds on CreateStream, so the CLI drives
// the lower-level pieces directly for persistence.
func rebuildStream(kf keyFile) (*core.Encryptor, *core.Encryptor, chunk.DigestSpec) {
	var seed core.Node
	copy(seed[:], kf.Seed)
	tree, err := core.NewTree(core.NewPRG(core.PRGAES), kf.Height, seed)
	if err != nil {
		log.Fatal(err)
	}
	return core.NewEncryptor(tree.NewWalker()), core.NewEncryptor(tree.NewWalker()), chunk.DefaultSpec()
}

func doCreate(ctx context.Context, tr client.Transport, stream string, intervalMS int64, keyPath string) {
	tree, err := core.GenerateTree(core.NewPRG(core.PRGAES), core.DefaultTreeHeight)
	if err != nil {
		log.Fatal(err)
	}
	spec := chunk.DefaultSpec()
	specBytes, _ := spec.MarshalBinary()
	epoch := time.Now().UnixMilli()
	cfg := wire.StreamConfig{
		Epoch: epoch, Interval: intervalMS,
		VectorLen: uint32(spec.VectorLen()), Fanout: 64,
		DigestSpec: specBytes, Meta: "timecrypt-cli stream",
	}
	resp, err := tr.RoundTrip(ctx, &wire.CreateStream{UUID: stream, Cfg: cfg})
	if err != nil {
		log.Fatal(err)
	}
	if e, ok := resp.(*wire.Error); ok {
		log.Fatal(e)
	}
	seed := tree.Seed()
	saveKeys(keyPath, keyFile{
		UUID: stream, Seed: seed[:], Height: tree.Height(),
		Epoch: epoch, Interval: intervalMS,
	})
	fmt.Printf("created stream %q (Δ=%dms); keys in %s\n", stream, intervalMS, keyPath)
}

func doIngest(ctx context.Context, tr client.Transport, keyPath string, n int) {
	kf := loadKeys(keyPath)
	enc, _, spec := rebuildStream(kf)
	gen := workload.NewMHealth(42)
	// Chunks ship in Batch envelopes: one round trip per 64 chunks instead
	// of one per chunk.
	const batchSize = 64
	for base := 0; base < n; base += batchSize {
		count := min(batchSize, n-base)
		batch := &wire.Batch{Reqs: make([]wire.Message, 0, count)}
		for i := 0; i < count; i++ {
			idx := kf.Count + uint64(base+i)
			pts := gen.Chunk(idx, kf.Epoch, kf.Interval)
			start := kf.Epoch + int64(idx)*kf.Interval
			sealed, err := chunk.Seal(enc, spec, chunk.CompressionZlib, idx, start, start+kf.Interval, pts)
			if err != nil {
				log.Fatal(err)
			}
			batch.Reqs = append(batch.Reqs, &wire.InsertChunk{UUID: kf.UUID, Chunk: chunk.MarshalSealed(sealed)})
		}
		resp, err := tr.RoundTrip(ctx, batch)
		if err != nil {
			log.Fatal(err)
		}
		br, ok := resp.(*wire.BatchResp)
		if !ok {
			fatalResp(resp)
		}
		for _, sub := range br.Resps {
			if e, bad := sub.(*wire.Error); bad {
				log.Fatal(e)
			}
		}
	}
	kf.Count += uint64(n)
	saveKeys(keyPath, kf)
	fmt.Printf("ingested %d chunks (%d records); stream at %d chunks\n",
		n, n*gen.PointsPerChunk(), kf.Count)
}

func doStats(ctx context.Context, tr client.Transport, keyPath string, window uint64) {
	kf := loadKeys(keyPath)
	_, dec, spec := rebuildStream(kf)
	te := kf.Epoch + int64(kf.Count)*kf.Interval
	resp, err := tr.RoundTrip(ctx, &wire.StatRange{
		UUIDs: []string{kf.UUID}, Ts: kf.Epoch, Te: te, WindowChunks: window,
	})
	if err != nil {
		log.Fatal(err)
	}
	sr, ok := resp.(*wire.StatRangeResp)
	if !ok {
		fatalResp(resp)
	}
	step := window
	if step == 0 {
		step = sr.ToChunk - sr.FromChunk
	}
	for w, vec := range sr.Windows {
		i := sr.FromChunk + uint64(w)*step
		j := i + step
		pt, err := dec.DecryptRange(i, j, vec, nil)
		if err != nil {
			log.Fatal(err)
		}
		r, err := spec.Interpret(pt)
		if err != nil {
			log.Fatal(err)
		}
		from := time.UnixMilli(kf.Epoch + int64(i)*kf.Interval).Format(time.TimeOnly)
		fmt.Printf("[%s +%d chunks] count=%d sum=%d mean=%.2f stdev=%.2f min∈[%d,%d) max∈[%d,%d)\n",
			from, step, r.Count, r.Sum, r.Mean, r.Stdev, r.MinLo, r.MinHi, r.MaxLo, r.MaxHi)
	}
}

func doInfo(ctx context.Context, tr client.Transport, stream string) {
	resp, err := tr.RoundTrip(ctx, &wire.StreamInfo{UUID: stream})
	if err != nil {
		log.Fatal(err)
	}
	info, ok := resp.(*wire.StreamInfoResp)
	if !ok {
		fatalResp(resp)
	}
	fmt.Printf("stream %q: epoch=%s Δ=%dms chunks=%d digest-elements=%d meta=%q\n",
		stream, time.UnixMilli(info.Cfg.Epoch).Format(time.RFC3339),
		info.Cfg.Interval, info.Count, info.Cfg.VectorLen, info.Cfg.Meta)
}
