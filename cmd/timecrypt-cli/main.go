// Command timecrypt-cli is a small operational tool against a running
// timecrypt-server: it creates streams, loads synthetic data, and runs
// statistical queries, holding its key material in a local key file.
//
// Usage (flags come BEFORE the subcommand — the flag package stops
// parsing at the first non-flag argument):
//
//	timecrypt-cli -addr localhost:7733 -stream hr -interval 10s create
//	timecrypt-cli -addr localhost:7733 -stream hr -chunks 100 ingest
//	timecrypt-cli -addr localhost:7733 -stream hr stats
//	timecrypt-cli -addr localhost:7733 -stream hr,bp,spo2 stat
//	timecrypt-cli -addr localhost:7733 -stream hr -window 6 series
//	timecrypt-cli -addr localhost:7733 -stream hr -window 6 -timeout 5m watch
//	timecrypt-cli -addr localhost:7733 -stream hr info
//
// Cluster administration against a router front end:
//
//	timecrypt-cli -addr localhost:7700 topology
//	timecrypt-cli -addr localhost:7700 -members host1:7733,host2:7733,host3:7733 reshard
//
// topology prints the router's versioned ring membership; reshard changes
// it to exactly -members, migrating the streams whose ownership changed
// while the cluster keeps serving (docs/OPERATIONS.md walks through it).
// reshard runs without a deadline unless -timeout is set explicitly — a
// large migration may take well past the default command timeout.
//
// watch subscribes to the streams' live window aggregates (wire v5): the
// server pushes one encrypted delta per completed -window chunks and the
// CLI decrypts each as it arrives, until -timeout expires (set -timeout 0
// to watch until interrupted).
//
// stat/stats/series/watch accept several comma-separated stream UUIDs: the
// server homomorphically sums the streams' aggregates (one round trip),
// and the CLI peels each stream's keystream in turn — so it needs the key
// file of every member stream.
//
// The key file (default ./<stream>.tckeys) stores the stream's secret seed
// and geometry; protect it like any private key.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/chunk"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/wire"
	"repro/internal/workload"
)

// keyFile is the owner's persisted stream secret.
type keyFile struct {
	UUID     string `json:"uuid"`
	Seed     []byte `json:"seed"`
	Height   int    `json:"height"`
	Epoch    int64  `json:"epoch"`
	Interval int64  `json:"interval_ms"`
	Count    uint64 `json:"chunks_ingested"`
}

func main() {
	addr := flag.String("addr", "localhost:7733", "server address(es), comma-separated; extras are dial fallbacks (replicas probes each)")
	stream := flag.String("stream", "demo", "stream UUID (stat/stats/series accept a comma-separated list)")
	interval := flag.Duration("interval", 10*time.Second, "chunk interval (create)")
	epochMS := flag.Int64("epoch", 0, "stream epoch, Unix ms (create; 0 = now). Streams queried together need the same epoch")
	chunks := flag.Int("chunks", 60, "chunks to ingest (ingest)")
	window := flag.Uint64("window", 6, "window size in chunks (series)")
	keyPath := flag.String("keys", "", "key file path(s), comma-separated like -stream (default <stream>.tckeys each)")
	timeout := flag.Duration("timeout", time.Minute, "per-command deadline, carried to the server over the wire (0 = none)")
	members := flag.String("members", "", "comma-separated ring membership (reshard)")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: timecrypt-cli [flags] create|ingest|stat|stats|series|watch|info|delete|topology|reshard|replicas")
	}
	streams := strings.Split(*stream, ",")
	keyPaths := make([]string, len(streams))
	if *keyPath != "" {
		given := strings.Split(*keyPath, ",")
		if len(given) != len(streams) {
			log.Fatalf("-keys lists %d files for %d streams", len(given), len(streams))
		}
		copy(keyPaths, given)
	} else {
		for i, s := range streams {
			keyPaths[i] = s + ".tckeys"
		}
	}

	var addrs []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		log.Fatal("-addr names no server")
	}
	tr, err := client.DialTCPFailover(addrs, client.SessionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()

	// reshard migrates data and can legitimately run far past the default
	// command deadline: it gets no deadline unless -timeout was set
	// explicitly (the wire deadline would cancel and roll back the
	// migration server-side).
	timeoutSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "timeout" {
			timeoutSet = true
		}
	})
	ctx := context.Background()
	if *timeout > 0 && (flag.Arg(0) != "reshard" || timeoutSet) {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Only the query commands understand multiple streams; failing loudly
	// beats silently acting on the first one.
	single := func(cmd string) {
		if len(streams) != 1 {
			log.Fatalf("%s takes a single -stream (got %d: %s)", cmd, len(streams), *stream)
		}
	}
	switch cmd := flag.Arg(0); cmd {
	case "create":
		single(cmd)
		doCreate(ctx, tr, streams[0], interval.Milliseconds(), *epochMS, keyPaths[0])
	case "ingest":
		single(cmd)
		doIngest(ctx, tr, keyPaths[0], *chunks)
	case "stat", "stats":
		doStats(ctx, tr, keyPaths, 0)
	case "series":
		doStats(ctx, tr, keyPaths, *window)
	case "watch":
		doWatch(ctx, tr, keyPaths, *window)
	case "info":
		single(cmd)
		doInfo(ctx, tr, streams[0])
	case "delete":
		single(cmd)
		if err := client.NewOwner(tr).DeleteStream(ctx, streams[0]); err != nil {
			log.Fatal(err)
		}
		fmt.Println("deleted", streams[0])
	case "topology":
		doTopology(ctx, tr)
	case "replicas":
		doReplicas(ctx, addrs)
	case "reshard":
		doReshard(ctx, tr, *members)
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}

func doTopology(ctx context.Context, tr client.Transport) {
	resp, err := tr.RoundTrip(ctx, &wire.TopologyInfo{})
	if err != nil {
		log.Fatal(err)
	}
	ti, ok := resp.(*wire.TopologyInfoResp)
	if !ok {
		fatalResp(resp)
	}
	fmt.Printf("topology epoch %d, %d members\n", ti.Epoch, len(ti.Members))
	for _, m := range ti.Members {
		fmt.Printf("  %s\n", m)
	}
}

// doReplicas probes every address with a LeaseInfo round trip and prints
// each member's replication role. Given a single address, the rest of the
// group is discovered from that member's view.
func doReplicas(ctx context.Context, addrs []string) {
	probe := func(addr string) (*wire.LeaseInfoResp, error) {
		tr, err := client.DialTCP(addr)
		if err != nil {
			return nil, err
		}
		defer tr.Close()
		resp, err := tr.RoundTrip(ctx, &wire.LeaseInfo{})
		if err != nil {
			return nil, err
		}
		li, ok := resp.(*wire.LeaseInfoResp)
		if !ok {
			if e, isErr := resp.(*wire.Error); isErr {
				return nil, fmt.Errorf("%v (probe group members directly, not a router)", e)
			}
			return nil, fmt.Errorf("unexpected response %T", resp)
		}
		return li, nil
	}
	roleName := map[uint8]string{
		wire.ReplStandalone: "standalone",
		wire.ReplLeader:     "leader",
		wire.ReplFollower:   "follower",
		wire.ReplDeposed:    "deposed",
	}
	views := make(map[string]*wire.LeaseInfoResp)
	errs := make(map[string]error)
	queue := append([]string(nil), addrs...)
	for i := 0; i < len(queue); i++ {
		a := queue[i]
		if _, seen := views[a]; seen {
			continue
		}
		if _, seen := errs[a]; seen {
			continue
		}
		li, err := probe(a)
		if err != nil {
			errs[a] = err
			continue
		}
		views[a] = li
		for _, m := range li.Members {
			queue = append(queue, m)
		}
		if li.Leader != "" {
			queue = append(queue, li.Leader)
		}
	}
	if len(views) == 0 {
		for a, err := range errs {
			log.Printf("%s: %v", a, err)
		}
		log.Fatal("no replication group member answered")
	}
	for _, a := range queue {
		li, ok := views[a]
		if !ok {
			continue
		}
		delete(views, a) // print each member once, in discovery order
		role := roleName[li.Role]
		if role == "" {
			role = fmt.Sprintf("role-%d", li.Role)
		}
		fmt.Printf("%-22s %-10s epoch %-4d watermark %-8d lease %s", a, role, li.Epoch, li.Watermark, time.Duration(li.LeaseMS)*time.Millisecond)
		if li.Mode == wire.ReplModeQuorum {
			fmt.Printf("  mode quorum")
			if li.Quorum > 0 {
				fmt.Printf(" (%d to ack)", li.Quorum)
			}
		}
		if li.Leader != "" && li.Leader != a {
			fmt.Printf("  -> leader %s", li.Leader)
		}
		fmt.Println()
	}
	for a, err := range errs {
		fmt.Printf("%-22s unreachable: %v\n", a, err)
	}
}

// doReshard changes the ring membership to exactly the -members list; the
// router migrates every stream whose ownership changed while serving.
func doReshard(ctx context.Context, tr client.Transport, memberList string) {
	var members []string
	for _, m := range strings.Split(memberList, ",") {
		if m = strings.TrimSpace(m); m != "" {
			members = append(members, m)
		}
	}
	if len(members) == 0 {
		log.Fatal("reshard needs -members host1:port,host2:port,...")
	}
	resp, err := tr.RoundTrip(ctx, &wire.Reshard{Members: members})
	if err != nil {
		log.Fatal(err)
	}
	ti, ok := resp.(*wire.TopologyInfoResp)
	if !ok {
		fatalResp(resp)
	}
	fmt.Printf("resharded: epoch %d, %d members\n", ti.Epoch, len(ti.Members))
	for _, m := range ti.Members {
		fmt.Printf("  %s\n", m)
	}
}

// fatalResp reports a non-success response and exits; it tolerates
// unexpected message types instead of panicking on a bad assertion.
func fatalResp(resp wire.Message) {
	if e, ok := resp.(*wire.Error); ok {
		log.Fatal(e)
	}
	log.Fatalf("unexpected server response %T", resp)
}

func loadKeys(path string) keyFile {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("reading key file (run create first): %v", err)
	}
	var kf keyFile
	if err := json.Unmarshal(data, &kf); err != nil {
		log.Fatalf("parsing key file: %v", err)
	}
	return kf
}

func saveKeys(path string, kf keyFile) {
	data, err := json.MarshalIndent(kf, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o600); err != nil {
		log.Fatal(err)
	}
}

// rebuildStream reconstructs the owner handle from the key file. The
// client library generates fresh seeds on CreateStream, so the CLI drives
// the lower-level pieces directly for persistence.
func rebuildStream(kf keyFile) (*core.Encryptor, *core.Encryptor, chunk.DigestSpec) {
	var seed core.Node
	copy(seed[:], kf.Seed)
	tree, err := core.NewTree(core.NewPRG(core.PRGAES), kf.Height, seed)
	if err != nil {
		log.Fatal(err)
	}
	return core.NewEncryptor(tree.NewWalker()), core.NewEncryptor(tree.NewWalker()), chunk.DefaultSpec()
}

func doCreate(ctx context.Context, tr client.Transport, stream string, intervalMS, epoch int64, keyPath string) {
	tree, err := core.GenerateTree(core.NewPRG(core.PRGAES), core.DefaultTreeHeight)
	if err != nil {
		log.Fatal(err)
	}
	spec := chunk.DefaultSpec()
	specBytes, _ := spec.MarshalBinary()
	if epoch == 0 {
		epoch = time.Now().UnixMilli()
	}
	cfg := wire.StreamConfig{
		Epoch: epoch, Interval: intervalMS,
		VectorLen: uint32(spec.VectorLen()), Fanout: 64,
		DigestSpec: specBytes, Meta: "timecrypt-cli stream",
	}
	resp, err := tr.RoundTrip(ctx, &wire.CreateStream{UUID: stream, Cfg: cfg})
	if err != nil {
		log.Fatal(err)
	}
	if e, ok := resp.(*wire.Error); ok {
		log.Fatal(e)
	}
	seed := tree.Seed()
	saveKeys(keyPath, keyFile{
		UUID: stream, Seed: seed[:], Height: tree.Height(),
		Epoch: epoch, Interval: intervalMS,
	})
	fmt.Printf("created stream %q (Δ=%dms); keys in %s\n", stream, intervalMS, keyPath)
}

func doIngest(ctx context.Context, tr client.Transport, keyPath string, n int) {
	kf := loadKeys(keyPath)
	enc, _, spec := rebuildStream(kf)
	gen := workload.NewMHealth(42)
	// Chunks ship in Batch envelopes: one round trip per 64 chunks instead
	// of one per chunk.
	const batchSize = 64
	for base := 0; base < n; base += batchSize {
		count := min(batchSize, n-base)
		batch := &wire.Batch{Reqs: make([]wire.Message, 0, count)}
		for i := 0; i < count; i++ {
			idx := kf.Count + uint64(base+i)
			pts := gen.Chunk(idx, kf.Epoch, kf.Interval)
			start := kf.Epoch + int64(idx)*kf.Interval
			sealed, err := chunk.Seal(enc, spec, chunk.CompressionZlib, idx, start, start+kf.Interval, pts)
			if err != nil {
				log.Fatal(err)
			}
			batch.Reqs = append(batch.Reqs, &wire.InsertChunk{UUID: kf.UUID, Chunk: chunk.MarshalSealed(sealed)})
		}
		resp, err := tr.RoundTrip(ctx, batch)
		if err != nil {
			log.Fatal(err)
		}
		br, ok := resp.(*wire.BatchResp)
		if !ok {
			fatalResp(resp)
		}
		for _, sub := range br.Resps {
			if e, bad := sub.(*wire.Error); bad {
				log.Fatal(e)
			}
		}
	}
	kf.Count += uint64(n)
	saveKeys(keyPath, kf)
	fmt.Printf("ingested %d chunks (%d records); stream at %d chunks\n",
		n, n*gen.PointsPerChunk(), kf.Count)
}

// doStats queries one or many streams: with several key files the server
// returns the homomorphically combined aggregate (one wire.AggRange round
// trip) and decryption peels each stream's keystream in turn.
func doStats(ctx context.Context, tr client.Transport, keyPaths []string, window uint64) {
	kfs := make([]keyFile, len(keyPaths))
	uuids := make([]string, len(keyPaths))
	decs := make([]*core.Encryptor, len(keyPaths))
	var spec chunk.DigestSpec
	minCount := uint64(0)
	for i, path := range keyPaths {
		kfs[i] = loadKeys(path)
		uuids[i] = kfs[i].UUID
		_, decs[i], spec = rebuildStream(kfs[i])
		if kfs[i].Epoch != kfs[0].Epoch || kfs[i].Interval != kfs[0].Interval {
			log.Fatalf("stream %q geometry differs from %q (combined queries need matching epoch/interval)",
				kfs[i].UUID, kfs[0].UUID)
		}
		if i == 0 || kfs[i].Count < minCount {
			minCount = kfs[i].Count
		}
	}
	kf := kfs[0]
	te := kf.Epoch + int64(minCount)*kf.Interval
	resp, err := tr.RoundTrip(ctx, &wire.AggRange{
		UUIDs: uuids, Ts: kf.Epoch, Te: te, WindowChunks: window,
	})
	if err != nil {
		log.Fatal(err)
	}
	sr, ok := resp.(*wire.AggRangeResp)
	if !ok {
		fatalResp(resp)
	}
	if int(sr.StreamCount) != len(uuids) {
		log.Fatalf("server combined %d of %d streams", sr.StreamCount, len(uuids))
	}
	step := window
	if step == 0 {
		step = sr.ToChunk - sr.FromChunk
	}
	for w, vec := range sr.Windows {
		i := sr.FromChunk + uint64(w)*step
		j := i + step
		pt := vec
		for _, dec := range decs {
			if pt, err = dec.DecryptRange(i, j, pt, nil); err != nil {
				log.Fatal(err)
			}
		}
		r, err := spec.Interpret(pt)
		if err != nil {
			log.Fatal(err)
		}
		from := time.UnixMilli(kf.Epoch + int64(i)*kf.Interval).Format(time.TimeOnly)
		fmt.Printf("[%s +%d chunks] streams=%d count=%d sum=%d mean=%.2f stdev=%.2f min∈[%d,%d) max∈[%d,%d)\n",
			from, step, sr.StreamCount, r.Count, r.Sum, r.Mean, r.Stdev, r.MinLo, r.MinHi, r.MaxLo, r.MaxHi)
	}
}

// doWatch subscribes to the live window aggregates of one or many streams
// (wire v5 Subscribe): instead of polling like doStats, the server pushes
// one encrypted delta per completed -window chunks and the CLI peels each
// stream's keystream as events arrive. The -timeout deadline bounds the
// watch and expiring it is a clean exit, not an error.
func doWatch(ctx context.Context, tr *client.TCP, keyPaths []string, window uint64) {
	if window == 0 {
		log.Fatal("watch needs -window > 0")
	}
	kfs := make([]keyFile, len(keyPaths))
	uuids := make([]string, len(keyPaths))
	decs := make([]*core.Encryptor, len(keyPaths))
	var spec chunk.DigestSpec
	for i, path := range keyPaths {
		kfs[i] = loadKeys(path)
		uuids[i] = kfs[i].UUID
		_, decs[i], spec = rebuildStream(kfs[i])
		if kfs[i].Epoch != kfs[0].Epoch || kfs[i].Interval != kfs[0].Interval {
			log.Fatalf("stream %q geometry differs from %q (combined subscriptions need matching epoch/interval)",
				kfs[i].UUID, kfs[0].UUID)
		}
	}
	kf := kfs[0]

	st, err := tr.Stream(ctx, &wire.Subscribe{
		UUIDs: uuids, WindowChunks: window, FromLatest: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	first, err := st.Recv()
	if err != nil {
		log.Fatal(err)
	}
	resp, ok := first.(*wire.SubscribeResp)
	if !ok {
		fatalResp(first)
	}
	fmt.Printf("watching %d stream(s) from window %d (%d chunks per window; -timeout or Ctrl-C ends)\n",
		len(uuids), resp.FirstSeq, window)
	for {
		msg, err := st.Recv()
		switch {
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			fmt.Println("watch deadline reached")
			return
		case errors.Is(err, io.EOF):
			fmt.Println("server ended the subscription")
			return
		case err != nil:
			log.Fatal(err)
		}
		ev, ok := msg.(*wire.SubEvent)
		if !ok {
			fatalResp(msg)
		}
		pt := append([]uint64(nil), ev.Window...)
		for _, dec := range decs {
			if pt, err = dec.DecryptRange(ev.FromChunk, ev.ToChunk, pt, nil); err != nil {
				log.Fatal(err)
			}
		}
		r, err := spec.Interpret(pt)
		if err != nil {
			log.Fatal(err)
		}
		tag := ""
		if ev.Resync {
			tag = " (resync)"
		}
		from := time.UnixMilli(kf.Epoch + int64(ev.FromChunk)*kf.Interval).Format(time.TimeOnly)
		fmt.Printf("[window %d @ %s] streams=%d count=%d sum=%d mean=%.2f stdev=%.2f%s\n",
			ev.Seq, from, resp.StreamCount, r.Count, r.Sum, r.Mean, r.Stdev, tag)
	}
}

func doInfo(ctx context.Context, tr client.Transport, stream string) {
	resp, err := tr.RoundTrip(ctx, &wire.StreamInfo{UUID: stream})
	if err != nil {
		log.Fatal(err)
	}
	info, ok := resp.(*wire.StreamInfoResp)
	if !ok {
		fatalResp(resp)
	}
	fmt.Printf("stream %q: epoch=%s Δ=%dms chunks=%d digest-elements=%d meta=%q\n",
		stream, time.UnixMilli(info.Cfg.Epoch).Format(time.RFC3339),
		info.Cfg.Interval, info.Count, info.Cfg.VectorLen, info.Cfg.Meta)
}
