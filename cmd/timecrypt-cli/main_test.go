package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/kv"
	"repro/internal/replica"
	"repro/internal/server"
)

// The test binary doubles as the CLI: when re-executed with the child
// marker it runs main() with whatever flags the test passed.
func TestMain(m *testing.M) {
	if os.Getenv("TIMECRYPT_CLI_CHILD") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// runCLI re-executes the test binary as the CLI and returns its combined
// output.
func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "TIMECRYPT_CLI_CHILD=1")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// startReplNode serves one replication group member over TCP.
func startReplNode(t *testing.T) (*replica.Node, string) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node, err := replica.New(kv.NewMemStore(), server.Config{}, replica.Options{
		Self:  lis.Addr().String(),
		Lease: time.Second,
		Logf:  func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewServer(node, func(string, ...any) {})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ctx, lis) }()
	t.Cleanup(func() {
		node.Close()
		cancel()
		srv.Close()
		<-done
	})
	return node, lis.Addr().String()
}

// TestReplicasVerb: the replicas verb probes one member, discovers the
// rest of the group from its view, and reports each member's role.
func TestReplicasVerb(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary as the CLI")
	}
	leader, leaderAddr := startReplNode(t)
	_, followerAddr := startReplNode(t)
	leader.Lead([]string{followerAddr})

	// Probing only the leader must still surface the follower. The
	// follower only learns its role from the leader's first heartbeat
	// (lease/3), so poll briefly.
	var out string
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for {
		out, err = runCLI(t, "-addr", leaderAddr, "replicas")
		if err != nil {
			t.Fatalf("replicas verb: %v\n%s", err, out)
		}
		if strings.Contains(out, "follower") || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, want := range []string{leaderAddr, followerAddr, "leader", "follower", "epoch 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("replicas output missing %q:\n%s", want, out)
		}
	}

	// A comma-separated -addr probes every listed member explicitly, and
	// an unreachable one is reported rather than fatal.
	deadAddr := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		a := l.Addr().String()
		l.Close()
		return a
	}()
	out, err = runCLI(t, "-addr", fmt.Sprintf("%s,%s,%s", followerAddr, leaderAddr, deadAddr), "replicas")
	if err != nil {
		t.Fatalf("replicas verb with member list: %v\n%s", err, out)
	}
	for _, want := range []string{leaderAddr, followerAddr, "unreachable"} {
		if !strings.Contains(out, want) {
			t.Errorf("multi-addr replicas output missing %q:\n%s", want, out)
		}
	}
}

// TestTopologyVerbFallbackDial: extra -addr entries are dial fallbacks
// for every verb — the first address being dead must not matter.
func TestTopologyVerbFallbackDial(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary as the CLI")
	}
	_, addr := startReplNode(t)
	out, err := runCLI(t, "-addr", "127.0.0.1:1,"+addr, "info", "-stream", "nope")
	// The stream doesn't exist: the point is that the command reached the
	// live server (a structured error) instead of dying on the dead dial.
	if err == nil {
		t.Fatalf("info on missing stream succeeded?\n%s", out)
	}
	if strings.Contains(out, "connection refused") && !strings.Contains(out, "not found") {
		t.Errorf("fallback dial not used:\n%s", out)
	}
}
