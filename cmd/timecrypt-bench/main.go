// Command timecrypt-bench regenerates the paper's evaluation tables and
// figures (§6) on local hardware.
//
// Usage:
//
//	timecrypt-bench -run all -scale 1.0
//	timecrypt-bench -run table2,fig5
//
// Experiments: table2, table3, fig5, fig6, fig7, fig8, access, devops,
// cluster. Scale > 1 approaches the paper's sizes (and run times).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	runList := flag.String("run", "all", "comma-separated experiments (table2,table3,fig5,fig6,fig7,fig8,access,devops,cluster) or 'all'")
	scale := flag.Float64("scale", 1.0, "experiment scale factor (1.0 = laptop-sized defaults)")
	flag.Parse()

	opts := bench.Options{Scale: *scale}
	type experiment struct {
		name string
		run  func(io.Writer, bench.Options) error
	}
	wrap2 := func(f func(io.Writer, bench.Options) ([]bench.Table2Result, error)) func(io.Writer, bench.Options) error {
		return func(w io.Writer, o bench.Options) error { _, err := f(w, o); return err }
	}
	experiments := []experiment{
		{"table2", wrap2(bench.Table2)},
		{"table3", func(w io.Writer, o bench.Options) error { _, err := bench.Table3(w, o); return err }},
		{"fig5", func(w io.Writer, o bench.Options) error { _, err := bench.Fig5(w, o); return err }},
		{"fig6", func(w io.Writer, o bench.Options) error { _, err := bench.Fig6(w, o); return err }},
		{"fig7", func(w io.Writer, o bench.Options) error { _, err := bench.Fig7(w, o); return err }},
		{"fig8", func(w io.Writer, o bench.Options) error { _, err := bench.Fig8(w, o); return err }},
		{"access", func(w io.Writer, o bench.Options) error { _, err := bench.AccessControl(w, o); return err }},
		{"devops", func(w io.Writer, o bench.Options) error { _, err := bench.DevOps(w, o); return err }},
		{"cluster", func(w io.Writer, o bench.Options) error { _, err := bench.Cluster(w, o); return err }},
	}

	want := map[string]bool{}
	all := *runList == "all"
	for _, name := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(name)] = true
	}
	ran := 0
	for _, exp := range experiments {
		if !all && !want[exp.name] {
			continue
		}
		fmt.Printf("==== %s ====\n", exp.name)
		if err := exp.run(os.Stdout, opts); err != nil {
			log.Fatalf("%s: %v", exp.name, err)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		log.Fatalf("no experiment matched %q", *runList)
	}
}
