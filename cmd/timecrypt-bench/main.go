// Command timecrypt-bench regenerates the paper's evaluation tables and
// figures (§6) on local hardware.
//
// Usage:
//
//	timecrypt-bench -run all -scale 1.0
//	timecrypt-bench -run table2,fig5
//	timecrypt-bench -run batch -json BENCH_results.json
//
// Experiments: table2, table3, fig5, fig6, fig7, fig8, access, devops,
// cluster, batch, pipeline, aggregate, reshard, hotpath, durable,
// subscribe. Scale > 1 approaches the paper's sizes (and run times).
//
// Alongside the human-readable tables, machine-readable metrics
// (experiment, ops/sec, p50/p99 latency) are written to the -json file so
// the performance trajectory is tracked across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/bench"
)

// wrap adapts an experiment returning typed results to the generic runner.
func wrap[T any](f func(io.Writer, bench.Options) ([]T, error)) func(io.Writer, bench.Options) error {
	return func(w io.Writer, o bench.Options) error { _, err := f(w, o); return err }
}

func main() {
	runList := flag.String("run", "all", "comma-separated experiments (table2,table3,fig5,fig6,fig7,fig8,access,devops,cluster,batch,pipeline,aggregate,reshard,hotpath,durable,subscribe,failover) or 'all'")
	scale := flag.Float64("scale", 1.0, "experiment scale factor (1.0 = laptop-sized defaults)")
	jsonPath := flag.String("json", "BENCH_results.json", "machine-readable results file ('' disables)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write an allocs heap profile to this file at exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("creating cpu profile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("starting cpu profile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatalf("creating mem profile: %v", err)
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Fatalf("writing mem profile: %v", err)
			}
		}()
	}

	results := &bench.Results{}
	opts := bench.Options{Scale: *scale, Results: results}
	type experiment struct {
		name string
		run  func(io.Writer, bench.Options) error
	}
	experiments := []experiment{
		{"table2", wrap(bench.Table2)},
		{"table3", wrap(bench.Table3)},
		{"fig5", wrap(bench.Fig5)},
		{"fig6", wrap(bench.Fig6)},
		{"fig7", wrap(bench.Fig7)},
		{"fig8", wrap(bench.Fig8)},
		{"access", wrap(bench.AccessControl)},
		{"devops", wrap(bench.DevOps)},
		{"cluster", wrap(bench.Cluster)},
		{"batch", wrap(bench.BatchIngest)},
		{"pipeline", wrap(bench.Pipeline)},
		{"aggregate", wrap(bench.Aggregate)},
		{"reshard", wrap(bench.Reshard)},
		{"hotpath", wrap(bench.HotPath)},
		{"durable", wrap(bench.DurableIngest)},
		{"subscribe", wrap(bench.Subscribe)},
		{"failover", wrap(bench.Failover)},
	}

	want := map[string]bool{}
	all := *runList == "all"
	for _, name := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(name)] = true
	}
	ran := 0
	for _, exp := range experiments {
		if !all && !want[exp.name] {
			continue
		}
		fmt.Printf("==== %s ====\n", exp.name)
		if err := exp.run(os.Stdout, opts); err != nil {
			log.Fatalf("%s: %v", exp.name, err)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		log.Fatalf("no experiment matched %q", *runList)
	}
	if *jsonPath != "" {
		if metrics := results.Metrics(); len(metrics) > 0 {
			merged := mergeMetrics(*jsonPath, metrics)
			data, err := json.MarshalIndent(merged, "", "  ")
			if err != nil {
				log.Fatalf("encoding results: %v", err)
			}
			data = append(data, '\n')
			if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
				log.Fatalf("writing %s: %v", *jsonPath, err)
			}
			fmt.Printf("wrote %d metrics to %s (%d fresh)\n", len(merged), *jsonPath, len(metrics))
		}
	}
}

// mergeMetrics folds this run's metrics into an existing results file:
// experiments that ran are replaced wholesale, experiments that did not
// run keep their previous numbers — so partial runs (-run pipeline) stop
// clobbering the rest of the tracked trajectory.
func mergeMetrics(path string, fresh []bench.Metric) []bench.Metric {
	prev, err := os.ReadFile(path)
	if err != nil {
		return fresh
	}
	var old []bench.Metric
	if err := json.Unmarshal(prev, &old); err != nil {
		return fresh // unreadable history loses to fresh data
	}
	reran := map[string]bool{}
	for _, m := range fresh {
		reran[m.Experiment] = true
	}
	var merged []bench.Metric
	for _, m := range old {
		if !reran[m.Experiment] {
			merged = append(merged, m)
		}
	}
	return append(merged, fresh...)
}
