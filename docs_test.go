// Documentation hygiene checks, run as ordinary tests so CI (and plain
// `go test ./...`) fails when the docs rot:
//
//   - TestPackageDocs: every package in this module carries a package
//     comment, so `go doc` actually describes the system.
//   - TestMarkdownLinks: every relative link in README.md and docs/*.md
//     resolves to a file that exists (and intra-document #anchors to a
//     heading that exists), so the docs suite cannot rot silently.
package timecrypt

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestPackageDocs parses every non-test package under the module root and
// requires a package comment (a doc comment attached to some file's
// package clause).
func TestPackageDocs(t *testing.T) {
	pkgDirs := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			pkgDirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for dir := range pkgDirs {
		documented := false
		var files []string
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		fset := token.NewFileSet()
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			files = append(files, path)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Errorf("%s: %v", path, err)
				continue
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
			}
		}
		if len(files) > 0 && !documented {
			t.Errorf("package %s has no package comment on any of its files; add a doc.go or a comment above one package clause", dir)
		}
	}
}

// mdLink matches inline markdown links [text](target); images and
// reference-style links are out of scope for the repo's docs.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinks verifies every relative link in the doc suite.
func TestMarkdownLinks(t *testing.T) {
	var docs []string
	for _, glob := range []string{"README.md", "docs/*.md", "*.md"} {
		matches, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, matches...)
	}
	seen := map[string]bool{}
	for _, doc := range docs {
		if seen[doc] {
			continue
		}
		seen[doc] = true
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		anchors := headingAnchors(string(data))
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue // external links are not checked (no network in CI)
			case strings.HasPrefix(target, "#"):
				if !anchors[strings.TrimPrefix(target, "#")] {
					t.Errorf("%s: anchor link %q has no matching heading", doc, target)
				}
			default:
				path, frag, _ := strings.Cut(target, "#")
				resolved := filepath.Join(filepath.Dir(doc), path)
				info, err := os.Stat(resolved)
				if err != nil {
					t.Errorf("%s: link target %q does not exist", doc, target)
					continue
				}
				if frag != "" && !info.IsDir() && strings.HasSuffix(path, ".md") {
					other, err := os.ReadFile(resolved)
					if err != nil {
						t.Errorf("%s: reading link target %q: %v", doc, target, err)
						continue
					}
					if !headingAnchors(string(other))[frag] {
						t.Errorf("%s: anchor %q not found in %s", doc, target, path)
					}
				}
			}
		}
	}
	if len(seen) < 4 {
		t.Fatalf("link checker found only %d markdown files; docs/ suite missing?", len(seen))
	}
}

// headingAnchors derives GitHub-style anchor slugs from markdown headings.
func headingAnchors(md string) map[string]bool {
	anchors := map[string]bool{}
	inFence := false
	for _, line := range strings.Split(md, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimSpace(strings.TrimLeft(line, "#"))
		slug := strings.ToLower(text)
		// GitHub's slugger: drop everything but letters, digits, spaces,
		// and hyphens, then spaces become hyphens.
		var b strings.Builder
		for _, r := range slug {
			switch {
			case r == ' ':
				b.WriteRune('-')
			case r == '-' || r == '_':
				b.WriteRune(r)
			case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
				b.WriteRune(r)
			case r > 127: // keep non-ASCII letters (GitHub does)
				b.WriteRune(r)
			}
		}
		anchors[b.String()] = true
	}
	return anchors
}

// Ensure the suite the README promises actually exists.
func TestDocsSuitePresent(t *testing.T) {
	for _, doc := range []string{"docs/ARCHITECTURE.md", "docs/PROTOCOL.md", "docs/OPERATIONS.md"} {
		if _, err := os.Stat(doc); err != nil {
			t.Errorf("%s missing: %v", doc, err)
		}
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"docs/ARCHITECTURE.md", "docs/PROTOCOL.md", "docs/OPERATIONS.md"} {
		if !strings.Contains(string(readme), want) {
			t.Errorf("README does not link %s", want)
		}
	}
}
