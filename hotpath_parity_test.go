// Golden-vector parity tests for the hot-path allocation purge: the pooled
// keystream crypto, reused wire buffers, and batched index appends must be
// byte-identical to the pre-optimization path. The goldens in
// testdata/hotpath_golden.json were captured from the seed implementation
// (aes.NewCipher per PRG step, per-frame allocation, per-chunk Append)
// before any optimization landed; regenerate only with
// TIMECRYPT_UPDATE_GOLDEN=1 and a deliberate reason. A wire version bump
// is one such reason: it moves only the request-envelope header of the
// frames section (the version byte, plus the sender-epoch field v6 added),
// and every crypto/index section must survive unchanged.
package timecrypt_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/kv"
	"repro/internal/wire"
)

const goldenPath = "testdata/hotpath_golden.json"

// hotpathGolden freezes the observable bytes of the three optimized layers.
// All integers are hex strings so JSON round-trips preserve full uint64
// precision.
type hotpathGolden struct {
	// PRG maps each construction to a 32-node expansion chain from a fixed
	// seed, alternating left/right children.
	PRG map[string][]string `json:"prg"`
	// SubKeys / SubKeysAt are per-element subkey expansions of one leaf.
	SubKeys   []string `json:"subkeys"`
	SubKeysAt []string `json:"subkeys_at"`
	// CipherFirst holds the first ciphertext vectors of a 100-chunk
	// EncryptDigest run; CipherSHA256 hashes the whole run.
	CipherFirst  [][]string `json:"cipher_first"`
	CipherSHA256 string     `json:"cipher_sha256"`
	// ChunkKeys are the derived AES-GCM chunk keys for the same run.
	ChunkKeys []string `json:"chunk_keys"`
	// Frames are wire envelope encodings for fixed messages.
	Frames map[string]string `json:"frames"`
	// IndexSmall is the full store dump of a fanout-4 tree after 130
	// appends; IndexDefaultSHA256 hashes a fanout-64 dump.
	IndexSmall         map[string]string `json:"index_small"`
	IndexDefaultSHA256 string            `json:"index_default_sha256"`
	// CoverTokens are marshalled tokens for fixed grant ranges.
	CoverTokens []string `json:"cover_tokens"`
}

func u64hex(v uint64) string { return fmt.Sprintf("%016x", v) }

func vecHex(vec []uint64) []string {
	out := make([]string, len(vec))
	for i, v := range vec {
		out[i] = u64hex(v)
	}
	return out
}

// computeGolden derives every golden value through the public API, so the
// same code both captures the seed behavior and checks the optimized one.
func computeGolden(t *testing.T) *hotpathGolden {
	t.Helper()
	g := &hotpathGolden{PRG: map[string][]string{}, Frames: map[string]string{}}

	// --- PRG expansion chains -------------------------------------------
	seed := core.Node{0xA5, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 0x5A}
	for _, kind := range []core.PRGKind{core.PRGAES, core.PRGSHA256, core.PRGHMAC} {
		prg := core.NewPRG(kind)
		node := seed
		chain := make([]string, 0, 32)
		for i := 0; i < 16; i++ {
			l, r := prg.Expand(node)
			chain = append(chain, hex.EncodeToString(l[:]), hex.EncodeToString(r[:]))
			if i%2 == 0 {
				node = l
			} else {
				node = r
			}
		}
		g.PRG[kind.String()] = chain
	}

	// --- subkey expansion ------------------------------------------------
	leaf := core.Node{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 0xFF, 0xEE, 0xDD, 0xCC, 0xBB, 0xAA}
	g.SubKeys = vecHex(core.SubKeys(leaf, make([]uint64, 19)))
	g.SubKeysAt = vecHex(core.SubKeysAt(leaf, []uint32{0, 3, 17, 42}, nil))

	// --- HEAC ciphertexts + chunk keys over a sequential walker ----------
	tree, err := core.NewTree(core.NewPRG(core.PRGAES), core.DefaultTreeHeight, seed)
	if err != nil {
		t.Fatal(err)
	}
	enc := core.NewEncryptor(tree.NewWalker())
	h := sha256.New()
	m := make([]uint64, 19)
	ct := make([]uint64, 19)
	for i := uint64(0); i < 100; i++ {
		for e := range m {
			m[e] = i*31 + uint64(e)*7
		}
		if _, err := enc.EncryptDigest(i, m, ct); err != nil {
			t.Fatal(err)
		}
		for _, v := range ct {
			var b [8]byte
			for j := 0; j < 8; j++ {
				b[j] = byte(v >> (56 - 8*j))
			}
			h.Write(b[:])
		}
		if i < 2 {
			g.CipherFirst = append(g.CipherFirst, vecHex(ct))
		}
		key, err := enc.ChunkKeyAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if i < 8 {
			g.ChunkKeys = append(g.ChunkKeys, hex.EncodeToString(key[:]))
		}
	}
	g.CipherSHA256 = hex.EncodeToString(h.Sum(nil))

	// --- wire frames -----------------------------------------------------
	frame := func(name string, write func(w *bytes.Buffer) error) {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g.Frames[name] = hex.EncodeToString(buf.Bytes())
	}
	chunkBytes := bytes.Repeat([]byte{0xC3, 0x11}, 300)
	frame("req_insert", func(w *bytes.Buffer) error {
		return wire.WriteRequest(w, 7, 1500, &wire.InsertChunk{UUID: "stream-a", Chunk: chunkBytes})
	})
	frame("req_batch", func(w *bytes.Buffer) error {
		return wire.WriteRequest(w, 8, 0, &wire.Batch{Reqs: []wire.Message{
			&wire.InsertChunk{UUID: "stream-a", Chunk: chunkBytes},
			&wire.StatRange{UUIDs: []string{"stream-a", "stream-b"}, Ts: 100, Te: 900, WindowChunks: 4},
		}})
	})
	frame("req_stat", func(w *bytes.Buffer) error {
		return wire.WriteRequest(w, 9, 250, &wire.StatRange{UUIDs: []string{"s"}, Ts: -5, Te: 5})
	})
	frame("resp_ok", func(w *bytes.Buffer) error {
		return wire.WriteResponse(w, 7, false, &wire.OK{})
	})
	frame("resp_stat_more", func(w *bytes.Buffer) error {
		return wire.WriteResponse(w, 9, true, &wire.StatRangeResp{
			FromChunk: 3, ToChunk: 11,
			Windows: [][]uint64{{1, 2, 3}, {0xFFFFFFFFFFFFFFFF, 0, 42}},
		})
	})
	frame("resp_err", func(w *bytes.Buffer) error {
		return wire.WriteResponse(w, 12, false, &wire.Error{Code: wire.CodeWrongShard, Aux: 4, Msg: "moved"})
	})

	// --- index node bytes ------------------------------------------------
	digest := func(i uint64, vlen int) []uint64 {
		vec := make([]uint64, vlen)
		for e := range vec {
			vec[e] = i*1000003 + uint64(e)*97 + 1
		}
		return vec
	}
	g.IndexSmall = indexDump(t, 4, 3, 130, digest, false)
	g.IndexDefaultSHA256 = hashDump(indexDump(t, 64, 19, 130, digest, false))

	// --- cover tokens ----------------------------------------------------
	for _, r := range [][2]uint64{{0, 0}, {5, 1000}, {123456, 999999}} {
		tokens, err := tree.Cover(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		for _, tk := range tokens {
			b, _ := tk.MarshalBinary()
			g.CoverTokens = append(g.CoverTokens, hex.EncodeToString(b))
		}
	}
	return g
}

// indexDump appends n deterministic digests to a fresh tree and returns the
// full key -> hex(value) store dump. useBatch routes the appends through
// AppendBatch in irregular group sizes (exercising group/ancestor folding);
// the resulting bytes must match the sequential-Append golden exactly.
func indexDump(t *testing.T, fanout, vlen int, n uint64, digest func(uint64, int) []uint64, useBatch bool) map[string]string {
	t.Helper()
	store := kv.NewMemStore()
	tree, err := index.Open(store, "golden", index.Config{Fanout: fanout, VectorLen: vlen})
	if err != nil {
		t.Fatal(err)
	}
	if useBatch {
		sizes := []int{1, 2, 3, 5, 7, 64, 13, 1, 100}
		pos := uint64(0)
		si := 0
		for pos < n {
			sz := uint64(sizes[si%len(sizes)])
			si++
			if pos+sz > n {
				sz = n - pos
			}
			batch := make([][]uint64, sz)
			for i := range batch {
				batch[i] = digest(pos+uint64(i), vlen)
			}
			if err := tree.AppendBatch(pos, batch); err != nil {
				t.Fatal(err)
			}
			pos += sz
		}
	} else {
		for i := uint64(0); i < n; i++ {
			if err := tree.Append(i, digest(i, vlen)); err != nil {
				t.Fatal(err)
			}
		}
	}
	dump := map[string]string{}
	err = store.Scan("", func(key string, value []byte) bool {
		dump[key] = hex.EncodeToString(value)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return dump
}

func hashDump(dump map[string]string) string {
	keys := make([]string, 0, len(dump))
	for k := range dump {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s\n", k, dump[k])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestHotPathGoldenParity proves the optimized hot path produces the exact
// bytes the seed implementation did: same PRG expansions, subkeys, HEAC
// ciphertexts, chunk keys, wire frames, index nodes, and cover tokens.
func TestHotPathGoldenParity(t *testing.T) {
	if os.Getenv("TIMECRYPT_UPDATE_GOLDEN") == "1" {
		g := computeGolden(t)
		data, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (run with TIMECRYPT_UPDATE_GOLDEN=1 to capture): %v", err)
	}
	var want hotpathGolden
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	got := computeGolden(t)

	wantJSON, _ := json.MarshalIndent(&want, "", "  ")
	gotJSON, _ := json.MarshalIndent(got, "", "  ")
	if !bytes.Equal(wantJSON, gotJSON) {
		diffGolden(t, &want, got)
	}

	// AppendBatch must fold digests into the exact node bytes the
	// sequential seed-era Append produced, for arbitrary batch sizes.
	digest := func(i uint64, vlen int) []uint64 {
		vec := make([]uint64, vlen)
		for e := range vec {
			vec[e] = i*1000003 + uint64(e)*97 + 1
		}
		return vec
	}
	batchSmall := indexDump(t, 4, 3, 130, digest, true)
	if h, wantH := hashDump(batchSmall), hashDump(want.IndexSmall); h != wantH {
		t.Errorf("AppendBatch fanout-4 store dump diverged from sequential Append golden")
	}
	if h := hashDump(indexDump(t, 64, 19, 130, digest, true)); h != want.IndexDefaultSHA256 {
		t.Errorf("AppendBatch fanout-64 store dump diverged from sequential Append golden")
	}
}

// diffGolden reports which golden section diverged (a full JSON diff would
// be unreadable).
func diffGolden(t *testing.T, want, got *hotpathGolden) {
	t.Helper()
	section := func(name string, w, g any) {
		wj, _ := json.Marshal(w)
		gj, _ := json.Marshal(g)
		if !bytes.Equal(wj, gj) {
			t.Errorf("golden section %q diverged:\n  want %.200s\n  got  %.200s", name, wj, gj)
		}
	}
	section("prg", want.PRG, got.PRG)
	section("subkeys", want.SubKeys, got.SubKeys)
	section("subkeys_at", want.SubKeysAt, got.SubKeysAt)
	section("cipher_first", want.CipherFirst, got.CipherFirst)
	section("cipher_sha256", want.CipherSHA256, got.CipherSHA256)
	section("chunk_keys", want.ChunkKeys, got.ChunkKeys)
	section("frames", want.Frames, got.Frames)
	section("index_small", want.IndexSmall, got.IndexSmall)
	section("index_default_sha256", want.IndexDefaultSHA256, got.IndexDefaultSHA256)
	section("cover_tokens", want.CoverTokens, got.CoverTokens)
}
