// Package timecrypt is the public API of this TimeCrypt reproduction: an
// encrypted time series data store with additively homomorphic encryption
// (HEAC) and cryptographic access control (NSDI 2020).
//
// The package re-exports the client and server engines behind stable
// names. The API is context-first: every operation that reaches the server
// takes a context.Context, whose deadline rides the wire to the server so
// abandoned work is aborted engine-side. A minimal end-to-end flow:
//
//	ctx := context.Background()
//	store := timecrypt.NewMemStore()
//	engine, _ := timecrypt.NewEngine(store, timecrypt.EngineConfig{})
//	owner := timecrypt.NewOwner(timecrypt.NewInProcTransport(engine))
//	s, _ := owner.CreateStream(ctx, timecrypt.StreamOptions{
//		UUID: "heart-rate", Epoch: epochMS, Interval: 10_000,
//	})
//	_ = s.Append(ctx, timecrypt.Point{TS: epochMS, Val: 72})
//	res, _ := s.StatRange(ctx, epochMS, epochMS+3_600_000)
//
// High-throughput producers ingest through the pipelined writer, which
// seals chunks ahead of server acknowledgements and ships them in batch
// envelopes (one round trip per WriterOptions.BatchChunks chunks):
//
//	w, _ := s.Writer(ctx, timecrypt.WriterOptions{})
//	for _, p := range points {
//		_ = w.Append(p)
//	}
//	err := w.Close() // collected ingest errors surface here
//
// Series reads page lazily through a query cursor instead of materializing
// the whole window slice:
//
//	it := s.Query().Range(ts, te).Window(6).Iter(ctx)
//	for it.Next() {
//		use(it.Result())
//	}
//	err = it.Err()
//
// Query plans aggregate across streams server-side — ciphertexts are
// additively combinable, so "average over all patients" is one round trip
// per page, not one per stream — and typed statistic selectors project the
// response down to exactly the digest elements the selection needs:
//
//	it := a.Query().Streams(b, c).Range(ts, te).Window(6).Stats(timecrypt.Sum, timecrypt.Mean).Iter(ctx)
//	for it.Next() {
//		agg := it.Agg()
//		use(agg.Mean())
//	}
//
// Decryption requires key material for every member stream (ownership or
// grants at a compatible resolution): the combined result is encrypted
// under the sum of the members' keystreams.
//
// Sharing: generate a consumer key pair, then s.Grant(pub, from, to,
// factor) — factor 0 grants full resolution, factor f >= 2 restricts the
// principal to f-chunk aggregates, enforced by encryption rather than
// server policy (see the package docs of internal/core for the scheme).
package timecrypt

import (
	"context"
	"net"

	"repro/internal/chunk"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/crypto/hybrid"
	"repro/internal/kv"
	"repro/internal/server"
)

// Re-exported data types.
type (
	// Point is one time series record (Unix-ms timestamp, integer value).
	Point = chunk.Point
	// DigestSpec selects the per-chunk statistics a stream supports.
	DigestSpec = chunk.DigestSpec
	// Compression selects the chunk payload codec.
	Compression = chunk.Compression
	// Result is a decrypted statistical answer.
	Result = chunk.Result
	// FitResult is a privately fitted linear model (LinFit digests).
	FitResult = chunk.FitResult
	// FixedPoint scales float readings onto HEAC's integer domain.
	FixedPoint = chunk.FixedPoint
	// StatResult is a Result with its time extent.
	StatResult = client.StatResult
	// StreamOptions configures stream creation.
	StreamOptions = client.StreamOptions
	// Owner is the data-owner/producer client.
	Owner = client.Owner
	// OwnerStream is an owned stream handle (ingest, grants, queries).
	OwnerStream = client.OwnerStream
	// Consumer is a data-consumer client (principal).
	Consumer = client.Consumer
	// ConsumerStream is a principal's view of a granted stream.
	ConsumerStream = client.ConsumerStream
	// KeyPair is a principal identity key.
	KeyPair = hybrid.KeyPair
	// Transport carries protocol messages to a server.
	Transport = client.Transport
	// Writer is the asynchronous pipelined ingest path of a stream.
	Writer = client.Writer
	// WriterOptions tunes a pipelined ingest writer.
	WriterOptions = client.WriterOptions
	// QueryBuilder assembles a statistical query plan fluently.
	QueryBuilder = client.QueryBuilder
	// Cursor pages a windowed statistical query lazily (server-pushed
	// pages on a multiplexed transport).
	Cursor = client.Cursor
	// Stat is a typed statistic selector for query plans.
	Stat = client.Stat
	// StatSet is a bitmask of selected statistics.
	StatSet = chunk.StatSet
	// Agg is one decrypted window of a typed query plan (combined across
	// member streams, carrying only the selected statistics).
	Agg = client.Agg
	// Queryable is any stream handle a query plan can aggregate over
	// (OwnerStream, ConsumerStream).
	Queryable = client.Queryable
	// Subscription iterates the live deltas of a subscribed query plan:
	// the server maintains the encrypted window aggregate and pushes one
	// delta per completed window (Query().Window(n).Subscribe(ctx)).
	Subscription = client.Subscription
	// Delta is one live update of a subscribed plan: the decrypted
	// combined aggregate of one completed window.
	Delta = client.Delta
	// Session is one multiplexed connection: concurrent in-flight calls
	// with correlation IDs, out-of-order completion, streamed responses.
	Session = client.Session
	// SessionOptions tunes a session (in-flight window).
	SessionOptions = client.SessionOptions
	// Call is an awaitable in-flight request on a Session.
	Call = client.Call
	// Engine is the untrusted server engine.
	Engine = server.Engine
	// EngineConfig parameterizes the server engine.
	EngineConfig = server.Config
	// Handler is the transport-independent server contract (an Engine or
	// a Router).
	Handler = server.Handler
	// Server is the TCP front end.
	Server = server.Server
	// Router shards one logical service across several engines.
	Router = cluster.Router
	// Shard names one engine shard behind a Router.
	Shard = cluster.Shard
	// RouterOptions tunes Router construction.
	RouterOptions = cluster.Options
	// Topology is the Router's versioned ring membership; Router.Rebalance
	// changes it online, migrating the affected streams while serving.
	Topology = cluster.Topology
	// RebalanceReport summarizes a completed membership change.
	RebalanceReport = cluster.RebalanceReport
	// Store is the key-value storage contract.
	Store = kv.Store
	// PRGKind selects the key-tree PRG construction.
	PRGKind = core.PRGKind
)

// Compression codecs.
const (
	CompressionZlib = chunk.CompressionZlib
	CompressionNone = chunk.CompressionNone
)

// Typed statistic selectors for Query().Stats(...): the plan fetches (and
// decrypts) only the digest elements the selection needs.
const (
	Sum   = client.Sum
	Count = client.Count
	Mean  = client.Mean
	Var   = client.Var
	Stdev = client.Stdev
	Hist  = client.Hist
)

// Key-tree PRG constructions (see Fig. 6 of the paper for the trade-off).
const (
	PRGAES    = core.PRGAES
	PRGSHA256 = core.PRGSHA256
	PRGHMAC   = core.PRGHMAC
)

// NewMemStore returns the in-memory KV store (the Cassandra substitute).
func NewMemStore() *kv.MemStore { return kv.NewMemStore() }

// NewEngine creates a server engine over a store.
func NewEngine(store Store, cfg EngineConfig) (*Engine, error) { return server.New(store, cfg) }

// NewTCPServer wraps a handler (an engine or a router) in the TCP front
// end; logf may be nil.
func NewTCPServer(h Handler, logf func(string, ...any)) *Server {
	return server.NewServer(h, logf)
}

// NewRouter shards one logical service across the given engine shards by
// consistent hashing on stream UUIDs.
func NewRouter(shards []Shard, opts RouterOptions) (*Router, error) {
	return cluster.NewRouter(shards, opts)
}

// NewTCPShard dials a remote engine as a routable shard over one
// multiplexed connection; inflight bounds its concurrent requests (<= 0 =
// default).
func NewTCPShard(name, addr string, inflight int) (Shard, error) {
	return cluster.NewTCPShard(name, addr, inflight)
}

// NewPrefixStore partitions a store under a key prefix, so several engine
// shards can share one backing store.
func NewPrefixStore(base Store, prefix string) Store { return kv.NewPrefixStore(base, prefix) }

// ServeTCP runs a server on the listener until ctx is cancelled.
func ServeTCP(ctx context.Context, srv *Server, lis net.Listener) error {
	return srv.Serve(ctx, lis)
}

// NewInProcTransport connects a client directly to a handler (an engine or
// a router) in the same process (still exercising the wire codec).
func NewInProcTransport(h Handler) Transport { return &client.InProc{Engine: h} }

// DialTCP connects a client transport to a remote server: one multiplexed
// connection carrying concurrent requests (redialed transparently if it
// breaks).
func DialTCP(addr string) (Transport, error) { return client.DialTCP(addr) }

// DialSession connects a raw multiplexed session for callers that want
// the asynchronous Do/Stream API rather than blocking round trips.
func DialSession(addr string, opts SessionOptions) (*Session, error) {
	return client.DialSession(addr, opts)
}

// NewOwner creates a data-owner client over a transport.
func NewOwner(t Transport) *Owner { return client.NewOwner(t) }

// NewConsumer creates a data-consumer client with its identity key pair.
func NewConsumer(t Transport, kp *KeyPair) *Consumer { return client.NewConsumer(t, kp) }

// GenerateKeyPair creates a principal identity key pair.
func GenerateKeyPair() (*KeyPair, error) { return hybrid.GenerateKeyPair() }

// DefaultSpec returns the digest configuration supporting the paper's
// default query set (sum, count, mean, var, freq, min/max).
func DefaultSpec() DigestSpec { return chunk.DefaultSpec() }

// SumOnlySpec returns the single-statistic digest used in microbenchmarks.
func SumOnlySpec() DigestSpec { return chunk.SumOnlySpec() }

// PrincipalID derives the server-side identity string for a public key.
func PrincipalID(pub []byte) string { return client.PrincipalID(pub) }
