// Population analytics: TimeCrypt's flagship cross-stream workload —
// "average heart rate over all patients" — computed server-side over a
// sharded cluster without the server ever decrypting anything. Each
// patient owns a stream under their own keys; a typed query plan asks the
// cluster for the combined aggregate in ONE round trip per page, the
// shards sum their own members' ciphertext digests, the router sums the
// shard partials, and the analyst (holding grants on every member stream)
// peels each patient's keystream in turn — because the keystream of a sum
// of streams is the sum of their keystreams.
package main

import (
	"context"
	"fmt"
	"log"

	timecrypt "repro"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()

	// A 4-shard cluster in one process: each shard is its own engine over
	// its own store partition; the router places streams by consistent
	// hashing and is served through the same Transport contract.
	store := timecrypt.NewMemStore()
	var shards []timecrypt.Shard
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("shard-%d", i)
		engine, err := timecrypt.NewEngine(timecrypt.NewPrefixStore(store, name+"/"), timecrypt.EngineConfig{})
		if err != nil {
			log.Fatal(err)
		}
		shards = append(shards, timecrypt.Shard{Name: name, Handler: engine})
	}
	router, err := timecrypt.NewRouter(shards, timecrypt.RouterOptions{})
	if err != nil {
		log.Fatal(err)
	}
	tr := timecrypt.NewInProcTransport(router)

	// --- Patients (data owners + producers) ---------------------------
	epoch := int64(1_700_000_000_000)
	const interval = 10_000 // Δ = 10 s
	const patients = 8
	const chunks = 360 // one hour of data each
	analystKey, err := timecrypt.GenerateKeyPair()
	if err != nil {
		log.Fatal(err)
	}
	streams := make([]*timecrypt.OwnerStream, patients)
	owner := timecrypt.NewOwner(tr)
	for p := range streams {
		s, err := owner.CreateStream(ctx, timecrypt.StreamOptions{
			UUID:     fmt.Sprintf("patient-%d/heart-rate", p),
			Epoch:    epoch,
			Interval: interval,
			Spec:     timecrypt.DigestSpec{Sum: true, Count: true, SumSq: true},
			Meta:     "heart rate, medical wearable",
		})
		if err != nil {
			log.Fatal(err)
		}
		gen := workload.NewMHealth(uint64(p))
		for c := uint64(0); c < chunks; c++ {
			if err := s.AppendChunk(ctx, gen.Chunk(c, epoch, interval)); err != nil {
				log.Fatal(err)
			}
		}
		// Every patient grants the analyst their full-resolution range;
		// the grant rides the server key store as an opaque sealed blob.
		te := epoch + chunks*interval
		if _, err := s.Grant(ctx, analystKey.PublicBytes(), epoch, te, 0); err != nil {
			log.Fatal(err)
		}
		streams[p] = s
	}
	te := epoch + chunks*interval

	// --- The analyst (consumer with grants on every stream) -----------
	analyst := timecrypt.NewConsumer(tr, analystKey)
	views := make([]*timecrypt.ConsumerStream, patients)
	for p := range views {
		cs, err := analyst.OpenStream(ctx, fmt.Sprintf("patient-%d/heart-rate", p))
		if err != nil {
			log.Fatal(err)
		}
		views[p] = cs
	}

	// One typed plan: per-minute mean and variability across the whole
	// population, selected statistics only. A single request per page
	// carries all 8 patients; the shards combine ciphertexts before
	// answering.
	members := make([]timecrypt.Queryable, 0, patients-1)
	for _, cs := range views[1:] {
		members = append(members, cs)
	}
	const minute = 6 // 6 chunks = 60 s
	it := views[0].Query().Streams(members...).
		Range(epoch, te).Window(minute).
		Stats(timecrypt.Mean, timecrypt.Stdev).
		Iter(ctx)
	fmt.Println("population heart rate, per minute (server-side aggregate over 8 patients):")
	shown := 0
	for it.Next() {
		agg := it.Agg()
		if shown < 5 {
			fmt.Printf("  minute %2d: mean=%6.2f bpm  stdev=%5.2f  (n=%d samples, %d streams)\n",
				shown, agg.Mean(), agg.Stdev(), agg.Count(), agg.StreamCount)
		}
		shown++
	}
	if err := it.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ... %d minutes total\n\n", shown)

	// The whole hour as one scalar — a single round trip.
	aggs, err := views[0].Query().Streams(members...).Range(epoch, te).
		Stats(timecrypt.Mean, timecrypt.Count).Aggs(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hourly population mean: %.2f bpm over %d samples from %d streams\n",
		aggs[0].Mean(), aggs[0].Count(), aggs[0].StreamCount)

	// Per-shard accounting shows the fan-out really crossed the cluster.
	fmt.Println("\nshard traffic (requests directly routed / fan-out sub-requests):")
	for _, st := range router.Stats() {
		fmt.Printf("  %s: %d routed, %d fan-out\n", st.Name, st.Requests, st.Fanouts)
	}
}
