// Multiplex: the wire protocol v3 transport in action. One TCP connection
// carries many concurrent requests — each frame tagged with a correlation
// ID, responses completing out of order — so a slow analytical query never
// blocks fast ingest sharing the socket, writer batches overlap instead of
// waiting turn by turn, and a windowed query cursor receives its pages as
// a server-pushed stream.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	timecrypt "repro"
)

func main() {
	ctx := context.Background()

	// Untrusted side: engine behind a real TCP front end on localhost.
	engine, err := timecrypt.NewEngine(timecrypt.NewMemStore(), timecrypt.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	srv := timecrypt.NewTCPServer(engine, func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go timecrypt.ServeTCP(ctx, srv, lis)
	defer srv.Close()

	// Trusted side: ONE multiplexed connection for everything below.
	tr, err := timecrypt.DialTCP(lis.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()
	owner := timecrypt.NewOwner(tr)

	epoch := time.Now().Add(-24 * time.Hour).UnixMilli()
	stream, err := owner.CreateStream(ctx, timecrypt.StreamOptions{
		UUID:     "sensor/温度-0",
		Epoch:    epoch,
		Interval: 10_000,
		Meta:     "demo stream for the multiplexed transport",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Pipelined ingest: on a multiplexed transport the writer issues up
	// to MaxInFlight batch envelopes before the first acknowledgement
	// returns — submission order still fixes the chunk order, because the
	// server schedules same-stream work in arrival order.
	start := time.Now()
	w, err := stream.Writer(ctx, timecrypt.WriterOptions{BatchChunks: 32, MaxInFlight: 8})
	if err != nil {
		log.Fatal(err)
	}
	const chunks = 2000
	for c := 0; c < chunks; c++ {
		ts := epoch + int64(c)*10_000
		if err := w.AppendChunk([]timecrypt.Point{{TS: ts, Val: int64(20 + c%7)}, {TS: ts + 5000, Val: int64(21 + c%5)}}); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d chunks over one pipelined connection in %v\n", chunks, time.Since(start).Round(time.Millisecond))

	// Concurrent queries on the same connection: a whole-day scan and a
	// point lookup issued together; the lookup's response overtakes the
	// scan's (out-of-order completion, matched by correlation ID).
	type answer struct {
		what string
		res  timecrypt.StatResult
		err  error
	}
	answers := make(chan answer, 2)
	go func() {
		res, err := stream.StatRange(ctx, epoch, epoch+chunks*10_000)
		answers <- answer{"full-day scan", res, err}
	}()
	go func() {
		res, err := stream.StatRange(ctx, epoch, epoch+60_000)
		answers <- answer{"first-minute lookup", res, err}
	}()
	for i := 0; i < 2; i++ {
		a := <-answers
		if a.err != nil {
			log.Fatal(a.err)
		}
		fmt.Printf("%-19s -> count=%d mean=%.1f\n", a.what, a.res.Count, a.res.Mean)
	}

	// Streamed cursor: the server pushes successive hourly windows tagged
	// with the cursor's correlation ID — no request/response turnaround
	// between pages.
	it := stream.Query().Range(epoch, epoch+chunks*10_000).Window(360).Iter(ctx)
	defer it.Close()
	hours := 0
	for it.Next() {
		hours++
	}
	if err := it.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d hourly windows over the same connection\n", hours)
}
