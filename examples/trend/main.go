// Trend: private linear-model fitting (paper §4.5's extension hook for
// "private training of linear machine learning models"). A weight scale
// streams fixed-point readings; the clinic — without ever seeing a single
// measurement — fits a weight-change trend line from one decrypted vector
// of aggregation-based accumulators.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	timecrypt "repro"
)

func main() {
	ctx := context.Background()
	engine, err := timecrypt.NewEngine(timecrypt.NewMemStore(), timecrypt.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	tr := timecrypt.NewInProcTransport(engine)
	owner := timecrypt.NewOwner(tr)

	epoch := int64(1_700_000_000_000)
	const day = int64(86_400_000)
	fp := timecrypt.FixedPoint{Digits: 2} // 0.01 kg precision
	spec := timecrypt.DigestSpec{
		Sum: true, Count: true, SumSq: true,
		LinFit:        true,
		LinTimeOrigin: epoch,
		LinTimeUnit:   day, // model time unit: days
	}
	stream, err := owner.CreateStream(ctx, timecrypt.StreamOptions{
		UUID:     "scale/weight",
		Epoch:    epoch,
		Interval: day, // one chunk per day
		Spec:     spec,
		Meta:     "body weight, kg x100",
	})
	if err != nil {
		log.Fatal(err)
	}

	// 90 days of daily weigh-ins: true trend −0.05 kg/day around 82 kg,
	// with noise.
	r := rand.New(rand.NewPCG(1, 2))
	for d := 0; d < 90; d++ {
		w := 82.0 - 0.05*float64(d) + (r.Float64()-0.5)*0.8
		pt := timecrypt.Point{TS: epoch + int64(d)*day, Val: fp.Encode(w)}
		if err := stream.AppendChunk(ctx, []timecrypt.Point{pt}); err != nil {
			log.Fatal(err)
		}
	}

	// The clinic gets a full-resolution grant for the quarter.
	clinicKey, _ := timecrypt.GenerateKeyPair()
	if _, err := stream.Grant(ctx, clinicKey.PublicBytes(), epoch, epoch+90*day, 0); err != nil {
		log.Fatal(err)
	}
	clinic, err := timecrypt.NewConsumer(tr, clinicKey).OpenStream(ctx, "scale/weight")
	if err != nil {
		log.Fatal(err)
	}

	fit, err := clinic.FitRange(ctx, epoch, epoch+90*day)
	if err != nil {
		log.Fatal(err)
	}
	if !fit.OK {
		log.Fatal("fit not solvable")
	}
	fmt.Printf("clinic's private fit over %d weigh-ins:\n", fit.N)
	fmt.Printf("  trend:    %+.3f kg/day (ground truth -0.050)\n", fp.DecodeMean(fit.Slope))
	fmt.Printf("  baseline: %.1f kg     (ground truth ~82)\n", fp.DecodeMean(fit.Intercept))

	// Classic statistics come from the same digest.
	res, err := clinic.StatRange(ctx, epoch, epoch+90*day)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  quarter mean %.1f kg, stdev %.2f kg\n",
		fp.DecodeMean(res.Mean), fp.DecodeStdev(res.Stdev))

	// Month-over-month trend comparison, still without raw data.
	for m := 0; m < 3; m++ {
		f, err := clinic.FitRange(ctx, epoch+int64(m)*30*day, epoch+int64(m+1)*30*day)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  month %d trend: %+.3f kg/day over %d points\n",
			m+1, fp.DecodeMean(f.Slope), f.N)
	}
	fmt.Println("\n(server stored and aggregated only uint64 ciphertexts throughout)")
}
