// mHealth: the paper's motivating scenario. Alice's wearable streams heart
// rate data; she shares per-minute aggregates with her trainer but only
// hourly aggregates with her insurer — enforced by encryption, not server
// policy. The insurer cryptographically cannot read anything finer than an
// hour, and neither principal can read raw records.
package main

import (
	"context"
	"fmt"
	"log"

	timecrypt "repro"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	engine, err := timecrypt.NewEngine(timecrypt.NewMemStore(), timecrypt.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	tr := timecrypt.NewInProcTransport(engine)

	// --- Alice (data owner + producer) --------------------------------
	alice := timecrypt.NewOwner(tr)
	epoch := int64(1_700_000_000_000)
	const interval = 10_000 // Δ = 10 s
	stream, err := alice.CreateStream(ctx, timecrypt.StreamOptions{
		UUID:     "alice/heart-rate",
		Epoch:    epoch,
		Interval: interval,
		Spec: timecrypt.DigestSpec{
			Sum: true, Count: true, SumSq: true,
			HistBounds: []int64{40, 60, 80, 100, 120, 140, 160, 180, 200},
		},
		Meta: "heart rate, medical wearable, 50 Hz",
	})
	if err != nil {
		log.Fatal(err)
	}
	// Resolutions Alice intends to share at: per-minute (6 chunks) and
	// per-hour (360 chunks).
	const minute, hour = 6, 360
	if err := stream.EnableResolution(ctx, minute); err != nil {
		log.Fatal(err)
	}
	if err := stream.EnableResolution(ctx, hour); err != nil {
		log.Fatal(err)
	}

	// Stream 4 hours of wearable data (50 Hz => 500 records per chunk).
	gen := workload.NewMHealth(7)
	chunks := 4 * hour
	w, err := stream.Writer(ctx, timecrypt.WriterOptions{BatchChunks: 32})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < chunks; i++ {
		if err := w.AppendChunk(gen.Chunk(uint64(i), epoch, interval)); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Alice ingested %d chunks (%d records), all encrypted end-to-end\n",
		chunks, chunks*gen.PointsPerChunk())

	// --- Grants --------------------------------------------------------
	trainerKey, _ := timecrypt.GenerateKeyPair()
	insurerKey, _ := timecrypt.GenerateKeyPair()
	end := epoch + int64(chunks)*interval
	if _, err := stream.Grant(ctx, trainerKey.PublicBytes(), epoch, end, minute); err != nil {
		log.Fatal(err)
	}
	if _, err := stream.Grant(ctx, insurerKey.PublicBytes(), epoch, end, hour); err != nil {
		log.Fatal(err)
	}

	// --- Trainer: per-minute view --------------------------------------
	trainer, err := timecrypt.NewConsumer(tr, trainerKey).OpenStream(ctx, "alice/heart-rate")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTrainer (minute resolution) — first 30 minutes via cursor:")
	it := trainer.Query().Range(epoch, epoch+30*60_000).Window(minute).Iter(ctx)
	for i := 0; it.Next(); i++ {
		if i%10 == 0 {
			w := it.Result()
			fmt.Printf("  minute %2d: mean=%.1f bpm, max∈[%d,%d)\n", i, w.Mean, w.MaxLo, w.MaxHi)
		}
	}
	if err := it.Err(); err != nil {
		log.Fatal(err)
	}
	// The trainer cannot see chunk-level (10 s) data or raw records.
	if _, err := trainer.StatSeries(ctx, epoch, end, 1); err != nil {
		fmt.Println("  chunk-level data: DENIED (crypto-enforced) ✓")
	}
	if _, err := trainer.Points(ctx, epoch, epoch+interval); err != nil {
		fmt.Println("  raw records:      DENIED (crypto-enforced) ✓")
	}

	// --- Insurer: hourly view only --------------------------------------
	insurer, err := timecrypt.NewConsumer(tr, insurerKey).OpenStream(ctx, "alice/heart-rate")
	if err != nil {
		log.Fatal(err)
	}
	hours, err := insurer.StatSeries(ctx, epoch, end, hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nInsurer (hour resolution):")
	for i, w := range hours {
		fmt.Printf("  hour %d: mean=%.1f bpm over %d samples\n", i, w.Mean, w.Count)
	}
	// Per-minute data is cryptographically out of the insurer's reach,
	// even though the server would happily compute it.
	if _, err := insurer.StatSeries(ctx, epoch, end, minute); err != nil {
		fmt.Println("  minute-level data: DENIED (crypto-enforced) ✓")
	}

	// --- Alice keeps full access ----------------------------------------
	res, err := stream.StatRange(ctx, epoch, end)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAlice (owner): 4-hour mean %.1f bpm across %d records\n", res.Mean, res.Count)
}
