// DevOps: the paper's data-center monitoring scenario. An operator runs
// encrypted CPU-utilization streams for a fleet of hosts; a tenant is
// granted access to the hosts running her job and computes fleet-wide
// statistics with inter-stream queries — the server aggregates across
// streams without ever seeing a plaintext sample.
package main

import (
	"context"
	"fmt"
	"log"

	timecrypt "repro"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	engine, err := timecrypt.NewEngine(timecrypt.NewMemStore(), timecrypt.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	tr := timecrypt.NewInProcTransport(engine)
	operator := timecrypt.NewOwner(tr)

	epoch := int64(1_700_000_000_000)
	const interval = 60_000 // 1-minute chunks, 10 s samples (paper §6.3)
	const hosts = 8
	const chunks = 16 * 60 // 16 hours, the paper's query horizon

	// CPU% histogram bins let consumers compute "fraction of time above
	// 50% utilization" without decrypting individual samples.
	spec := timecrypt.DigestSpec{
		Sum: true, Count: true,
		HistBounds: []int64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 101},
	}

	streams := make([]*timecrypt.OwnerStream, hosts)
	for h := range streams {
		s, err := operator.CreateStream(ctx, timecrypt.StreamOptions{
			UUID:     fmt.Sprintf("dc1/host%02d/cpu", h),
			Epoch:    epoch,
			Interval: interval,
			Spec:     spec,
			Meta:     "cpu utilization %",
		})
		if err != nil {
			log.Fatal(err)
		}
		streams[h] = s
		gen := workload.NewDevOps(uint64(h))
		w, err := s.Writer(ctx, timecrypt.WriterOptions{})
		if err != nil {
			log.Fatal(err)
		}
		for c := 0; c < chunks; c++ {
			if err := w.AppendChunk(gen.Chunk(uint64(c), epoch, interval)); err != nil {
				log.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("operator ingested %d hosts x %d chunks of encrypted CPU data\n", hosts, chunks)

	// Grant the tenant full resolution on her job's hosts for the job
	// duration (the paper: "share resource utilization levels with a
	// tenant but only for the duration of her job").
	tenantKey, _ := timecrypt.GenerateKeyPair()
	jobStart := epoch
	jobEnd := epoch + int64(chunks)*interval
	jobHosts := streams[:4]
	for _, s := range jobHosts {
		if _, err := s.Grant(ctx, tenantKey.PublicBytes(), jobStart, jobEnd, 0); err != nil {
			log.Fatal(err)
		}
	}

	tenant := timecrypt.NewConsumer(tr, tenantKey)
	views := make([]*timecrypt.ConsumerStream, len(jobHosts))
	for i, s := range jobHosts {
		v, err := tenant.OpenStream(ctx, s.UUID())
		if err != nil {
			log.Fatal(err)
		}
		views[i] = v
	}

	// Fleet-wide average over 16 h: one inter-stream query, summed
	// homomorphically by the server across the four hosts.
	res, err := tenant.StatMulti(ctx, views, jobStart, jobEnd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tenant fleet view: mean CPU %.1f%% over %d samples (4 hosts, 16 h)\n",
		res.Mean, res.Count)

	// Fraction of samples above 50% utilization from the histogram.
	var above, total uint64
	for b, c := range res.Hist {
		total += c
		if spec.HistBounds[b] >= 50 {
			above += c
		}
	}
	fmt.Printf("tenant fleet view: %.1f%% of samples above 50%% utilization\n",
		100*float64(above)/float64(total))

	// Per-host hourly series for one host.
	hourly, err := views[0].StatSeries(ctx, jobStart, jobStart+8*3_600_000, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("host00 hourly means (first 8 h):")
	for i, w := range hourly {
		fmt.Printf("  h%02d %.1f%%", i, w.Mean)
	}
	fmt.Println()

	// The tenant has no grant on the other hosts: the server would
	// answer, but the result is undecryptable.
	if _, err := tenant.OpenStream(ctx, streams[5].UUID()); err != nil {
		fmt.Println("host05 (not in job): ACCESS DENIED (no grant) ✓")
	}
}
