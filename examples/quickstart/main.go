// Quickstart: spin up an in-process TimeCrypt server, ingest encrypted
// records, and run statistical queries — the minimal end-to-end loop.
package main

import (
	"fmt"
	"log"
	"time"

	timecrypt "repro"
)

func main() {
	// The untrusted side: storage engine + server (sees only ciphertext).
	store := timecrypt.NewMemStore()
	engine, err := timecrypt.NewEngine(store, timecrypt.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// The trusted side: a data owner with fresh key material.
	owner := timecrypt.NewOwner(timecrypt.NewInProcTransport(engine))
	epoch := time.Now().Add(-time.Hour).UnixMilli()
	stream, err := owner.CreateStream(timecrypt.StreamOptions{
		UUID:     "heart-rate",
		Epoch:    epoch,
		Interval: 10_000, // 10 s chunks, like the paper's mhealth app
		Meta:     "bpm @ 1 Hz",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ingest one hour of per-second heart-rate records. Records are
	// batched into chunks, compressed, encrypted, and digested
	// client-side; the server builds its index over ciphertexts.
	for i := 0; i < 3600; i++ {
		ts := epoch + int64(i)*1000
		val := int64(65 + (i/60)%25) // slow drift
		if err := stream.Append(timecrypt.Point{TS: ts, Val: val}); err != nil {
			log.Fatal(err)
		}
	}
	if err := stream.Flush(); err != nil {
		log.Fatal(err)
	}

	// Statistical range query over the full hour — computed by the
	// server on encrypted data, decrypted with two keys client-side.
	res, err := stream.StatRange(epoch, epoch+3600_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hour summary: count=%d mean=%.1f bpm stdev=%.2f min∈[%d,%d) max∈[%d,%d)\n",
		res.Count, res.Mean, res.Stdev, res.MinLo, res.MinHi, res.MaxLo, res.MaxHi)

	// Per-minute series (6 chunks x 10 s = 1 min windows).
	series, err := stream.StatSeries(epoch, epoch+600_000, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("first 10 minutes:")
	for _, w := range series {
		fmt.Printf("  %s  mean=%.1f bpm\n",
			time.UnixMilli(w.Start).Format("15:04:05"), w.Mean)
	}

	// Raw record retrieval (owner holds full-resolution keys).
	pts, err := stream.Points(epoch, epoch+5000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first raw records: %v\n", pts)

	fmt.Printf("server-side state: %d keys, %d bytes — all ciphertext\n",
		store.Len(), store.SizeBytes())
}
