// Quickstart: spin up an in-process TimeCrypt server, ingest encrypted
// records through the pipelined writer, and run statistical queries
// through the lazy cursor — the minimal end-to-end loop of the
// context-first API.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	timecrypt "repro"
)

func main() {
	ctx := context.Background()

	// The untrusted side: storage engine + server (sees only ciphertext).
	store := timecrypt.NewMemStore()
	engine, err := timecrypt.NewEngine(store, timecrypt.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// The trusted side: a data owner with fresh key material.
	owner := timecrypt.NewOwner(timecrypt.NewInProcTransport(engine))
	epoch := time.Now().Add(-time.Hour).UnixMilli()
	stream, err := owner.CreateStream(ctx, timecrypt.StreamOptions{
		UUID:     "heart-rate",
		Epoch:    epoch,
		Interval: 10_000, // 10 s chunks, like the paper's mhealth app
		Meta:     "bpm @ 1 Hz",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ingest one hour of per-second heart-rate records through the
	// pipelined writer: records are batched into chunks, compressed,
	// encrypted, and digested client-side, then shipped in batch envelopes
	// (one round trip per 16 chunks by default) while the next chunks are
	// already being sealed. Ingest errors are collected and surface at
	// Close.
	w, err := stream.Writer(ctx, timecrypt.WriterOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3600; i++ {
		ts := epoch + int64(i)*1000
		val := int64(65 + (i/60)%25) // slow drift
		if err := w.Append(timecrypt.Point{TS: ts, Val: val}); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	if err := stream.Flush(ctx); err != nil { // seal the last partial chunk
		log.Fatal(err)
	}

	// Statistical range query over the full hour — computed by the
	// server on encrypted data, decrypted with two keys client-side.
	res, err := stream.StatRange(ctx, epoch, epoch+3600_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hour summary: count=%d mean=%.1f bpm stdev=%.2f min∈[%d,%d) max∈[%d,%d)\n",
		res.Count, res.Mean, res.Stdev, res.MinLo, res.MinHi, res.MaxLo, res.MaxHi)

	// Per-minute series (6 chunks x 10 s = 1 min windows) through the
	// query cursor, which pages windows from the server lazily instead of
	// materializing the whole slice.
	it := stream.Query().Range(epoch, epoch+600_000).Window(6).Iter(ctx)
	fmt.Println("first 10 minutes:")
	for it.Next() {
		w := it.Result()
		fmt.Printf("  %s  mean=%.1f bpm\n",
			time.UnixMilli(w.Start).Format("15:04:05"), w.Mean)
	}
	if err := it.Err(); err != nil {
		log.Fatal(err)
	}

	// Raw record retrieval (owner holds full-resolution keys).
	pts, err := stream.Points(ctx, epoch, epoch+5000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first raw records: %v\n", pts)

	fmt.Printf("server-side state: %d keys, %d bytes — all ciphertext\n",
		store.Len(), store.SizeBytes())
}
