// Dashboard: live subscriptions in action. One pipelined writer feeds a
// stream while three concurrent subscribers — each watching a different
// window resolution over the same multiplexed TCP connection — receive the
// server-pushed encrypted deltas and decrypt them into a rolling view. No
// subscriber ever polls: the server maintains the encrypted window
// aggregate homomorphically on ingest and pushes one delta per completed
// window (wire v5 Subscribe/SubEvent).
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	timecrypt "repro"
)

func main() {
	ctx := context.Background()

	// Untrusted side: engine behind a real TCP front end (subscriptions
	// need the multiplexed transport — the server pushes frames down the
	// subscription's correlation ID).
	engine, err := timecrypt.NewEngine(timecrypt.NewMemStore(), timecrypt.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	srv := timecrypt.NewTCPServer(engine, func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go timecrypt.ServeTCP(ctx, srv, lis)
	defer srv.Close()

	tr, err := timecrypt.DialTCP(lis.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()
	owner := timecrypt.NewOwner(tr)

	epoch := time.Now().Add(-time.Hour).UnixMilli()
	stream, err := owner.CreateStream(ctx, timecrypt.StreamOptions{
		UUID:     "plant/line-4/power",
		Epoch:    epoch,
		Interval: 10_000, // 10 s chunks
		Meta:     "watts, live dashboard demo",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Three dashboard panels subscribe before any data exists, each at its
	// own resolution. FromWindow(0) asks for full backfill; a real panel
	// that only cares about "now" would omit it and tail from the frontier.
	const chunks = 36 // 6 minutes of 10 s chunks
	panels := []struct {
		name    string
		wc      uint64 // chunks per window
		stats   []timecrypt.Stat
		deltas  int
		display func(d timecrypt.Delta) string
	}{
		{"30s-mean", 3, []timecrypt.Stat{timecrypt.Sum, timecrypt.Mean}, chunks / 3,
			func(d timecrypt.Delta) string { return fmt.Sprintf("mean=%.1f W", d.Agg.Mean()) }},
		{"1min-load", 6, []timecrypt.Stat{timecrypt.Sum, timecrypt.Count}, chunks / 6,
			func(d timecrypt.Delta) string {
				return fmt.Sprintf("sum=%d W·s over %d readings", d.Agg.Sum(), d.Agg.Count())
			}},
		{"2min-spread", 12, []timecrypt.Stat{timecrypt.Mean, timecrypt.Stdev}, chunks / 12,
			func(d timecrypt.Delta) string {
				return fmt.Sprintf("mean=%.1f stdev=%.2f", d.Agg.Mean(), d.Agg.Stdev())
			}},
	}

	var wg sync.WaitGroup
	var outMu sync.Mutex // interleave whole lines, not runes
	for _, p := range panels {
		sub, err := stream.Query().Window(p.wc).Stats(p.stats...).FromWindow(0).Subscribe(ctx)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sub.Close()
			for got := 0; got < p.deltas; got++ {
				if !sub.Next() {
					log.Fatalf("panel %s: subscription ended early: %v", p.name, sub.Err())
				}
				d := sub.Delta()
				outMu.Lock()
				fmt.Printf("[%-10s] window %2d @ %s  %s\n", p.name, d.Seq,
					time.UnixMilli(d.Agg.Start).Format("15:04:05"), p.display(d))
				outMu.Unlock()
			}
		}()
	}

	// The single writer: pipelined ingest on the same connection the three
	// subscriptions ride. Every sealed chunk updates the server's encrypted
	// window aggregates; completed windows push out to the panels while
	// later batches are still in flight.
	w, err := stream.Writer(ctx, timecrypt.WriterOptions{BatchChunks: 4, MaxInFlight: 4})
	if err != nil {
		log.Fatal(err)
	}
	for c := 0; c < chunks; c++ {
		ts := epoch + int64(c)*10_000
		load := int64(400 + 50*(c%5)) // a bumpy load curve
		if err := w.AppendChunk([]timecrypt.Point{
			{TS: ts, Val: load}, {TS: ts + 5_000, Val: load + 10},
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	wg.Wait()
	fmt.Println("all panels drained: one writer, three live views, zero polls")
}
