// Sharing lifecycle: open-ended subscriptions, grant extension, and
// revocation with forward secrecy — the owner simply stops extending a
// revoked subscription, so keys for post-revocation data are never issued
// (paper §3.3, Table 1 #9/#10).
package main

import (
	"context"
	"fmt"
	"log"

	timecrypt "repro"
)

func ingestDay(ctx context.Context, s *timecrypt.OwnerStream, epoch int64, day int) error {
	const interval = 10_000
	const chunksPerDay = 24 // toy "day" of 24 chunks
	for c := 0; c < chunksPerDay; c++ {
		idx := int64(day*chunksPerDay + c)
		start := epoch + idx*interval
		pts := []timecrypt.Point{
			{TS: start, Val: 70 + idx%10},
			{TS: start + 5000, Val: 72 + idx%10},
		}
		if err := s.AppendChunk(ctx, pts); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	ctx := context.Background()
	engine, err := timecrypt.NewEngine(timecrypt.NewMemStore(), timecrypt.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	tr := timecrypt.NewInProcTransport(engine)
	owner := timecrypt.NewOwner(tr)

	epoch := int64(1_700_000_000_000)
	const interval = 10_000
	const dayMS = 24 * interval
	stream, err := owner.CreateStream(ctx, timecrypt.StreamOptions{
		UUID: "sensor", Epoch: epoch, Interval: interval,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Day 0 of data, then an open-ended subscription for a physician.
	if err := ingestDay(ctx, stream, epoch, 0); err != nil {
		log.Fatal(err)
	}
	physKey, _ := timecrypt.GenerateKeyPair()
	grantID, err := stream.GrantOpen(ctx, physKey.PublicBytes(), epoch, 0)
	if err != nil {
		log.Fatal(err)
	}
	physician := timecrypt.NewConsumer(tr, physKey)

	check := func(label string, fromDay, toDay int) {
		view, err := physician.OpenStream(ctx, "sensor")
		if err != nil {
			fmt.Printf("%s: no usable grants (%v)\n", label, err)
			return
		}
		ts := epoch + int64(fromDay)*dayMS
		te := epoch + int64(toDay)*dayMS
		if res, err := view.StatRange(ctx, ts, te); err == nil {
			fmt.Printf("%s: days %d..%d readable, mean=%.1f ✓\n", label, fromDay, toDay-1, res.Mean)
		} else {
			fmt.Printf("%s: days %d..%d NOT decryptable ✗\n", label, fromDay, toDay-1)
		}
	}
	check("after day 0 subscription", 0, 1)

	// Day 1 arrives; owner extends all open subscriptions.
	if err := ingestDay(ctx, stream, epoch, 1); err != nil {
		log.Fatal(err)
	}
	check("day 1 before extension   ", 0, 2) // not yet extended
	if err := stream.ExtendOpenGrants(ctx); err != nil {
		log.Fatal(err)
	}
	check("day 1 after extension    ", 0, 2)

	// Revoke. Forward secrecy: day 2 keys are never issued, but the
	// physician could have cached days 0-1 (revoking old data is out of
	// scope, as in the paper).
	if err := stream.Revoke(ctx, physKey.PublicBytes(), grantID); err != nil {
		log.Fatal(err)
	}
	if err := ingestDay(ctx, stream, epoch, 2); err != nil {
		log.Fatal(err)
	}
	if err := stream.ExtendOpenGrants(ctx); err != nil { // no-op: revoked
		log.Fatal(err)
	}
	check("after revocation         ", 0, 3)
	fmt.Println("\n(forward secrecy: the extension loop never issued day-2 tokens for the revoked grant)")

	// Bounded one-shot grants still work independently of subscriptions.
	auditorKey, _ := timecrypt.GenerateKeyPair()
	if _, err := stream.Grant(ctx, auditorKey.PublicBytes(), epoch, epoch+dayMS, 0); err != nil {
		log.Fatal(err)
	}
	auditor, err := timecrypt.NewConsumer(tr, auditorKey).OpenStream(ctx, "sensor")
	if err != nil {
		log.Fatal(err)
	}
	if res, err := auditor.StatRange(ctx, epoch, epoch+dayMS); err == nil {
		fmt.Printf("auditor (day 0 only): mean=%.1f over %d records ✓\n", res.Mean, res.Count)
	}
	if _, err := auditor.StatRange(ctx, epoch, epoch+2*dayMS); err != nil {
		fmt.Println("auditor day 1: NOT decryptable (outside bounded grant) ✓")
	}
}
