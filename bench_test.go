// Benchmarks regenerating each table and figure of the paper's evaluation
// (§6) as Go testing.B targets, plus ablation benches for the design
// choices called out in DESIGN.md §5. The full formatted tables come from
// `go run ./cmd/timecrypt-bench`; these targets expose the same code paths
// to `go test -bench`.
package timecrypt_test

import (
	"context"
	"fmt"
	"math/big"
	"math/rand/v2"
	"sync"
	"testing"

	timecrypt "repro"
	"repro/internal/baseline/abesim"
	"repro/internal/baseline/ecelgamal"
	"repro/internal/baseline/paillier"
	"repro/internal/chunk"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/kv"
	"repro/internal/server"
	"repro/internal/workload"
)

// ---- shared fixtures ---------------------------------------------------

var paillierKey = sync.OnceValue(func() *paillier.PrivateKey {
	key, err := paillier.GenerateKey(paillier.Key128SecurityBits)
	if err != nil {
		panic(err)
	}
	return key
})

var ecKey = sync.OnceValue(func() *ecelgamal.PrivateKey {
	key, err := ecelgamal.GenerateKey()
	if err != nil {
		panic(err)
	}
	return key
})

var ecTable = sync.OnceValue(func() *ecelgamal.DlogTable {
	t, err := ecelgamal.NewDlogTable(1<<22, 1<<11)
	if err != nil {
		panic(err)
	}
	return t
})

// encIndex builds an index of n sum-only digests; encrypted selects
// TimeCrypt vs plaintext.
func encIndex(b *testing.B, encrypted bool, n uint64, fanout int, cacheBytes int64) (*index.Tree, *core.Encryptor) {
	b.Helper()
	store := kv.NewMemStore()
	tree, err := index.Open(store, "bench", index.Config{Fanout: fanout, VectorLen: 1, CacheBytes: cacheBytes})
	if err != nil {
		b.Fatal(err)
	}
	var enc, dec *core.Encryptor
	if encrypted {
		kt, err := core.NewTree(core.NewPRG(core.PRGAES), core.DefaultTreeHeight, core.Node{1})
		if err != nil {
			b.Fatal(err)
		}
		enc = core.NewEncryptor(kt.NewWalker())
		dec = core.NewEncryptor(kt.NewWalker())
	}
	buf := make([]uint64, 1)
	for i := uint64(0); i < n; i++ {
		buf[0] = i % 5
		if encrypted {
			if _, err := enc.EncryptDigest(i, buf, buf); err != nil {
				b.Fatal(err)
			}
		}
		if err := tree.Append(i, buf); err != nil {
			b.Fatal(err)
		}
	}
	return tree, dec
}

// ---- Table 2: homomorphic ADD ------------------------------------------

func BenchmarkTable2MicroAdd(b *testing.B) {
	b.Run("timecrypt", func(b *testing.B) {
		var acc uint64
		for i := 0; i < b.N; i++ {
			acc += uint64(i)
		}
		_ = acc
	})
	b.Run("paillier", func(b *testing.B) {
		key := paillierKey()
		c1, _ := key.EncryptUint64(1)
		c2, _ := key.EncryptUint64(2)
		acc := new(big.Int).Set(c1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key.AddInto(acc, c2)
		}
	})
	b.Run("ec-elgamal", func(b *testing.B) {
		key := ecKey()
		c1, _ := key.Encrypt(1)
		c2, _ := key.Encrypt(2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c1 = ecelgamal.Add(c1, c2)
		}
	})
}

// ---- Table 2: index ingest ----------------------------------------------

func BenchmarkTable2Ingest(b *testing.B) {
	for _, cfg := range []struct {
		name      string
		encrypted bool
	}{{"plaintext", false}, {"timecrypt", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			tree, _ := encIndex(b, cfg.encrypted, 1000, 64, 0)
			var enc *core.Encryptor
			if cfg.encrypted {
				kt, _ := core.NewTree(core.NewPRG(core.PRGAES), core.DefaultTreeHeight, core.Node{1})
				enc = core.NewEncryptor(kt.NewWalker())
				// Advance the walker to the index head.
				enc.EncryptDigest(999, []uint64{0}, nil)
			}
			buf := make([]uint64, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pos := tree.Count()
				buf[0] = 3
				if cfg.encrypted {
					if _, err := enc.EncryptDigest(pos, buf, buf); err != nil {
						b.Fatal(err)
					}
				}
				if err := tree.Append(pos, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("paillier", func(b *testing.B) {
		key := paillierKey()
		for i := 0; i < b.N; i++ {
			if _, err := key.EncryptUint64(3); err != nil { // dominates ingest
				b.Fatal(err)
			}
		}
	})
	b.Run("ec-elgamal", func(b *testing.B) {
		key := ecKey()
		for i := 0; i < b.N; i++ {
			if _, err := key.Encrypt(3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Table 2: index query -----------------------------------------------

func BenchmarkTable2Query(b *testing.B) {
	const n = 1 << 16
	for _, cfg := range []struct {
		name      string
		encrypted bool
	}{{"plaintext", false}, {"timecrypt", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			tree, dec := encIndex(b, cfg.encrypted, n, 64, 0)
			r := rand.New(rand.NewPCG(1, 1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := r.Uint64N(n / 2)
				c := a + 1 + r.Uint64N(n-a-1)
				vec, err := tree.Query(a, c)
				if err != nil {
					b.Fatal(err)
				}
				if cfg.encrypted {
					if _, err := dec.DecryptRange(a, c, vec, vec); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// ---- Table 2: index size ------------------------------------------------

func BenchmarkTable2IndexSize(b *testing.B) {
	// Reported via a metric rather than time: bytes per chunk for the
	// TimeCrypt/plaintext index (identical: no ciphertext expansion).
	store := kv.NewMemStore()
	tree, err := index.Open(store, "size", index.Config{Fanout: 64, VectorLen: 1})
	if err != nil {
		b.Fatal(err)
	}
	const n = 1 << 16
	for i := uint64(0); i < n; i++ {
		tree.Append(i, []uint64{1})
	}
	b.ReportMetric(float64(store.SizeBytes())/n, "bytes/chunk")
	b.ReportMetric(float64(paillierKey().CiphertextBytes()), "paillier-bytes/elt")
	b.ReportMetric(66, "ecelgamal-bytes/elt")
	for i := 0; i < b.N; i++ {
		_ = store.SizeBytes()
	}
}

// ---- Table 3: crypto operations ------------------------------------------

func BenchmarkTable3CryptoOps(b *testing.B) {
	tree, err := core.NewTree(core.NewPRG(core.PRGAES), 30, core.Node{5})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("timecrypt-enc", func(b *testing.B) {
		enc := core.NewEncryptor(tree.NewWalker())
		r := rand.New(rand.NewPCG(2, 2))
		m := []uint64{12345}
		out := make([]uint64, 1)
		for i := 0; i < b.N; i++ {
			if _, err := enc.EncryptDigest(r.Uint64N(1<<29), m, out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("timecrypt-dec", func(b *testing.B) {
		dec := core.NewEncryptor(tree.NewWalker())
		r := rand.New(rand.NewPCG(2, 2))
		m := []uint64{12345}
		out := make([]uint64, 1)
		for i := 0; i < b.N; i++ {
			p := r.Uint64N(1 << 29)
			if _, err := dec.DecryptRange(p, p+1, m, out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("paillier-enc", func(b *testing.B) {
		key := paillierKey()
		for i := 0; i < b.N; i++ {
			if _, err := key.EncryptUint64(77); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("paillier-dec", func(b *testing.B) {
		key := paillierKey()
		c, _ := key.EncryptUint64(77)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := key.DecryptCRT(c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ecelgamal-enc", func(b *testing.B) {
		key := ecKey()
		for i := 0; i < b.N; i++ {
			if _, err := key.Encrypt(77); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ecelgamal-dec", func(b *testing.B) {
		key := ecKey()
		c, _ := key.Encrypt(77_000)
		table := ecTable()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := key.Decrypt(c, table); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Fig 5: interval sweep ------------------------------------------------

func BenchmarkFig5IntervalSweep(b *testing.B) {
	const n = 1 << 16
	tree, dec := encIndex(b, true, n, 64, 0)
	for _, x := range []int{0, 4, 8, 12, 16} {
		b.Run(fmt.Sprintf("x=%d", x), func(b *testing.B) {
			hi := uint64(1) << x
			for i := 0; i < b.N; i++ {
				vec, err := tree.Query(0, hi)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := dec.DecryptRange(0, hi, vec, vec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Fig 6: key derivation per PRG -----------------------------------------

func BenchmarkFig6KeyDerivation(b *testing.B) {
	for _, kind := range []core.PRGKind{core.PRGAES, core.PRGSHA256, core.PRGHMAC} {
		for _, h := range []int{10, 30, 60} {
			b.Run(fmt.Sprintf("%s/h=%d", kind, h), func(b *testing.B) {
				tree, err := core.NewTree(core.NewPRG(kind), h, core.Node{byte(h)})
				if err != nil {
					b.Fatal(err)
				}
				r := rand.New(rand.NewPCG(uint64(h), 9))
				n := tree.NumLeaves()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := tree.Leaf(r.Uint64N(n)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---- Fig 7 / §6.3: end-to-end ops -------------------------------------------

// benchE2E measures one full ingest + 4 statistical queries through the
// whole stack (wire codec included) per iteration.
func benchE2E(b *testing.B, gen workload.Generator, interval int64, insecure bool) {
	engine, err := server.New(kv.NewMemStore(), server.Config{})
	if err != nil {
		b.Fatal(err)
	}
	owner := client.NewOwner(&client.InProc{Engine: engine})
	epoch := int64(1_700_000_000_000)
	s, err := owner.CreateStream(context.Background(), client.StreamOptions{
		UUID: "e2e", Epoch: epoch, Interval: interval,
		Spec:     chunk.DigestSpec{Sum: true, Count: true, SumSq: true},
		Insecure: insecure,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the stream so queries have history.
	for i := 0; i < 16; i++ {
		if err := s.AppendChunk(context.Background(), gen.Chunk(uint64(i), epoch, interval)); err != nil {
			b.Fatal(err)
		}
	}
	r := rand.New(rand.NewPCG(4, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := 16 + uint64(i)
		if err := s.AppendChunk(context.Background(), gen.Chunk(idx, epoch, interval)); err != nil {
			b.Fatal(err)
		}
		for q := 0; q < 4; q++ {
			lo := epoch + int64(r.Uint64N(idx))*interval
			hi := epoch + int64(idx+1)*interval
			if _, err := s.StatRange(context.Background(), lo, hi); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(gen.PointsPerChunk()), "records/op")
}

func BenchmarkFig7EndToEnd(b *testing.B) {
	b.Run("mhealth-plaintext", func(b *testing.B) {
		benchE2E(b, workload.NewMHealth(1), 10_000, true)
	})
	b.Run("mhealth-timecrypt", func(b *testing.B) {
		benchE2E(b, workload.NewMHealth(1), 10_000, false)
	})
}

func BenchmarkDevOps(b *testing.B) {
	b.Run("devops-plaintext", func(b *testing.B) {
		benchE2E(b, workload.NewDevOps(1), 60_000, true)
	})
	b.Run("devops-timecrypt", func(b *testing.B) {
		benchE2E(b, workload.NewDevOps(1), 60_000, false)
	})
}

// ---- Fig 8: granularity sweep -----------------------------------------------

func BenchmarkFig8Granularity(b *testing.B) {
	engine, err := server.New(kv.NewMemStore(), server.Config{})
	if err != nil {
		b.Fatal(err)
	}
	owner := client.NewOwner(&client.InProc{Engine: engine})
	epoch := int64(1_700_000_000_000)
	const interval = 10_000
	const chunks = 4320 // half a day at Δ=10s
	s, err := owner.CreateStream(context.Background(), client.StreamOptions{
		UUID: "fig8", Epoch: epoch, Interval: interval,
		Spec: chunk.DigestSpec{Sum: true, Count: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	pts := make([]chunk.Point, 2)
	for i := uint64(0); i < chunks; i++ {
		start := epoch + int64(i)*interval
		pts[0] = chunk.Point{TS: start, Val: 70}
		pts[1] = chunk.Point{TS: start + 5000, Val: 75}
		if err := s.AppendChunk(context.Background(), pts); err != nil {
			b.Fatal(err)
		}
	}
	te := epoch + int64(chunks)*interval
	for _, g := range []struct {
		name   string
		window uint64
	}{{"minute", 6}, {"hour", 360}, {"half-day", chunks}} {
		b.Run(g.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.StatSeries(context.Background(), epoch, te, g.window); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- §6.2: access control -----------------------------------------------------

func BenchmarkAccessControl(b *testing.B) {
	tree, err := core.NewTree(core.NewPRG(core.PRGAES), 30, core.Node{3})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("timecrypt-keystream", func(b *testing.B) {
		r := rand.New(rand.NewPCG(6, 6))
		for i := 0; i < b.N; i++ {
			if _, err := tree.Leaf(r.Uint64N(tree.NumLeaves())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("timecrypt-grant-cover", func(b *testing.B) {
		r := rand.New(rand.NewPCG(6, 7))
		for i := 0; i < b.N; i++ {
			a := r.Uint64N(1 << 29)
			c := a + 1 + r.Uint64N(1<<20)
			if _, err := tree.Cover(a, c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dual-key-regression", func(b *testing.B) {
		dkr, err := core.NewDualKeyRegression(1 << 20)
		if err != nil {
			b.Fatal(err)
		}
		r := rand.New(rand.NewPCG(6, 8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dkr.KeyAt(r.Uint64N(dkr.N())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("abe-grant", func(b *testing.B) {
		abe, err := abesim.New()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			abe.KeyGen(1)
			abe.Encrypt(1)
		}
	})
	b.Run("abe-decrypt", func(b *testing.B) {
		abe, err := abesim.New()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			abe.Decrypt(1)
		}
	})
}

// ---- Ablations (DESIGN.md §5) ----------------------------------------------

func BenchmarkAblationFanout(b *testing.B) {
	const n = 1 << 14
	for _, k := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("k=%d/query", k), func(b *testing.B) {
			tree, dec := encIndex(b, true, n, k, 0)
			r := rand.New(rand.NewPCG(uint64(k), 1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := r.Uint64N(n / 2)
				c := a + 1 + r.Uint64N(n-a-1)
				vec, err := tree.Query(a, c)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := dec.DecryptRange(a, c, vec, vec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationLeafCache(b *testing.B) {
	tree, err := core.NewTree(core.NewPRG(core.PRGAES), 30, core.Node{8})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential-with-walker", func(b *testing.B) {
		w := tree.NewWalker()
		for i := 0; i < b.N; i++ {
			if _, err := w.Leaf(uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential-no-cache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tree.Leaf(uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationCompression(b *testing.B) {
	gen := workload.NewMHealth(3)
	pts := gen.Chunk(0, 0, 10_000)
	raw := chunk.MarshalPoints(pts)
	for _, comp := range []chunk.Compression{chunk.CompressionNone, chunk.CompressionZlib} {
		b.Run(comp.String(), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				out, err := chunk.Compress(comp, raw)
				if err != nil {
					b.Fatal(err)
				}
				size = len(out)
			}
			b.ReportMetric(float64(size), "payload-bytes")
		})
	}
}

func BenchmarkAblationCacheBudget(b *testing.B) {
	const n = 1 << 14
	for _, cfg := range []struct {
		name  string
		bytes int64
	}{{"unbounded", 0}, {"1MB", 1 << 20}, {"64KB", 64 << 10}} {
		b.Run(cfg.name, func(b *testing.B) {
			tree, dec := encIndex(b, true, n, 64, cfg.bytes)
			r := rand.New(rand.NewPCG(3, 3))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := r.Uint64N(n / 2)
				c := a + 1 + r.Uint64N(n-a-1)
				vec, err := tree.Query(a, c)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := dec.DecryptRange(a, c, vec, vec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- component benches ---------------------------------------------------

func BenchmarkHEACEncryptVector(b *testing.B) {
	tree, _ := core.NewTree(core.NewPRG(core.PRGAES), 30, core.Node{2})
	enc := core.NewEncryptor(tree.NewWalker())
	m := make([]uint64, 19) // default digest: sum+count+sumsq+16 bins
	out := make([]uint64, 19)
	for i := 0; i < b.N; i++ {
		if _, err := enc.EncryptDigest(uint64(i), m, out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(19, "digest-elements")
}

func BenchmarkChunkSeal(b *testing.B) {
	tree, _ := core.NewTree(core.NewPRG(core.PRGAES), 30, core.Node{2})
	enc := core.NewEncryptor(tree.NewWalker())
	gen := workload.NewMHealth(1)
	spec := chunk.DefaultSpec()
	for i := 0; i < b.N; i++ {
		pts := gen.Chunk(uint64(i), 0, 10_000)
		start := int64(i) * 10_000
		if _, err := chunk.Seal(enc, spec, chunk.CompressionZlib, uint64(i), start, start+10_000, pts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(500, "records/op")
}

func BenchmarkGrantIssue(b *testing.B) {
	engine, err := server.New(kv.NewMemStore(), server.Config{})
	if err != nil {
		b.Fatal(err)
	}
	owner := timecrypt.NewOwner(timecrypt.NewInProcTransport(engine))
	epoch := int64(1_700_000_000_000)
	s, err := owner.CreateStream(context.Background(), timecrypt.StreamOptions{UUID: "g", Epoch: epoch, Interval: 10_000})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		start := epoch + int64(i)*10_000
		if err := s.AppendChunk(context.Background(), []timecrypt.Point{{TS: start, Val: 1}}); err != nil {
			b.Fatal(err)
		}
	}
	kp, _ := timecrypt.GenerateKeyPair()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Grant(context.Background(), kp.PublicBytes(), epoch, epoch+64*10_000, 0); err != nil {
			b.Fatal(err)
		}
	}
}
